"""ABL-COIN — why Section 2.2 restricts MOEs with coin flips.

Replays Borůvka phases centrally and compares the merge-component diameters
(the quantity a sleeping-model merge's awake cost is proportional to) with
and without the coin-flip pruning, on both the adversarial MOE chain and
random graphs.
"""

from __future__ import annotations

from repro.analysis import boruvka_merge_structure, worst_merge_diameter
from repro.graphs import adversarial_moe_chain, random_connected_graph

SIZES = (32, 64, 128, 256)


def test_coinflip_keeps_merge_components_stars(benchmark, report):
    rows = []
    for n in SIZES:
        chain = adversarial_moe_chain(n, seed=n)
        unrestricted = worst_merge_diameter(
            boruvka_merge_structure(chain, restricted=False, seed=1)
        )
        restricted = worst_merge_diameter(
            boruvka_merge_structure(chain, restricted=True, seed=1)
        )
        random_graph = random_connected_graph(n, 0.08, seed=n)
        random_unrestricted = worst_merge_diameter(
            boruvka_merge_structure(random_graph, restricted=False, seed=1)
        )
        random_restricted = worst_merge_diameter(
            boruvka_merge_structure(random_graph, restricted=True, seed=1)
        )
        rows.append((n, unrestricted, restricted, random_unrestricted, random_restricted))

    report.record_rows(
        "Ablation / merge-component diameter (== awake cost of a merge)",
        f"{'n':>6} {'chain all-MOE':>14} {'chain coin':>11} "
        f"{'rand all-MOE':>13} {'rand coin':>10}",
        [
            f"{n:>6} {cu:>14} {cr:>11} {ru:>13} {rr:>10}"
            for n, cu, cr, ru, rr in rows
        ],
    )
    for n, chain_unrestricted, chain_restricted, _, random_restricted in rows:
        # Unrestricted merging on the chain builds a Θ(n)-diameter
        # component — an Ω(n) awake merge; coin flips cap it at 2 (a star).
        assert chain_unrestricted >= n - 2
        assert chain_restricted <= 2
        assert random_restricted <= 2

    chain = adversarial_moe_chain(128, seed=1)
    benchmark.pedantic(
        lambda: boruvka_merge_structure(chain, restricted=True, seed=1),
        rounds=3,
        iterations=1,
    )
