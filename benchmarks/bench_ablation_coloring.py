"""ABL-COLOR — the price of Fast-Awake-Coloring (and Corollary 1's point).

The deterministic algorithm's round complexity is dominated by the
N-stage colouring: per phase it costs Θ(nN) rounds but only O(1) awake
rounds per node (≤ 5 stages of participation).  This bench isolates that
trade by timing the colouring component across ID ranges and verifying the
participation bound — the quantity Corollary 1 trades against a log* factor.
"""

from __future__ import annotations

from repro.core.coloring import STAGE_BLOCKS, fast_awake_coloring
from repro.core.harness import FLDTPlan, run_procedure
from repro.core.schedule import block_span
from repro.graphs import ring_graph

ID_FACTORS = (1, 4, 16, 64)
N_NODES = 16


def color_ring(id_factor):
    id_range = None if id_factor == 1 else id_factor * N_NODES
    graph = ring_graph(N_NODES, seed=3, id_range=id_range)

    def procedure(ctx, ldt, clock, value):
        outcome = yield from fast_awake_coloring(
            ctx, ldt, clock, set(graph.neighbors(ctx.node_id)), set(ctx.ports)
        )
        return outcome

    plan = FLDTPlan.singletons(graph)
    return graph, run_procedure(graph, plan, procedure, refresh_neighbors=False)


def test_coloring_rounds_linear_in_N_awake_flat(benchmark, report):
    rows = []
    for factor in ID_FACTORS:
        graph, run = color_ring(factor)
        metrics = run.simulation.metrics
        rows.append(
            (
                graph.max_id,
                metrics.max_awake,
                metrics.rounds,
                STAGE_BLOCKS * graph.max_id * block_span(graph.n),
            )
        )
        # Proper colouring sanity.
        colors = {node: run.returns[node][0] for node in graph.node_ids}
        for edge in graph.edges():
            assert colors[edge.u] != colors[edge.v]

    report.record_rows(
        "Ablation / Fast-Awake-Coloring cost vs ID range N (ring n = 16)",
        f"{'N':>6} {'AT':>6} {'RT':>9} {'budget 5N(2n+2)':>16}",
        [f"{N:>6} {a:>6} {r:>9} {b:>16}" for N, a, r, b in rows],
    )
    awakes = [a for _, a, _, _ in rows]
    rounds = [r for _, _, r, _ in rows]
    # Awake flat across a 64x range of N; rounds grow with N.
    assert max(awakes) <= 2 * min(awakes)
    assert rounds[-1] > 20 * rounds[0]
    for N, _, r, budget in rows:
        assert r <= budget

    benchmark.pedantic(lambda: color_ring(16), rounds=3, iterations=1)
