"""BASE — the sleeping-model gap: traditional awake = rounds vs O(log n).

The paper's implicit comparator: the same GHS skeleton, accounted in the
traditional CONGEST model (idle listening counts), against the sleeping
execution; plus classical flooding as the Θ(D)-awake primitive that the
schedule-driven trees replace.
"""

from __future__ import annotations

from repro.baselines import (
    run_flooding_broadcast,
    run_pipelined_ghs,
    run_traditional_ghs,
)
from repro.core import run_randomized_mst
from repro.graphs import ring_graph

SIZES = (32, 64, 128, 256)


def test_awake_gap_traditional_vs_sleeping(benchmark, report):
    rows = []
    for n in SIZES:
        graph = ring_graph(n, seed=n)
        sleeping = run_randomized_mst(graph, seed=0, verify=True)
        traditional = run_traditional_ghs(graph, seed=0)
        classical = run_pipelined_ghs(graph)
        assert classical.mst_weights == sleeping.mst_weights
        flooding = run_flooding_broadcast(graph)
        gap = traditional.metrics.max_awake / sleeping.metrics.max_awake
        rows.append(
            (
                n,
                sleeping.metrics.max_awake,
                traditional.metrics.max_awake,
                classical.metrics.max_awake,
                gap,
                flooding.metrics.max_awake,
            )
        )

    report.record_rows(
        "Baseline gap / sleeping vs traditional vs flooding (rings)",
        f"{'n':>6} {'sleep AT':>9} {'trad AT':>9} {'GHS AT':>8} "
        f"{'gap':>8} {'flood AT':>9}",
        [
            f"{n:>6} {s:>9} {t:>9} {g:>8} {gap:>8.1f} {f:>9}"
            for n, s, t, g, gap, f in rows
        ],
    )
    # The gap widens with n: traditional awake is Θ̃(n), sleeping O(log n).
    gaps = [gap for *_, gap, _ in rows]
    assert gaps[-1] > gaps[0]
    assert gaps[-1] > 50
    # The independent classical GHS also pays Θ̃(n) awake (= its rounds),
    # though with better constants than the schedule-based skeleton.
    for n, sleeping_awake, _, classical_awake, _, _ in rows:
        assert classical_awake > 2 * sleeping_awake
    # Flooding's awake complexity is Θ(D) = Θ(n) on a ring.
    flood = [f for *_, f in rows]
    assert flood[-1] >= 4 * flood[0]

    graph = ring_graph(64, seed=64)
    benchmark.pedantic(
        lambda: run_pipelined_ghs(graph), rounds=3, iterations=1
    )
