"""COR1 — Corollary 1: the log*-coloring Deterministic-MST variant.

Head-to-head against the paper's Fast-Awake-Coloring across ID ranges: the
log* variant's round complexity is independent of N (paying a small log* N
awake factor), turning Theorem 2's O(nN log n) into O(n log n log* n).
"""

from __future__ import annotations

from repro.core import run_deterministic_mst
from repro.graphs import ring_graph

N_NODES = 16
ID_FACTORS = (1, 4, 16, 64)


def test_logstar_rounds_independent_of_N(benchmark, report):
    rows = []
    for factor in ID_FACTORS:
        id_range = None if factor == 1 else factor * N_NODES
        graph = ring_graph(N_NODES, seed=5, id_range=id_range)
        fast = run_deterministic_mst(graph, coloring="fast-awake", verify=True)
        star = run_deterministic_mst(graph, coloring="log-star", verify=True)
        rows.append(
            (
                graph.max_id,
                fast.metrics.max_awake,
                fast.metrics.rounds,
                star.metrics.max_awake,
                star.metrics.rounds,
            )
        )

    report.record_rows(
        "Corollary 1 / Fast-Awake vs log*-coloring (ring n = 16)",
        f"{'N':>6} {'fast AT':>8} {'fast RT':>9} {'log* AT':>8} {'log* RT':>9}",
        [
            f"{N:>6} {fa:>8} {fr:>9} {sa:>8} {sr:>9}"
            for N, fa, fr, sa, sr in rows
        ],
    )
    star_rounds = [sr for *_, sr in rows]
    fast_rounds = [fr for _, _, fr, _, _ in rows]
    # log* RT flat across a 64x range of N; fast-awake RT scales with N.
    assert max(star_rounds) < 2 * min(star_rounds)
    assert fast_rounds[-1] > 20 * fast_rounds[0]
    # The awake price of the log* variant is a small constant factor.
    for _, fast_awake, _, star_awake, _ in rows:
        assert star_awake <= 5 * fast_awake

    graph = ring_graph(N_NODES, seed=5, id_range=16 * N_NODES)
    benchmark.pedantic(
        lambda: run_deterministic_mst(graph, coloring="log-star"),
        rounds=3,
        iterations=1,
    )
