"""ENERGY — the motivating claim: sleeping saves batteries.

Prices both executions under the sensor-radio energy model and reports the
battery-lifetime ratio, the practical content of the paper's introduction.
"""

from __future__ import annotations

from repro.analysis import EnergyModel
from repro.baselines import run_traditional_ghs
from repro.core import run_randomized_mst
from repro.graphs import random_geometric_graph

SIZES = (32, 64, 128)


def test_energy_gap(benchmark, report):
    model = EnergyModel()
    rows = []
    for n in SIZES:
        graph = random_geometric_graph(n, 0.35, seed=n)
        sleeping = run_randomized_mst(graph, seed=0, verify=True)
        traditional = run_traditional_ghs(graph, seed=0)
        sleeping_energy = model.max_node_energy(sleeping.metrics)
        traditional_energy = model.max_node_energy(traditional.metrics)
        rows.append(
            (
                n,
                sleeping_energy,
                traditional_energy,
                model.executions_per_battery(sleeping.metrics),
                model.executions_per_battery(traditional.metrics),
            )
        )

    report.record_rows(
        "Energy / worst-node energy per MST build (geometric graphs)",
        f"{'n':>6} {'sleep mJ':>10} {'trad mJ':>12} "
        f"{'sleep runs':>11} {'trad runs':>10}",
        [
            f"{n:>6} {se:>10.0f} {te:>12.0f} {sr:>11.1f} {tr:>10.2f}"
            for n, se, te, sr, tr in rows
        ],
    )
    for _, sleeping_energy, traditional_energy, *_ in rows:
        assert traditional_energy > 10 * sleeping_energy

    graph = random_geometric_graph(64, 0.35, seed=64)
    benchmark.pedantic(
        lambda: run_randomized_mst(graph, seed=0), rounds=3, iterations=1
    )
