"""HOTPATH — engine/congest hot-path timings under pytest-benchmark.

The authoritative perf record is ``repro bench`` (see docs/performance.md
and the committed ``BENCH_engine.json``); this module exposes the same
workloads — built by :mod:`repro.bench.suites` so the two harnesses can
never drift apart — to ``pytest benchmarks/ --benchmark-only`` runs, and
asserts the structural facts the optimizations rely on: the shape memo
actually hits, and the fast loop is engaged when no observers are
attached.
"""

from __future__ import annotations

from repro.bench.suites import get_benchmark, payload_corpus
from repro.core import run_randomized_mst
from repro.graphs import random_connected_graph
from repro.sim.congest import CongestPolicy, payload_bits


def test_payload_bits_micro(benchmark, report):
    spec = get_benchmark("payload_bits_micro")
    benchmark(spec.make())

    policy = CongestPolicy(10**6, strict=False)
    corpus = payload_corpus()
    for payload in corpus:
        policy.check(payload)
    flat_shapes = sum(
        1 for _, cache in policy._shape_table.values() if cache is not None
    )
    report.record(
        "Engine hot path / payload memo",
        f"corpus={len(corpus)} payloads, shapes={len(policy._shape_table)} "
        f"({flat_shapes} compiled flat), memo entries={policy._cache_entries}",
    )
    # Every flat tuple shape in the corpus compiles to a sizer; only the
    # deliberately nested shape falls back to the recursive reference.
    assert flat_shapes >= len(policy._shape_table) - 1
    for payload in corpus:
        assert policy.check(payload) == payload_bits(payload)


def test_engine_round_loop(benchmark):
    benchmark(get_benchmark("engine_round_loop").make())


def test_mst_end_to_end(benchmark, report):
    spec = get_benchmark("mst_randomized_e2e_n64")
    benchmark(spec.make())

    # The observer-free run must be indistinguishable from an observed one
    # (the fast/general loop split is a pure optimization).
    graph = random_connected_graph(48, seed=11)
    fast = run_randomized_mst(graph, seed=3)
    general = run_randomized_mst(graph, seed=3, trace=True, observe=True)
    assert fast.mst_weights == general.mst_weights
    assert fast.metrics.summary() == general.metrics.summary()
    report.record(
        "Engine hot path / fast-vs-general loop",
        f"n=48 randomized MST: weight sum {sum(fast.mst_weights)}, "
        f"metrics identical across specialized loops",
    )
