"""FIG1 — the G_rc lower-bound graph and the SD → DSD → CSS → MST chain.

Builds Figure 1's graph in the Theorem 4 regime, asserts Observation 1
(diameter Θ(c / log n)), and runs the full reduction: the distributed MST
algorithm answers set-disjointness instances through the weighted encoding.
Also measures the congestion into the binary tree's internal nodes — the
quantity Lemma 8's awake bound is extracted from.
"""

from __future__ import annotations

from repro.core import run_randomized_mst
from repro.lower_bounds import (
    GrcTopology,
    awake_bound_from_congestion,
    congestion_lower_bound_bits,
    dsd_marked_edges,
    middle_cut,
    cut_crossing_bits,
    random_sd_instance,
    row_cut_bits,
    solve_sd_via_mst,
    theorem4_regime,
)


def test_grc_structure_and_reduction(benchmark, report):
    r, c = theorem4_regime(240)
    topology = GrcTopology(r, c)
    graph, _ = topology.to_weighted_graph()
    diameter = graph.diameter()
    assert diameter <= topology.diameter_upper_bound()
    assert diameter < c  # the X tree shortcuts the rows

    # The reduction chain, oracle-fast across instances.
    outcomes = []
    for seed in range(8):
        instance = random_sd_instance(
            topology.r - 1, seed=seed, force_disjoint=seed % 2 == 0
        )
        outcome = solve_sd_via_mst(topology, instance)
        assert outcome.correct
        assert outcome.css_connected == outcome.truth_disjoint
        outcomes.append(outcome)

    # One full distributed run (intersecting instance) with congestion
    # accounting on the internal tree nodes I.
    instance = random_sd_instance(topology.r - 1, seed=99, force_disjoint=False)
    marked_graph, threshold = topology.to_weighted_graph(
        dsd_marked_edges(topology, instance)
    )
    result = run_randomized_mst(marked_graph, seed=0, verify=True, trace=True)
    heavy_used = any(w > threshold for w in result.mst_weights)
    assert heavy_used  # intersecting => the MST needs a heavy edge
    tree_bits = congestion_lower_bound_bits(
        result.simulation, topology.internal_nodes
    )

    # Lemma 8's quantity: bits crossing every R_j cut; the awake time must
    # respect the pigeonhole bound derived from the middle cut.
    cut_series = [
        (j, row_cut_bits(result.simulation.trace, topology, j))
        for j in (2, topology.c // 4, topology.c // 2, 3 * topology.c // 4)
    ]
    assert all(bits > 0 for _, bits in cut_series)
    mid_bits = cut_crossing_bits(result.simulation.trace, middle_cut(topology))
    implied = awake_bound_from_congestion(
        mid_bits,
        len(topology.internal_nodes) or 1,
        4,
        result.metrics.max_message_bits or 1,
    )
    assert result.metrics.max_awake >= implied

    report.record(
        "Figure 1 / G_rc structure + SD-via-MST reduction",
        "\n".join(
            [
                f"r={r} c={c} n={topology.n} |X|={topology.x_size} "
                f"edges={len(topology.edges)}",
                f"diameter={diameter} (bound {topology.diameter_upper_bound()}, "
                f"c={c})",
                f"oracle reduction: {len(outcomes)}/"
                f"{len(outcomes)} SD instances answered correctly",
                f"distributed run: AT={result.metrics.max_awake} "
                f"RT={result.metrics.rounds} "
                f"bits into internal tree I={tree_bits}",
                "Lemma 8 cut congestion (bits across R_j): "
                + ", ".join(f"j={j}: {bits}" for j, bits in cut_series)
                + f"; implied awake >= {implied}",
            ]
        ),
    )

    benchmark.pedantic(
        lambda: solve_sd_via_mst(
            topology, random_sd_instance(topology.r - 1, seed=5)
        ),
        rounds=3,
        iterations=1,
    )
