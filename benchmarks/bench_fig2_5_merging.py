"""FIG2-5 — the Merging-Fragments walk-through of Appendix C.

Runs the actual procedure on the figures' two-fragment configuration and
prints the before/after labelled forests — the content of Figures 2 and 5 —
with all invariants asserted inside the walkthrough module.
"""

from __future__ import annotations

from repro.analysis import run_merging_walkthrough


def test_merging_walkthrough(benchmark, report):
    walkthrough = benchmark.pedantic(
        run_merging_walkthrough, rounds=3, iterations=1
    )

    def render(snapshots):
        return [
            f"  node {s.node_id:>2}: fragment={s.fragment_id:>2} "
            f"level={s.level} parent={s.parent}"
            for _, s in sorted(snapshots.items())
        ]

    report.record(
        "Figures 2-5 / Merging-Fragments walk-through",
        "\n".join(
            ["Figure 2 (initial forest):"]
            + render(walkthrough.before)
            + ["Figure 5 (after the merge):"]
            + render(walkthrough.after)
        ),
    )
    assert all(s.fragment_id == 10 for s in walkthrough.after.values())
