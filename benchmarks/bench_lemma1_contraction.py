"""LEMMA1 — the 4/3 expected fragment contraction behind Theorem 1.

Lemma 1: each phase of Randomized-MST reduces the number of fragments by a
factor ≥ 4/3 in expectation.  We measure the per-phase ratios across many
seeds and graph families; the geometric mean (which predicts the realised
phase count) should sit at or above 4/3, and the paper's fixed phase
budget should never be exceeded.  Also reproduces Lemma 2's Monte Carlo
guarantee: fixed-budget runs output the exact MST every time at these
sizes (failure probability ≤ 1/n³).
"""

from __future__ import annotations

import math

from repro.analysis import contraction_statistics, fixed_mode_success_rate
from repro.core import randomized_phase_count
from repro.graphs import adversarial_moe_chain, random_connected_graph, ring_graph

FAMILIES = (
    ("random", lambda n: random_connected_graph(n, 0.1, seed=n)),
    ("ring", lambda n: ring_graph(n, seed=n)),
    ("moe-chain", lambda n: adversarial_moe_chain(n, seed=n)),
)
N = 128
SEEDS = range(20)


def test_lemma1_contraction(benchmark, report):
    rows = []
    for name, factory in FAMILIES:
        graph = factory(N)
        report_stats = contraction_statistics(graph, seeds=SEEDS)
        rows.append(
            (
                name,
                report_stats.mean_ratio,
                report_stats.geometric_mean_ratio,
                max(report_stats.phases),
            )
        )

    budget = randomized_phase_count(N)
    report.record_rows(
        f"Lemma 1 / per-phase fragment contraction (n = {N}, 20 seeds)",
        f"{'family':<10} {'mean ratio':>11} {'geo mean':>9} "
        f"{'worst #phases':>14}  (paper: E >= 4/3 = 1.333; budget {budget})",
        [
            f"{name:<10} {mean:>11.3f} {geo:>9.3f} {phases:>14}"
            for name, mean, geo, phases in rows
        ],
    )
    for name, mean, geo, phases in rows:
        assert mean >= 4 / 3 - 0.05, (name, mean)
        assert phases <= budget
        # Realised phase counts track log_{geo}(n).
        assert phases <= 3 * math.log(N) / math.log(max(1.25, geo))

    # Lemma 2: fixed-budget Monte Carlo runs are always exact here.
    graph = random_connected_graph(32, 0.15, seed=7)
    success = fixed_mode_success_rate(graph, seeds=range(5))
    report.record(
        "Lemma 2 / fixed-budget Monte Carlo success",
        f"{success.successes}/{success.runs} exact MSTs "
        f"(bound: failure <= 1/n^3); worst AT={success.max_awake}",
    )
    assert success.success_rate == 1.0

    benchmark.pedantic(
        lambda: contraction_statistics(
            random_connected_graph(64, 0.1, seed=1), seeds=range(5)
        ),
        rounds=3,
        iterations=1,
    )
