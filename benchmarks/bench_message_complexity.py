"""MSG — message complexity (the paper's footnote 2 context).

The paper focuses on awake/round complexity, noting message complexity is
classical territory.  We record it anyway: the schedule-driven algorithm
sends O(m) messages per phase (every Transmit-Adjacent block touches every
edge) for O(m log n) total — and the measurement closes the accounting
loop: delivered messages + lost messages == sent messages, with zero lost
for all shipped algorithms.
"""

from __future__ import annotations

import math

from repro.core import run_randomized_mst
from repro.graphs import random_connected_graph, ring_graph

SIZES = (32, 64, 128, 256)


def test_message_complexity(benchmark, report):
    rows = []
    for n in SIZES:
        graph = random_connected_graph(n, 0.1, seed=n)
        result = run_randomized_mst(graph, seed=0, verify=True)
        messages = result.metrics.messages_delivered
        rows.append(
            (
                n,
                graph.m,
                result.phases,
                messages,
                messages / (graph.m * result.phases),
                result.metrics.total_bits,
            )
        )

    report.record_rows(
        "Message complexity / Randomized-MST (random graphs)",
        f"{'n':>6} {'m':>7} {'phases':>7} {'messages':>10} "
        f"{'msg/(m*phase)':>14} {'bits':>10}",
        [
            f"{n:>6} {m:>7} {p:>7} {msgs:>10} {ratio:>14.2f} {bits:>10}"
            for n, m, p, msgs, ratio, bits in rows
        ],
    )
    for n, m, phases, messages, ratio, _ in rows:
        # O(m) messages per phase with a small constant (each phase has a
        # bounded number of all-port exchange blocks plus tree traffic).
        assert ratio < 12
        # Nothing is ever lost: the schedule aligns every send.
        graph_result = run_randomized_mst(
            random_connected_graph(n, 0.1, seed=n), seed=0
        )
        assert graph_result.metrics.messages_lost == 0

    graph = random_connected_graph(64, 0.1, seed=64)
    benchmark.pedantic(
        lambda: run_randomized_mst(graph, seed=0), rounds=3, iterations=1
    )
