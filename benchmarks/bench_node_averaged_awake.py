"""NODE-AVG — node-averaged awake complexity (Appendix A context).

The sleeping model's companion measure (Chatterjee, Gmyr, Pandurangan
2020): the *average* number of awake rounds per node.  For the paper's MST
algorithms the average tracks the worst case — every node participates in
every phase — both Θ(log n); this bench records the series and checks the
average never exceeds the worst case and stays logarithmic, completing the
measurement surface around Table 1.
"""

from __future__ import annotations

import math

from repro.analysis import fit_scaling
from repro.core import run_deterministic_mst, run_randomized_mst
from repro.graphs import random_connected_graph

SIZES = (16, 32, 64, 128)


def test_node_averaged_awake(benchmark, report):
    rows = []
    for n in SIZES:
        graph = random_connected_graph(n, 0.1, seed=n)
        randomized = run_randomized_mst(graph, seed=0, verify=True)
        deterministic = run_deterministic_mst(graph, verify=True)
        rows.append(
            (
                n,
                randomized.metrics.mean_awake,
                randomized.metrics.max_awake,
                deterministic.metrics.mean_awake,
                deterministic.metrics.max_awake,
            )
        )

    report.record_rows(
        "Node-averaged vs worst-case awake complexity",
        f"{'n':>6} {'rand avg':>9} {'rand max':>9} {'det avg':>9} {'det max':>9}",
        [
            f"{n:>6} {ra:>9.1f} {rm:>9} {da:>9.1f} {dm:>9}"
            for n, ra, rm, da, dm in rows
        ],
    )
    for n, rand_avg, rand_max, det_avg, det_max in rows:
        assert rand_avg <= rand_max
        assert det_avg <= det_max
        # The average stays within a small constant of the worst case
        # (every node works every phase; there are no free riders).
        assert rand_avg >= rand_max / 4
    fit = fit_scaling(
        [n for n, *_ in rows], [avg for _, avg, *_ in rows], "log"
    )
    assert fit.is_bounded(3.0), fit

    graph = random_connected_graph(64, 0.1, seed=64)
    benchmark.pedantic(
        lambda: run_randomized_mst(graph, seed=0), rounds=3, iterations=1
    )
