"""OBS1 — Observation 1: DSD is solvable in O(D) = O(c / log n) rounds.

The flip side of Theorem 4: the *round* complexity of DSD on G_rc is small
(the X-tree shortcuts make D = Θ(c / log n)) — it is the *awake* complexity
that can't also be small.  This bench measures the direct flooding
protocol's completion time across growing c and checks it tracks D + k,
while its traditional-model awake complexity equals its full run time.
"""

from __future__ import annotations

from repro.lower_bounds import GrcTopology, random_sd_instance, run_dsd_flooding

COLUMNS = (16, 32, 64, 128)
ROWS = 4


def test_dsd_completion_tracks_diameter(benchmark, report):
    rows = []
    for c in COLUMNS:
        topology = GrcTopology(ROWS, c)
        graph, _ = topology.to_weighted_graph()
        diameter = graph.diameter()
        instance = random_sd_instance(topology.r - 1, seed=c)
        result = run_dsd_flooding(topology, instance)
        assert result.correct
        rows.append(
            (
                c,
                topology.n,
                diameter,
                result.completion_rounds,
                result.rounds,
            )
        )

    report.record_rows(
        "Observation 1 / direct DSD on G_rc (r = 4)",
        f"{'c':>6} {'n':>6} {'D':>5} {'completion':>11} {'relay RT':>9}",
        [
            f"{c:>6} {n:>6} {d:>5} {comp:>11} {rt:>9}"
            for c, n, d, comp, rt in rows
        ],
    )
    for c, n, diameter, completion, _ in rows:
        # Completion = Θ(D + k): within a small additive/multiplicative
        # envelope of the diameter (k = 3 here).
        assert completion <= 2 * diameter + 10
    # Completion grows with c (the Θ(c / log n) diameter term)...
    completions = [comp for *_, comp, _ in rows]
    assert completions[-1] > completions[0]
    # ...but far slower than c itself thanks to the X-tree shortcuts.
    assert completions[-1] < COLUMNS[-1]

    topology = GrcTopology(ROWS, 64)
    instance = random_sd_instance(topology.r - 1, seed=0)
    benchmark.pedantic(
        lambda: run_dsd_flooding(topology, instance), rounds=3, iterations=1
    )
