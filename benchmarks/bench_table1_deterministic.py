"""T1-D — Table 1 row 2: Deterministic-MST, AT = O(log n), RT = O(nN log n).

Also exercises Theorem 2's characteristic N-dependence: growing the ID
range N (at fixed n) multiplies the round complexity but leaves the awake
complexity flat.
"""

from __future__ import annotations

import math

from repro.analysis import fit_scaling
from repro.core import run_deterministic_mst
from repro.graphs import random_connected_graph, ring_graph

SIZES = (8, 16, 32, 64)
SEEDS = (0, 1)


def test_deterministic_awake_logarithmic(benchmark, report):
    rows = []
    for n in SIZES:
        awake = rounds = 0.0
        for seed in SEEDS:
            graph = random_connected_graph(n, 0.15, seed=seed)
            result = run_deterministic_mst(graph, verify=True)
            awake += result.metrics.max_awake
            rounds += result.metrics.rounds
        rows.append((n, awake / len(SEEDS), rounds / len(SEEDS)))

    ns = [n for n, _, _ in rows]
    awake_fit = fit_scaling(ns, [a for _, a, _ in rows], "log")
    # With IDs 1..n we have N = n, so RT = O(n^2 log n).
    rounds_fit = fit_scaling(ns, [r for _, _, r in rows], "n2log")
    report.record_rows(
        "Table 1 / Deterministic-MST (random graphs, N = n)",
        f"{'n':>6} {'AT':>9} {'AT/log2n':>9} {'RT':>11} {'RT/nNlog2n':>11}",
        [
            f"{n:>6} {a:>9.1f} {a / math.log2(n):>9.2f} "
            f"{r:>11.0f} {r / (n * n * math.log2(n)):>11.2f}"
            for n, a, r in rows
        ],
    )
    assert awake_fit.is_bounded(3.5), awake_fit
    assert rounds_fit.is_bounded(3.5), rounds_fit

    graph = random_connected_graph(32, 0.15, seed=0)
    benchmark.pedantic(lambda: run_deterministic_mst(graph), rounds=3, iterations=1)


def test_deterministic_rounds_scale_with_id_range(benchmark, report):
    """Fix n, grow N: rounds grow ~linearly in N, awake stays flat."""
    n = 16
    rows = []
    for factor in (1, 4, 16):
        graph = ring_graph(n, seed=7, id_range=None if factor == 1 else factor * n)
        result = run_deterministic_mst(graph, verify=True)
        rows.append(
            (
                graph.max_id,
                result.metrics.max_awake,
                result.metrics.rounds,
                result.metrics.rounds / graph.max_id,
            )
        )
    report.record_rows(
        "Theorem 2 / N-dependence (ring, n = 16)",
        f"{'N':>6} {'AT':>7} {'RT':>10} {'RT/N':>9}",
        [f"{N:>6} {a:>7} {r:>10} {per:>9.0f}" for N, a, r, per in rows],
    )
    # Awake flat within 2x; RT/N flat within 3x across a 16x range of N.
    awakes = [a for _, a, _, _ in rows]
    assert max(awakes) <= 2 * min(awakes)
    per_n = [per for _, _, _, per in rows]
    assert max(per_n) <= 3 * min(per_n)

    graph = ring_graph(n, seed=7, id_range=4 * n)
    benchmark.pedantic(lambda: run_deterministic_mst(graph), rounds=3, iterations=1)
