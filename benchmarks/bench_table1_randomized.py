"""T1-R — Table 1 row 1: Randomized-MST, AT = O(log n), RT = O(n log n).

Regenerates the row by measuring awake and round complexity across sizes,
asserts the claimed shapes (ratio to the model stays bounded), and times a
representative run.
"""

from __future__ import annotations

import math

from repro.analysis import fit_scaling
from repro.core import run_randomized_mst
from repro.graphs import random_connected_graph, ring_graph

SIZES = (16, 32, 64, 128, 256)
SEEDS = (0, 1, 2)


def measure(graph_family):
    rows = []
    for n in SIZES:
        awake = rounds = 0.0
        for seed in SEEDS:
            graph = graph_family(n, seed)
            result = run_randomized_mst(graph, seed=seed, verify=True)
            awake += result.metrics.max_awake
            rounds += result.metrics.rounds
        rows.append((n, awake / len(SEEDS), rounds / len(SEEDS)))
    return rows


def test_randomized_awake_is_logarithmic(benchmark, report):
    rows = measure(lambda n, s: random_connected_graph(n, 0.1, seed=s))
    ns = [n for n, _, _ in rows]
    awakes = [a for _, a, _ in rows]
    rounds = [r for _, _, r in rows]

    awake_fit = fit_scaling(ns, awakes, "log")
    rounds_fit = fit_scaling(ns, rounds, "nlog")
    report.record_rows(
        "Table 1 / Randomized-MST (random graphs)",
        f"{'n':>6} {'AT':>9} {'AT/log2n':>9} {'RT':>10} {'RT/nlog2n':>10}",
        [
            f"{n:>6} {a:>9.1f} {a / math.log2(n):>9.2f} "
            f"{r:>10.0f} {r / (n * math.log2(n)):>10.2f}"
            for n, a, r in rows
        ],
    )
    # Shape assertions: the paper's claimed orders.  A spread of k means
    # the measured constant wanders by at most a factor k across a 16x
    # range of n — linear growth would show spread ~16/log-ratio >> 4.
    assert awake_fit.is_bounded(3.0), awake_fit
    assert rounds_fit.is_bounded(3.0), rounds_fit

    # Time one representative mid-size run.
    graph = random_connected_graph(64, 0.1, seed=0)
    benchmark.pedantic(
        lambda: run_randomized_mst(graph, seed=0), rounds=3, iterations=1
    )


def test_randomized_on_rings_matches_table(benchmark, report):
    rows = measure(lambda n, s: ring_graph(n, seed=s))
    ns = [n for n, _, _ in rows]
    awake_fit = fit_scaling(ns, [a for _, a, _ in rows], "log")
    report.record_rows(
        "Table 1 / Randomized-MST (rings)",
        f"{'n':>6} {'AT':>9} {'RT':>10}",
        [f"{n:>6} {a:>9.1f} {r:>10.0f}" for n, a, r in rows],
    )
    assert awake_fit.is_bounded(3.0), awake_fit
    graph = ring_graph(64, seed=0)
    benchmark.pedantic(
        lambda: run_randomized_mst(graph, seed=0), rounds=3, iterations=1
    )
