"""T1-LB1 — Theorem 3: Ω(log n) awake complexity on weighted rings.

Reproduces the lower-bound experiment three ways:

1. builds the paper's ring family (4n+4 nodes, random poly(n) IDs/weights);
2. tracks causal knowledge during a real MST run and checks the geometric
   growth fact (per awake round, knowledge at most triples on a ring) plus
   the decision certificate (whoever omits the heaviest edge has causally
   reached both heavy edges, so its awake count is >= log_3 separation);
3. shows our awake-optimal algorithm *matches* the bound: measured awake
   complexity on the family is Θ(log n).
"""

from __future__ import annotations

import math

from repro.analysis import fit_scaling
from repro.core import run_randomized_mst
from repro.lower_bounds import (
    RING_GROWTH_FACTOR,
    certify_ring_run,
    knowledge_growth_curve,
    max_growth_factor,
    theorem3_ring,
)

SIZES = (2, 4, 8, 16, 32)


def test_ring_awake_matches_lower_bound(benchmark, report):
    rows = []
    for n in SIZES:
        instance = theorem3_ring(n, seed=n)
        result = run_randomized_mst(
            instance.graph, seed=1, track_knowledge=True, verify=True
        )
        certificate = certify_ring_run(instance, result.simulation)
        growth = max_growth_factor(
            knowledge_growth_curve(result.simulation.knowledge)
        )
        assert certificate.holds
        assert growth <= RING_GROWTH_FACTOR + 1e-9
        rows.append(
            (
                instance.ring_size,
                instance.separation,
                certificate.required_awake,
                certificate.observed_awake,
                result.metrics.max_awake,
                growth,
            )
        )

    sizes = [size for size, *_ in rows]
    awake_fit = fit_scaling(sizes, [row[4] for row in rows], "log")
    report.record_rows(
        "Theorem 3 / ring family (awake lower bound)",
        f"{'ring n':>7} {'sep':>5} {'LB':>4} {'obs':>5} {'AT':>6} {'growth':>7}",
        [
            f"{size:>7} {sep:>5} {req:>4} {obs:>5} {awake:>6} {growth:>7.2f}"
            for size, sep, req, obs, awake, growth in rows
        ],
    )
    assert awake_fit.is_bounded(4.0), awake_fit

    instance = theorem3_ring(8, seed=8)
    benchmark.pedantic(
        lambda: run_randomized_mst(instance.graph, seed=1),
        rounds=3,
        iterations=1,
    )
