"""T1-LB2 — Theorem 4: awake x rounds is Ω̃(n) for everyone.

Measures the product for both sleeping algorithms and the traditional
comparator across sizes: every algorithm sits at or above n (up to the
polylog the theorem hides), and the randomized algorithm — being both
awake-optimal and near-round-optimal given that — tracks n·polylog(n),
i.e. its product per n grows only polylogarithmically.
"""

from __future__ import annotations

from repro.baselines import run_traditional_ghs
from repro.core import run_deterministic_mst, run_randomized_mst
from repro.graphs import random_connected_graph

SIZES = (16, 32, 64, 128)


SEEDS = (0, 1, 2)


def test_product_lower_bound(benchmark, report):
    rows = []
    for n in SIZES:
        graph = random_connected_graph(n, 0.1, seed=n)
        randomized = sum(
            run_randomized_mst(graph, seed=s, verify=True).metrics.awake_round_product
            for s in SEEDS
        ) / len(SEEDS)
        deterministic = run_deterministic_mst(graph, verify=True)
        traditional = run_traditional_ghs(graph, seed=0)
        rows.append(
            (
                n,
                randomized,
                deterministic.metrics.awake_round_product,
                traditional.metrics.awake_round_product,
            )
        )

    report.record_rows(
        "Theorem 4 / awake x rounds product (random graphs)",
        f"{'n':>6} {'rand AT*RT':>12} {'det AT*RT':>13} {'trad AT*RT':>13} "
        f"{'rand/n':>9}",
        [
            f"{n:>6} {r:>12.0f} {d:>13} {t:>13} {r / n:>9.0f}"
            for n, r, d, t in rows
        ],
    )
    for n, randomized, deterministic, traditional in rows:
        # The Ω̃(n) bound: nobody beats n (the polylog slack means the
        # bound in absolute terms is far below these).
        assert randomized >= n
        assert deterministic >= n
        assert traditional >= n
    # The randomized algorithm is near-optimal: product / n grows only
    # polylogarithmically — ~log^2 n, a factor log2^2(128)/log2^2(16) ≈ 3
    # over this range; allow 4x slack for the random phase count.
    first, last = rows[0], rows[-1]
    assert (last[1] / last[0]) / (first[1] / first[0]) < 12

    graph = random_connected_graph(64, 0.1, seed=64)
    benchmark.pedantic(
        lambda: run_randomized_mst(graph, seed=0), rounds=3, iterations=1
    )
