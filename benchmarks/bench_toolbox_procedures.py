"""TOOLBOX — Observations 2-4: each LDT procedure is O(1) awake, O(n) rounds.

Measures, across sizes, the awake rounds per node and the block length of
each procedure; the awake cost must be a small constant independent of n
while the round cost is exactly one 2n+2 block.
"""

from __future__ import annotations

from repro.core import NOTHING, block_span
from repro.core.harness import FLDTPlan, run_procedure
from repro.core.toolbox import fragment_broadcast, transmit_adjacent, upcast_min
from repro.graphs import path_graph, random_tree

SIZES = (8, 32, 128, 512)


def broadcast(ctx, ldt, clock, value):
    result = yield from fragment_broadcast(
        ctx, ldt, clock.take(), 42 if ldt.is_root else NOTHING
    )
    return result


def upcast(ctx, ldt, clock, value):
    result = yield from upcast_min(ctx, ldt, clock.take(), ctx.node_id)
    return result


def adjacent(ctx, ldt, clock, value):
    inbox = yield from transmit_adjacent(
        ctx, ldt, clock.take(), ctx.broadcast(ctx.node_id)
    )
    return len(inbox)


PROCEDURES = [
    ("Fragment-Broadcast", broadcast, "tree"),
    ("Upcast-Min", upcast, "tree"),
    ("Transmit-Adjacent", adjacent, "singletons"),
]


def run_once(procedure, structure, n, seed=1):
    graph = path_graph(n, seed=seed) if n <= 32 else random_tree(n, seed=seed)
    if structure == "tree":
        plan = FLDTPlan.single_tree(graph, graph.node_ids[0])
    else:
        plan = FLDTPlan.singletons(graph)
    return run_procedure(graph, plan, procedure, refresh_neighbors=False)


def test_toolbox_awake_constant_rounds_linear(benchmark, report):
    lines = []
    for name, procedure, structure in PROCEDURES:
        for n in SIZES:
            run = run_once(procedure, structure, n)
            awake = run.simulation.metrics.max_awake
            rounds = run.simulation.metrics.rounds
            lines.append(
                f"{name:<20} n={n:>4}: awake={awake} rounds={rounds} "
                f"(block={block_span(n)})"
            )
            # Observations 2-4: O(1) awake (constant <= 2), one block.
            assert awake <= 2
            assert rounds <= block_span(n)
    report.record("Observations 2-4 / toolbox procedures", "\n".join(lines))

    benchmark.pedantic(
        lambda: run_once(upcast, "tree", 128), rounds=3, iterations=1
    )
