"""Benchmark-suite plumbing: a reporter that prints paper-style series.

Every bench records the rows/series its paper artifact reports (Table 1
rows, the Theorem 3 awake-vs-n series, ...) through the ``report`` fixture;
they are printed together in the terminal summary so that
``pytest benchmarks/ --benchmark-only`` output contains the regenerated
tables alongside the timing table.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

_SERIES: List[Tuple[str, str]] = []


class SeriesReporter:
    """Collects named text blocks to print after the run."""

    def record(self, title: str, text: str) -> None:
        _SERIES.append((title, text))

    def record_rows(self, title: str, header: str, rows) -> None:
        lines = [header] + [str(row) for row in rows]
        self.record(title, "\n".join(lines))


@pytest.fixture
def report() -> SeriesReporter:
    return SeriesReporter()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _SERIES:
        return
    terminalreporter.write_sep("=", "reproduced paper artifacts")
    for title, text in _SERIES:
        terminalreporter.write_sep("-", title)
        terminalreporter.write_line(text)
