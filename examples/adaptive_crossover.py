#!/usr/bin/env python3
"""Regenerate ``CAMPAIGN_crossover.json`` and print the fitted curves.

Runs the committed ``examples/campaigns/crossover.toml`` campaign
end to end — two dense awake curves (randomized MST on the array
engine, Sleeping-MIS), the sleeping-vs-always-awake bisection, and the
drop-rate threshold scan — then:

* prints the bisection's audit trail: every probed size, the two means
  compared, and the crossover — the smallest n where the sleeping
  algorithm's max awake time beats Pipelined-GHS's round count.  The
  binary search spends ⌈log2(range)⌉-scale probes, not a full sweep.
* prints both fitted awake curves with their seed-level bootstrap
  confidence bands: MST against ``c * log2 n``, MIS against
  ``c * log2 log2 n`` — the two regimes the paper pair separates.
* writes the full ``repro-campaign/1`` report to
  ``CAMPAIGN_crossover.json`` at the repo root (the committed artifact;
  stable formatting, deterministic content, so regeneration diffs
  clean).

The campaign ledger lands under ``.repro-campaigns/crossover/`` — a
second invocation resumes from it and reproduces the artifact
byte-for-byte without re-running finished cells.

Run:  PYTHONPATH=src python examples/adaptive_crossover.py [output.json]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.campaigns import (
    CampaignSpec,
    LocalGridExecutor,
    ledger_path,
    render_report,
    run_campaign,
    validate_campaign_report,
    write_report,
)
from repro.orchestrator import ResultCache

REPO_ROOT = Path(__file__).resolve().parent.parent
SPEC = REPO_ROOT / "examples" / "campaigns" / "crossover.toml"
DEFAULT_OUTPUT = REPO_ROOT / "CAMPAIGN_crossover.json"


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_OUTPUT
    spec = CampaignSpec.load(SPEC)
    executor = LocalGridExecutor(
        store=ledger_path(REPO_ROOT / ".repro-campaigns", spec.name),
        cache=ResultCache(REPO_ROOT / ".repro-cache"),
        log=lambda message: print(f"  {message}", file=sys.stderr),
    )
    print(f"running campaign {spec.name!r} from {SPEC.name} ...", file=sys.stderr)
    report = run_campaign(spec, executor, log=lambda m: None)
    validate_campaign_report(report)

    print(render_report(report))

    bisect = next(d for d in report["drivers"] if d["kind"] == "bisect")
    span = bisect["range"][1] - bisect["range"][0] + 1
    print(
        f"\ncrossover located at n={bisect['crossover']} with "
        f"{bisect['probe_count']} probes over a {span}-size range "
        f"(binary search, budget {bisect['budget']})"
    )

    write_report(report, output)
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
