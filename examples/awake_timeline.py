#!/usr/bin/env python3
"""Visualise the sleeping model: who is awake, when.

Renders ASCII awake-timelines (rows = nodes, columns = round buckets) for
three executions of MST on the same ring:

* ``Randomized-MST`` in the sleeping model — thin aligned stripes (the
  Transmission-Schedule blocks) in an ocean of sleep;
* ``Pipelined-GHS`` in the traditional model — solid ink (always awake);
* classical flooding — a telescoping wedge (node at depth d listens for d
  rounds).

Run:  python examples/awake_timeline.py
"""

from __future__ import annotations

from repro.analysis import awake_timeline
from repro.baselines import run_flooding_broadcast, run_pipelined_ghs
from repro.core import run_randomized_mst
from repro.graphs import ring_graph
from repro.obs import render_block_table


def main() -> None:
    graph = ring_graph(24, seed=9)
    print(f"ring n={graph.n}; '#' = awake in that round bucket\n")

    sleeping = run_randomized_mst(
        graph, seed=0, trace=True, observe=True, verify=True
    )
    timeline = awake_timeline(sleeping.simulation.trace, graph.node_ids, width=68)
    print("Randomized-MST (sleeping model) — "
          f"AT={sleeping.metrics.max_awake}, RT={sleeping.metrics.rounds}, "
          f"awake fraction={_fraction(sleeping):.1%}")
    print(timeline.render(max_nodes=8))

    classical = run_pipelined_ghs(graph, trace=True)
    timeline = awake_timeline(classical.simulation.trace, graph.node_ids, width=68)
    print("\nPipelined-GHS (traditional model) — "
          f"AT={classical.metrics.max_awake}, RT={classical.metrics.rounds}, "
          f"awake fraction={_fraction(classical):.1%}")
    print(timeline.render(max_nodes=8))

    flooding = run_flooding_broadcast(graph, trace=True)
    timeline = awake_timeline(flooding.trace, graph.node_ids, width=68)
    print("\nFlooding broadcast (traditional model) — "
          f"AT={flooding.metrics.max_awake}, RT={flooding.metrics.rounds}")
    print(timeline.render(max_nodes=8))

    print("\nThe stripes are the point: the sleeping algorithms pack all "
          "radio activity into\na few globally synchronised rounds per "
          "Transmission-Schedule block and sleep\nthrough everything else.")

    print("\nWhere those awake rounds go (max per node, from span data — "
          "the paper's\n9 blocks × O(1) awake rounds per phase):")
    print(render_block_table(sleeping.spans))


def _fraction(result) -> float:
    metrics = result.metrics
    cells = metrics.rounds * len(metrics.per_node)
    return metrics.total_awake_rounds / cells if cells else 0.0


if __name__ == "__main__":
    main()
