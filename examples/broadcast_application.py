#!/usr/bin/env python3
"""Application: energy-efficient broadcast over a freshly built MST.

The paper's introduction motivates MST as the backbone for energy-efficient
broadcast in wireless networks.  This example composes the library's
protocol generators to build that application end to end, inside a single
sleeping-model execution per node:

1. run ``Randomized-MST`` (via ``randomized_mst_session``, which hands back
   the final LDT and the still-aligned block clock);
2. the MST root then broadcasts ``k`` messages down the tree, each costing
   every node only O(1) awake rounds (``Fragment-Broadcast``), and the
   leaves convergecast an acknowledgment (``Upcast-Min``).

For comparison we run classical flooding for the same ``k`` messages: each
flood costs Θ(depth) awake rounds per node because a listener cannot know
when the wave arrives.

Run:  python examples/broadcast_application.py
"""

from __future__ import annotations

from repro.baselines import run_flooding_broadcast
from repro.core import (
    NOTHING,
    fragment_broadcast,
    randomized_mst_session,
    upcast_min,
)
from repro.graphs import random_geometric_graph
from repro.sim import simulate

NUM_BROADCASTS = 5


def mst_then_broadcast_protocol(ctx):
    """Build the MST, then serve NUM_BROADCASTS root-to-all messages."""
    output, ldt, clock = yield from randomized_mst_session(ctx)

    received = []
    for k in range(NUM_BROADCASTS):
        payload = ("sensor-command", k) if ldt.is_root else NOTHING
        message = yield from fragment_broadcast(ctx, ldt, clock.take(), payload)
        received.append(message)
        # Leaves acknowledge: the root learns the minimum node ID that
        # received (all of them did — it sees the global minimum).
        ack = yield from upcast_min(ctx, ldt, clock.take(), ctx.node_id)
        if ldt.is_root:
            assert ack == min(ctx.node_id, ack)
    return {"mst": output, "broadcasts": received}


def main() -> None:
    n = 64
    graph = random_geometric_graph(n, radius=0.35, seed=11)
    print(f"sensor network: n={graph.n} m={graph.m}\n")

    result = simulate(graph, mst_then_broadcast_protocol, seed=11)
    metrics = result.metrics

    # Every node received every broadcast.
    for node, payload in result.node_results.items():
        assert payload["broadcasts"] == [
            ("sensor-command", k) for k in range(NUM_BROADCASTS)
        ], f"node {node} missed a broadcast"

    mst_only = simulate(
        graph,
        lambda ctx: _mst_only(ctx),
        seed=11,
    )
    awake_for_broadcasts = metrics.max_awake - mst_only.metrics.max_awake
    print("sleeping-model pipeline (MST + broadcasts over the LDT):")
    print(f"  total awake complexity      : {metrics.max_awake}")
    print(f"  ... of which the {NUM_BROADCASTS} broadcasts+acks cost "
          f"<= {awake_for_broadcasts} awake rounds "
          f"({awake_for_broadcasts / NUM_BROADCASTS:.1f} per broadcast)")
    print(f"  total rounds                : {metrics.rounds}")

    flood = run_flooding_broadcast(graph)
    print("\nclassical flooding (one message, traditional model):")
    print(f"  awake complexity            : {flood.metrics.max_awake} "
          f"(= Θ(depth); x{NUM_BROADCASTS} messages "
          f"= {flood.metrics.max_awake * NUM_BROADCASTS})")
    print(f"  rounds                      : {flood.metrics.rounds}")

    print("\nOnce the LDT exists, each further dissemination costs O(1) "
          "awake rounds per node —\nthe tree amortises the paper's "
          "O(log n) construction across the network's lifetime.")


def _mst_only(ctx):
    output, _, _ = yield from randomized_mst_session(ctx)
    return output


if __name__ == "__main__":
    main()
