#!/usr/bin/env python3
"""Fault-injection sweep: how does awake-optimal MST fail under loss?

Sleeping-model protocols already tolerate one kind of "loss" by design —
messages sent to sleeping nodes vanish (Section 1.1).  This sweep asks
what happens when the *channel itself* also drops messages: for each drop
rate, randomized MST runs over several seeds through the orchestrator
(``drop:P`` channel specs as a grid axis) and each run is classified by
``verify_or_diagnose``:

* ``correct``        — terminated, output convention holds, tree is the MST;
* ``detected_wrong`` — the protocol (or output validation) caught the fault;
* ``silent_wrong``   — terminated cleanly with a tree that is NOT the MST,
                       the failure mode benchmarks must guard against;
* ``hung``           — exceeded a simulation limit without terminating.

Every cell also runs with the ``repro.invariants`` monitors attached, so
beyond *that* a run failed, the sweep reports *which paper invariant*
broke first in each drop-rate bucket — localising the failure to a lemma
(star-merge contract, MOE sparsification, FLDT structure, ...) instead of
a generic wrong-output error.

The takeaway: the protocols are loss-*detecting*, not loss-*tolerant* —
drops overwhelmingly surface as ``detected_wrong`` crashes, not silent
corruption, because fragment bookkeeping goes visibly inconsistent the
moment an expected message is missing.

Run:  python examples/fault_sweep.py
"""

from __future__ import annotations

from collections import Counter

from repro.orchestrator import expand_grid, run_jobs

DROP_RATES = (0.0, 0.005, 0.02, 0.05, 0.2)
SEEDS = range(6)
N = 24


def main() -> None:
    fault_specs = [
        "perfect" if rate == 0.0 else f"drop:{rate}" for rate in DROP_RATES
    ]
    specs = expand_grid(
        ["randomized"], ["gnp"], [N], SEEDS, faults=fault_specs,
        monitors="all",
    )
    print(
        f"randomized MST on gnp graphs, n={N}, {len(list(SEEDS))} seeds, "
        f"drop rates {', '.join(str(rate) for rate in DROP_RATES)}, "
        "invariant monitors attached"
    )
    report = run_jobs(specs, workers=2)
    assert report.failed == 0, "fault outcomes are classifications, not failures"

    by_rate: dict = {spec: Counter() for spec in fault_specs}
    first_invariants: dict = {spec: Counter() for spec in fault_specs}
    for spec, record in zip(specs, report.records):
        metrics = record.metrics or {}
        faults = metrics.get("faults") or "perfect"
        outcome = metrics.get("outcome", "correct" if metrics.get("correct") else "?")
        by_rate[faults][outcome] += 1
        first = metrics.get("first_invariant")
        if first:
            first_invariants[faults][first] += 1

    header = (
        f"{'drop rate':>10} {'correct':>8} {'detected':>9} "
        f"{'silent':>7} {'hung':>5}  {'first broken invariant':<28}"
    )
    print()
    print(header)
    print("-" * len(header))
    for rate, spec in zip(DROP_RATES, fault_specs):
        counts = by_rate[spec]
        firsts = first_invariants[spec]
        if firsts:
            broken = ", ".join(
                f"{name} x{times}" for name, times in firsts.most_common()
            )
        else:
            broken = "-"
        print(
            f"{rate:>10} {counts['correct']:>8} {counts['detected_wrong']:>9} "
            f"{counts['silent_wrong']:>7} {counts['hung']:>5}  {broken:<28}"
        )

    silent = sum(counts["silent_wrong"] for counts in by_rate.values())
    print()
    if silent == 0:
        print(
            "No silent corruption: every faulted run either succeeded or "
            "failed loudly\n(crashed on a missing message or flunked the "
            "output-convention check)."
        )
    else:
        print(
            f"WARNING: {silent} run(s) terminated cleanly with a wrong tree "
            "- silent corruption."
        )
    print(
        "Where monitors caught a violation before the crash, the column "
        "above names\nthe first paper invariant that broke (see "
        "docs/invariants.md)."
    )


if __name__ == "__main__":
    main()
