#!/usr/bin/env python3
"""Demonstrate both lower-bound constructions (Section 3) empirically.

Theorem 3 — Ω(log n) awake on rings: builds the weighted-ring family,
tracks causal knowledge during a real MST execution, and prints the
decision certificate: whoever omits the heaviest edge causally reached both
heavy edges, and knowledge grows at most 3x per awake round, so
log_3(separation) awake rounds were unavoidable.

Theorem 4 — Ω̃(n) on awake x rounds: builds the Figure 1 graph G_rc,
encodes random set-disjointness instances as MST inputs (SD → DSD → CSS →
MST), and answers them by actually running the distributed algorithm.

Run:  python examples/lower_bound_demo.py
"""

from __future__ import annotations

from repro import run_randomized_mst
from repro.lower_bounds import (
    GrcTopology,
    certify_ring_run,
    dsd_marked_edges,
    random_sd_instance,
    theorem3_ring,
    theorem4_regime,
)


def theorem3_demo() -> None:
    print("=== Theorem 3: Ω(log n) awake complexity on rings ===\n")
    header = (f"{'ring n':>7} {'separation':>11} {'required':>9} "
              f"{'observed':>9} {'growth':>7} {'AT':>5}")
    print(header)
    print("-" * len(header))
    for n in (4, 8, 16, 32):
        instance = theorem3_ring(n, seed=n)
        result = run_randomized_mst(
            instance.graph, seed=1, track_knowledge=True, verify=True
        )
        certificate = certify_ring_run(instance, result.simulation)
        assert certificate.holds
        print(f"{instance.ring_size:>7} {certificate.separation:>11} "
              f"{certificate.required_awake:>9} "
              f"{certificate.observed_awake:>9} "
              f"{certificate.observed_growth:>7.2f} "
              f"{result.metrics.max_awake:>5}")
    print("\n'required' = ceil(log_3 separation): the awake rounds any "
          "algorithm needs before\na node can causally know both heavy "
          "edges.  'observed' always meets it, and the\nper-round knowledge "
          "growth factor never exceeds 3 — the two facts the proof rests on.\n")


def theorem4_demo() -> None:
    print("=== Theorem 4: G_rc and the SD -> DSD -> CSS -> MST chain ===\n")
    r, c = theorem4_regime(240)
    topology = GrcTopology(r, c)
    graph, _ = topology.to_weighted_graph()
    print(f"G_rc: r={r} rows x c={c} columns, |X|={topology.x_size}, "
          f"n={topology.n}, diameter={graph.diameter()} "
          f"(<= {topology.diameter_upper_bound()}, vs c={c})\n")

    for seed, force in ((1, True), (2, False), (3, True), (4, False)):
        instance = random_sd_instance(topology.r - 1, seed=seed,
                                      force_disjoint=force)
        marked = dsd_marked_edges(topology, instance)
        weighted, threshold = topology.to_weighted_graph(marked)
        result = run_randomized_mst(weighted, seed=0, verify=True)
        uses_heavy = any(w > threshold for w in result.mst_weights)
        answer = "DISJOINT" if not uses_heavy else "INTERSECTING"
        truth = "DISJOINT" if instance.disjoint else "INTERSECTING"
        status = "ok" if answer == truth else "WRONG"
        print(f"  x={instance.bits_alice} y={instance.bits_bob}: "
              f"MST answers {answer:<12} (truth {truth:<12}) [{status}]  "
              f"AT={result.metrics.max_awake} RT={result.metrics.rounds} "
              f"AT*RT={result.metrics.awake_round_product} (n={topology.n})")
    print("\nAnswering SD costs Ω(r) bits across the row cut; squeezing "
          "them through fewer rounds\nconcentrates congestion on the "
          "O(log n) tree nodes — hence awake x rounds = Ω̃(n).")


if __name__ == "__main__":
    theorem3_demo()
    theorem4_demo()
