#!/usr/bin/env python3
"""Reproduce Figures 2-5: one Merging-Fragments step, drawn in ASCII.

Runs the real procedure under the simulator on the Appendix C
configuration and prints the four conceptual snapshots: the initial
labelled forest (Fig. 2), the path re-labelling (Fig. 3), the subtree
re-labelling (Fig. 4, folded into the final state here since the two
Transmission-Schedule passes commit together), and the merged LDT (Fig. 5).

Run:  python examples/merging_walkthrough.py
"""

from __future__ import annotations

from repro.analysis import run_merging_walkthrough


def render(snapshots, tails_nodes):
    lines = []
    for node_id in sorted(snapshots):
        snapshot = snapshots[node_id]
        side = "tails" if node_id in tails_nodes else "heads"
        parent = "-" if snapshot.parent is None else str(snapshot.parent)
        lines.append(
            f"    node {node_id:>2} [{side}]  fragment={snapshot.fragment_id:>2}"
            f"  level={snapshot.level}  parent={parent}"
        )
    return "\n".join(lines)


def main() -> None:
    walkthrough = run_merging_walkthrough()
    tails_nodes = set(walkthrough.tails_distance)

    print("Figure 2 — initial FLDT (two fragments, MOE between "
          f"u_T={walkthrough.u_tails} and u_H={walkthrough.u_heads}):")
    print(render(walkthrough.before, tails_nodes))

    print("\nFigures 3-4 — the two Transmission-Schedule passes compute, for"
          "\nevery tails node v, NEW-LEVEL-NUM = level(u_H) + 1 + dist_T(u_T, v):")
    for node in sorted(tails_nodes):
        expected = (walkthrough.heads_root_level_of_u_heads + 1
                    + walkthrough.tails_distance[node])
        print(f"    node {node:>2}: {walkthrough.heads_root_level_of_u_heads}"
              f" + 1 + {walkthrough.tails_distance[node]} = {expected}")

    print("\nFigure 5 — after the commit (single LDT rooted at the heads "
          "root, path u_T→old-root reversed):")
    print(render(walkthrough.after, tails_nodes))

    print("\nAll of this cost each node O(1) awake rounds: one "
          "Transmit-Adjacent and two\nTransmission-Schedule passes "
          "(Section 2.2, Procedure Merging-Fragments).")


if __name__ == "__main__":
    main()
