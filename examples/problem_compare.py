#!/usr/bin/env python3
"""MST vs MIS: two awake-complexity regimes, measured side by side.

The PODC 2022 paper puts distributed MST at ``O(log n)`` awake rounds;
the companion MIS result (arXiv 2204.08359) gets maximal independent set
down to ``O(log log n)``.  Both protocols are built on the *same*
sleeping-model toolbox in this repo — Transmission-Schedule blocks of
``2n + 2`` rounds, O(1) awake rounds per block — so the gap between the
bounds is purely algorithmic, and it should be visible in measured
curves on identical graphs.

This example runs both problem bundles over gnp graphs at
n in {64, 256, 1024} (three seeds per cell, through the orchestrator's
``execute_job`` so records match what ``repro-mst batch`` produces),
then prints, per problem:

* the mean measured awake complexity per size;
* the curve normalized by the problem's own bound (``log2 n`` for MST,
  ``log2 log2 n`` for MIS) — flat ratios mean the implementation tracks
  its theory;
* the end-to-end growth factor, and the cross-problem verdict: MIS's
  awake curve must grow strictly slower than MST's.

The committed ``PROBLEMS_compare.json`` at the repo root is this
script's output at the acceptance sizes; ``repro-mst compare`` is the
CLI spelling of the same harness.

Run:  python examples/problem_compare.py [output.json]
"""

from __future__ import annotations

import sys

from repro.analysis import (
    generate_problem_comparison,
    render_comparison,
    write_comparison,
)

SIZES = (64, 256, 1024)
SEEDS = (0, 1, 2)


def main() -> int:
    payload = generate_problem_comparison(sizes=SIZES, seeds=SEEDS)
    print(render_comparison(payload))
    print()

    mst = payload["problems"]["mst"]
    mis = payload["problems"]["mis"]
    print(
        f"awake growth over n={SIZES[0]}..{SIZES[-1]}: "
        f"MST x{mst['growth']:.2f} ({mst['awake_bound']}) vs "
        f"MIS x{mis['growth']:.2f} ({mis['awake_bound']})"
    )
    ratio = mst["curve"][-1]["mean_max_awake"] / max(
        mis["curve"][-1]["mean_max_awake"], 1e-9
    )
    print(
        f"at n={SIZES[-1]} the MIS protocol is awake {ratio:.0f}x fewer "
        f"rounds than MST on the same graphs"
    )

    if len(sys.argv) > 1:
        path = write_comparison(payload, sys.argv[1])
        print(f"artifact written: {path}")

    if not payload["mis_grows_slower"]:
        print("FAILED: MIS awake did not grow slower than MST awake")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
