#!/usr/bin/env python3
"""Quickstart: build a graph, run both sleeping-model MST algorithms.

Demonstrates the core public API:

* graph generators (``repro.graphs``),
* the two awake-optimal algorithms (``run_randomized_mst`` /
  ``run_deterministic_mst``),
* the metrics the paper is about (awake complexity vs round complexity),
* correctness checking against the sequential reference MST.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro import run_deterministic_mst, run_randomized_mst
from repro.graphs import mst_weight_set, random_connected_graph


def main() -> None:
    n = 64
    graph = random_connected_graph(n, extra_edge_prob=0.1, seed=7)
    print(f"graph: n={graph.n} m={graph.m} (random connected, seed 7)")

    reference = mst_weight_set(graph)
    print(f"reference MST: {len(reference)} edges, total weight "
          f"{sum(reference)}\n")

    for name, run in (
        ("Randomized-MST   (Theorem 1)", lambda: run_randomized_mst(graph, seed=7)),
        ("Deterministic-MST (Theorem 2)", lambda: run_deterministic_mst(graph)),
    ):
        result = run()
        assert result.mst_weights == reference, "distributed MST mismatch!"
        metrics = result.metrics
        print(f"{name}")
        print(f"  phases          : {result.phases}")
        print(f"  awake complexity: {metrics.max_awake}  "
              f"(= {metrics.max_awake / math.log2(n):.1f} x log2 n)")
        print(f"  round complexity: {metrics.rounds}")
        print(f"  awake x rounds  : {metrics.awake_round_product}")
        print(f"  messages        : {metrics.messages_delivered} delivered, "
              f"{metrics.messages_lost} lost to sleepers")
        print(f"  correct MST     : {result.is_correct_mst(graph)}\n")

    print("Every node also knows *its own* MST edges (the paper's output "
          "convention):")
    some_node = graph.node_ids[0]
    output = run_randomized_mst(graph, seed=7).node_outputs[some_node]
    print(f"  node {some_node}: incident MST edge weights = "
          f"{sorted(output.mst_weights)}")


if __name__ == "__main__":
    main()
