#!/usr/bin/env python3
"""Sensor-network energy study: the paper's motivating scenario.

A wireless sensor network (random geometric graph) must build an MST —
e.g. as a backbone for energy-efficient data aggregation.  We price three
strategies under a radio energy model (awake rounds dominate; deep sleep is
nearly free):

1. ``Randomized-MST`` in the sleeping model (this paper);
2. ``Deterministic-MST`` in the sleeping model (this paper);
3. the same GHS skeleton in the traditional model, where idle listening
   burns energy every round.

The punchline: the sleeping model turns an O(n log n)-round protocol into
one whose *energy* cost per node is O(log n) radio-on rounds, multiplying
the number of protocol executions a battery can sustain.

Run:  python examples/sensor_network_energy.py
"""

from __future__ import annotations

from repro import run_deterministic_mst, run_randomized_mst
from repro.analysis import EnergyModel
from repro.baselines import run_traditional_ghs
from repro.graphs import random_geometric_graph


def main() -> None:
    model = EnergyModel(awake_mj=20.0, tx_mj=5.0, sleep_mj=0.02,
                        battery_mj=50_000.0)
    print("energy model: awake 20 mJ/round, tx 5 mJ/msg, sleep 0.02 mJ/round,"
          " battery 50 J\n")

    header = (f"{'n':>5} {'strategy':<22} {'AT':>6} {'RT':>9} "
              f"{'worst mJ':>10} {'runs/battery':>13}")
    print(header)
    print("-" * len(header))

    for n in (32, 64, 128):
        graph = random_geometric_graph(n, radius=0.35, seed=n)
        strategies = (
            ("sleeping randomized", run_randomized_mst(graph, seed=0)),
            ("sleeping deterministic", run_deterministic_mst(graph)),
            ("traditional GHS", run_traditional_ghs(graph, seed=0)),
        )
        for name, result in strategies:
            assert result.is_correct_mst(graph)
            worst = model.max_node_energy(result.metrics)
            runs = model.executions_per_battery(result.metrics)
            print(f"{n:>5} {name:<22} {result.metrics.max_awake:>6} "
                  f"{result.metrics.rounds:>9} {worst:>10.0f} {runs:>13.1f}")
        print()

    print("Note how the deterministic algorithm pays its determinism in "
          "rounds (sleep time),\nnot in energy: its battery life tracks the "
          "randomized algorithm, not the traditional one.")


if __name__ == "__main__":
    main()
