"""repro — Distributed MST in the Sleeping Model.

A full reproduction of *"Distributed MST Computation in the Sleeping Model:
Awake-Optimal Algorithms and Lower Bounds"* (Augustine, Moses Jr.,
Pandurangan; PODC 2022): the sleeping-model CONGEST simulator, the
``O(log n)``-awake randomized and deterministic MST algorithms, the
traditional-model baselines, and the Theorem 3 / Theorem 4 lower-bound
constructions with empirical certificates.

Quickstart
----------
.. code-block:: python

    from repro import run_randomized_mst
    from repro.graphs import random_connected_graph

    graph = random_connected_graph(64, seed=7)
    result = run_randomized_mst(graph, seed=7, verify=True)
    print(result.mst_weights)           # MST edges (identified by weight)
    print(result.metrics.max_awake)     # O(log n) awake complexity
    print(result.metrics.rounds)        # O(n log n) round complexity

Subpackages
-----------
``repro.sim``
    The sleeping-model synchronous CONGEST simulator.
``repro.graphs``
    Weighted graphs, generators, reference MSTs.
``repro.core``
    LDT toolbox, ``Randomized-MST``, ``Deterministic-MST``.
``repro.baselines``
    Traditional-model (always-awake) comparators.
``repro.lower_bounds``
    Theorem 3 ring family + knowledge certificates; Theorem 4 ``G_rc`` and
    the SD → DSD → CSS → MST reduction chain.
``repro.analysis``
    Complexity fits, Table 1 regeneration, ablations, energy model.
"""

from .core import (
    MSTNodeOutput,
    MSTRunResult,
    RunResult,
    run_deterministic_mst,
    run_randomized_mst,
)
from .graphs import WeightedGraph
from .sim import Awake, NodeContext, SleepingSimulator, simulate

__version__ = "1.0.0"

__all__ = [
    "Awake",
    "MSTNodeOutput",
    "MSTRunResult",
    "NodeContext",
    "RunResult",
    "SleepingSimulator",
    "WeightedGraph",
    "__version__",
    "run_deterministic_mst",
    "run_randomized_mst",
    "simulate",
]
