"""Analysis and experiment harness: fits, tables, ablations, energy model."""

from .ablation import PhaseStats, boruvka_merge_structure, worst_merge_diameter
from .compare import (
    COMPARE_SCHEMA,
    generate_problem_comparison,
    load_comparison,
    render_comparison,
    write_comparison,
)
from .complexity import (
    MODELS,
    ScalingFit,
    best_model,
    doubling_ratios,
    fit_scaling,
    geometric_mean,
)
from .energy import EnergyModel
from .fits import FitBand, PointBand, fit_records, render_fit, seed_level_fit
from .phase_history import PhaseSnapshot, contraction_ratios, phase_history
from .randomized_stats import (
    ContractionReport,
    SuccessReport,
    contraction_statistics,
    fixed_mode_success_rate,
)
from .stats import (
    SummaryStats,
    bootstrap_mean_interval,
    mean,
    percentile,
    sample_std,
    summarize,
)
from .sweep import (
    FAMILIES,
    SweepPoint,
    fit_sweep,
    points_from_records,
    run_sweep,
    to_csv,
    to_markdown,
)
from .timeline import Timeline, awake_timeline
from .tables import (
    ALGORITHMS,
    MeasuredRow,
    Table1,
    generate_table1,
    render_table,
    table1_from_records,
    table1_from_store,
)
from .walkthrough import (
    NodeSnapshot,
    Walkthrough,
    build_walkthrough_instance,
    run_merging_walkthrough,
)

__all__ = [
    "ALGORITHMS",
    "COMPARE_SCHEMA",
    "FAMILIES",
    "ContractionReport",
    "EnergyModel",
    "FitBand",
    "PointBand",
    "SuccessReport",
    "SummaryStats",
    "Timeline",
    "awake_timeline",
    "contraction_ratios",
    "contraction_statistics",
    "fixed_mode_success_rate",
    "MODELS",
    "MeasuredRow",
    "NodeSnapshot",
    "PhaseSnapshot",
    "PhaseStats",
    "ScalingFit",
    "SweepPoint",
    "Table1",
    "Walkthrough",
    "best_model",
    "bootstrap_mean_interval",
    "boruvka_merge_structure",
    "build_walkthrough_instance",
    "doubling_ratios",
    "fit_records",
    "fit_scaling",
    "fit_sweep",
    "mean",
    "percentile",
    "render_fit",
    "sample_std",
    "seed_level_fit",
    "summarize",
    "generate_problem_comparison",
    "generate_table1",
    "geometric_mean",
    "load_comparison",
    "phase_history",
    "points_from_records",
    "render_comparison",
    "render_table",
    "run_merging_walkthrough",
    "run_sweep",
    "table1_from_records",
    "table1_from_store",
    "to_csv",
    "to_markdown",
    "worst_merge_diameter",
    "write_comparison",
]
