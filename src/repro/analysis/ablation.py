"""Ablation of the coin-flip MOE restriction (why Section 2.2 needs it).

The randomized algorithm *prunes* the MOE forest with coin flips so that
every merge component is a star (one heads fragment plus adjacent tails
fragments) — supergraph diameter ≤ 2 — which is what makes a merge cost
``O(1)`` awake rounds.  Without pruning, the MOE forest's components can be
chains of length ``Θ(#fragments)`` (e.g. on a path with monotone weights),
and propagating the new fragment ID along a chain of ``k`` fragments costs
``Θ(k)`` awake rounds.

Implementing the unrestricted merge in the sleeping model would just be a
slow, broken-by-design algorithm; the honest ablation is structural.  This
module replays Borůvka phases *centrally* and measures, per phase, the
diameter of the merge components under both policies — the exact quantity
the awake cost of a merge is proportional to.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Set, Tuple

from repro.graphs import UnionFind, WeightedGraph


@dataclass(frozen=True)
class PhaseStats:
    """Merge-structure statistics for one Borůvka phase."""

    phase: int
    fragments_before: int
    fragments_after: int
    #: Largest merge-component diameter in the fragment supergraph — the
    #: awake cost a sleeping-model merge of that component would pay.
    max_component_diameter: int
    #: Number of merge components this phase.
    components: int


def _fragment_moes(
    graph: WeightedGraph, union_find: UnionFind
) -> Dict[int, Tuple[int, int, int]]:
    """Minimum outgoing edge per fragment root: root -> (w, u, v)."""
    best: Dict[int, Tuple[int, int, int]] = {}
    for edge in graph.edges():
        ru, rv = union_find.find(edge.u), union_find.find(edge.v)
        if ru == rv:
            continue
        candidate = (edge.weight, edge.u, edge.v)
        for root in (ru, rv):
            if root not in best or candidate[0] < best[root][0]:
                best[root] = candidate
    return best


def _component_diameters(
    nodes: Set[int], adjacency: Dict[int, Set[int]]
) -> Tuple[int, int]:
    """(number of components, max diameter) of the fragment supergraph."""
    seen: Set[int] = set()
    components = 0
    max_diameter = 0
    for start in nodes:
        if start in seen:
            continue
        components += 1
        # BFS to collect the component.
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency.get(node, ()):
                if neighbour not in component:
                    component.add(neighbour)
                    frontier.append(neighbour)
        seen |= component
        # Exact diameter by BFS from every member (components are small
        # relative to experiment scales; supergraphs have <= n nodes).
        for source in component:
            distances = {source: 0}
            queue = [source]
            while queue:
                node = queue.pop(0)
                for neighbour in adjacency.get(node, ()):
                    if neighbour not in distances:
                        distances[neighbour] = distances[node] + 1
                        queue.append(neighbour)
            max_diameter = max(max_diameter, max(distances.values(), default=0))
    return components, max_diameter


def boruvka_merge_structure(
    graph: WeightedGraph,
    restricted: bool,
    seed: int = 0,
    max_phases: Optional[int] = None,
) -> List[PhaseStats]:
    """Replay Borůvka phases; measure merge-component diameters per phase.

    ``restricted=True`` applies the paper's coin-flip rule (an MOE is kept
    iff its source fragment flips tails and its target flips heads);
    ``restricted=False`` keeps every MOE (classical Borůvka).
    """
    rng = Random(f"ablation/{seed}")
    union_find = UnionFind(graph.node_ids)
    stats: List[PhaseStats] = []
    phase = 0
    while union_find.components > 1:
        phase += 1
        if max_phases is not None and phase > max_phases:
            break
        moes = _fragment_moes(graph, union_find)
        fragments_before = union_find.components

        coins = {root: rng.randrange(2) for root in moes}  # 1 = heads
        adjacency: Dict[int, Set[int]] = {root: set() for root in moes}
        kept_edges: List[Tuple[int, int]] = []
        for root, (_, u, v) in moes.items():
            source = root
            target = union_find.find(u) if union_find.find(u) != root else union_find.find(v)
            if restricted and not (coins[source] == 0 and coins[target] == 1):
                continue
            adjacency.setdefault(source, set()).add(target)
            adjacency.setdefault(target, set()).add(source)
            kept_edges.append((u, v))

        components, max_diameter = _component_diameters(set(moes), adjacency)
        for u, v in kept_edges:
            union_find.union(u, v)
        stats.append(
            PhaseStats(
                phase=phase,
                fragments_before=fragments_before,
                fragments_after=union_find.components,
                max_component_diameter=max_diameter,
                components=components,
            )
        )
    return stats


def worst_merge_diameter(stats: List[PhaseStats]) -> int:
    """The largest merge-component diameter across all phases."""
    return max((entry.max_component_diameter for entry in stats), default=0)
