"""Side-by-side awake-complexity comparison across problem bundles.

The problem registry's headline artifact: run every registered problem's
default algorithm over the same ``(family, n, seed)`` grid through
:func:`repro.orchestrator.execute_job`, average the measured awake
complexity per size, normalize each problem's curve by *its own*
theoretical bound (``log2 n`` for MST, ``log2 log2 n`` for MIS), and
certify that MIS's measured curve grows strictly slower than MST's —
the empirical content of the O(log log n)-awake MIS result
(arXiv 2204.08359) sitting next to the paper's O(log n)-awake MST.

``repro-mst compare`` renders the table; ``examples/problem_compare.py``
and the ``problem-zoo-smoke`` CI job regenerate and upload the JSON
artifact (``PROBLEMS_compare.json`` at the repo root is the committed
copy at the acceptance-criteria sizes n in {64, 256, 1024}).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.orchestrator import JobSpec, execute_job
from repro.problems import problem_bundle, problem_names

from .stats import mean

#: Version tag for the comparison artifact's JSON schema.
COMPARE_SCHEMA = "repro-problems-compare/1"

#: The acceptance-criteria grid: awake growth must separate by n=1024.
DEFAULT_SIZES = (64, 256, 1024)
DEFAULT_SEEDS = (0, 1, 2)


def _problem_options(problem: str) -> Dict[str, Any]:
    # MST rides the vectorized array backend — byte-identical metrics to
    # the coroutine engine (pinned by the equivalence suite) at a fraction
    # of the wall clock, which is what makes n=1024 cells affordable in
    # CI.  MIS has no array implementation (see docs/performance.md).
    if problem == "mst":
        return {"engine": "array"}
    return {}


def generate_problem_comparison(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    family: str = "gnp",
    problems: Optional[Sequence[str]] = None,
    monitors: Optional[str] = None,
) -> Dict[str, Any]:
    """Measure every problem's awake curve on a shared grid.

    Returns the artifact payload: per problem, the raw per-cell records,
    the per-size mean awake curve with the bundle's normalizer ratio, and
    the end-to-end growth factor ``mean(max n) / mean(min n)``; plus the
    cross-problem verdict ``mis_grows_slower`` when both bundles ran.
    ``monitors`` (e.g. ``"all"``) attaches each problem's invariant
    monitors to every cell, and per-cell violation counts enter the
    records — the zero-violation assertion CI makes.
    """
    sizes = sorted(set(int(n) for n in sizes))
    seeds = list(seeds)
    selected = list(problems) if problems is not None else list(problem_names())
    payload: Dict[str, Any] = {
        "schema": COMPARE_SCHEMA,
        "family": family,
        "sizes": sizes,
        "seeds": seeds,
        "problems": {},
    }
    for problem in selected:
        bundle = problem_bundle(problem)
        options = _problem_options(bundle.name)
        if monitors is not None:
            options = {**options, "monitors": monitors}
            # The array engine rejects monitor attachment; monitored MST
            # cells fall back to the coroutine engine.
            options.pop("engine", None)
        cells: List[Dict[str, Any]] = []
        curve: List[Dict[str, Any]] = []
        for n in sizes:
            awakes: List[int] = []
            for seed in seeds:
                spec = JobSpec.create(
                    bundle.default_algorithm,
                    family,
                    n,
                    seed,
                    options=options or None,
                    problem=bundle.name,
                )
                record = execute_job(spec)
                cells.append(record)
                awakes.append(record["max_awake"])
            mean_awake = mean(awakes)
            normalizer = bundle.awake_normalizer(n)
            curve.append(
                {
                    "n": n,
                    "mean_max_awake": round(mean_awake, 3),
                    "normalizer": round(normalizer, 3),
                    "ratio": round(mean_awake / normalizer, 3),
                }
            )
        growth = curve[-1]["mean_max_awake"] / max(
            curve[0]["mean_max_awake"], 1e-9
        )
        payload["problems"][bundle.name] = {
            "title": bundle.title,
            "algorithm": bundle.default_algorithm,
            "awake_bound": bundle.awake_bound,
            "normalizer_label": bundle.normalizer_label,
            "curve": curve,
            "growth": round(growth, 3),
            "correct_cells": sum(bool(c.get("correct")) for c in cells),
            "total_cells": len(cells),
            "violations": sum(c.get("violations") or 0 for c in cells),
            "cells": cells,
        }
    if {"mst", "mis"} <= set(payload["problems"]):
        payload["mis_grows_slower"] = (
            payload["problems"]["mis"]["growth"]
            < payload["problems"]["mst"]["growth"]
        )
    return payload


def render_comparison(payload: Dict[str, Any]) -> str:
    """Render a comparison payload as a fixed-width text table."""
    lines: List[str] = []
    lines.append(
        f"Awake-complexity comparison  (family={payload['family']}, "
        f"seeds={payload['seeds']})"
    )
    header = (
        f"{'problem':<9} {'algorithm':<18} {'bound':<14} "
        f"{'n':>6} {'mean awake':>11} {'normalizer':>16} {'ratio':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, data in payload["problems"].items():
        for i, point in enumerate(data["curve"]):
            prefix = (
                f"{name:<9} {data['algorithm']:<18} {data['awake_bound']:<14}"
                if i == 0
                else f"{'':<9} {'':<18} {'':<14}"
            )
            normalizer = (
                f"{point['normalizer']:.2f} ({data['normalizer_label']})"
            )
            lines.append(
                f"{prefix} {point['n']:>6} {point['mean_max_awake']:>11.2f} "
                f"{normalizer:>16} {point['ratio']:>7.2f}"
            )
        lines.append(
            f"{'':<9} growth x{data['growth']:.2f} over n="
            f"{data['curve'][0]['n']}..{data['curve'][-1]['n']}, "
            f"{data['correct_cells']}/{data['total_cells']} cells correct, "
            f"{data['violations']} invariant violations"
        )
    if "mis_grows_slower" in payload:
        verdict = "yes" if payload["mis_grows_slower"] else "NO"
        lines.append(
            f"MIS awake grows slower than MST awake across the grid: {verdict}"
        )
    return "\n".join(lines)


def write_comparison(
    payload: Dict[str, Any], path: Union[str, Path]
) -> Path:
    """Write the artifact JSON (stable formatting for clean diffs)."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_comparison(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a comparison artifact, checking the schema tag."""
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema != COMPARE_SCHEMA:
        raise ValueError(
            f"unexpected comparison schema {schema!r} in {path} "
            f"(wanted {COMPARE_SCHEMA!r})"
        )
    return payload
