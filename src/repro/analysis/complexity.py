"""Complexity-fitting helpers for the scaling experiments.

The paper's claims are asymptotic (``O(log n)`` awake, ``O(n log n)`` /
``O(nN log n)`` rounds); the benchmarks verify them by measuring the
quantity across a range of ``n`` and checking that the ratio to the claimed
model stays bounded (and roughly flat), via a least-squares constant fit
plus the spread of per-point ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

#: Named asymptotic models mapping n -> predicted shape (up to a constant).
MODELS: Dict[str, Callable[[float], float]] = {
    "const": lambda n: 1.0,
    "log": lambda n: math.log2(max(2.0, n)),
    "loglog": lambda n: math.log2(max(2.0, math.log2(max(2.0, n)))),
    "linear": lambda n: float(n),
    "nlog": lambda n: n * math.log2(max(2.0, n)),
    "n2log": lambda n: n * n * math.log2(max(2.0, n)),
    "sqrt": lambda n: math.sqrt(n),
}


@dataclass(frozen=True)
class ScalingFit:
    """Result of fitting ``y ≈ constant * model(n)``."""

    model: str
    #: Least-squares constant.
    constant: float
    #: Per-point ratios ``y_i / model(n_i)``.
    ratios: Tuple[float, ...]
    #: max(ratios) / min(ratios) — 1.0 means a perfect shape match.
    ratio_spread: float

    def is_bounded(self, spread_limit: float) -> bool:
        """True iff the measured shape tracks the model within the limit.

        A genuinely faster- or slower-growing measurement makes the ratios
        drift monotonically, inflating the spread; a correct model keeps
        the spread near 1 (noise aside).
        """
        return self.ratio_spread <= spread_limit


def fit_scaling(
    ns: Sequence[float], ys: Sequence[float], model: str
) -> ScalingFit:
    """Fit ``y = c * model(n)`` by least squares through the origin."""
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}; choose from {sorted(MODELS)}")
    if len(ns) != len(ys) or not ns:
        raise ValueError("ns and ys must be equal-length and non-empty")
    shape = MODELS[model]
    xs = [shape(n) for n in ns]
    numerator = sum(x * y for x, y in zip(xs, ys))
    denominator = sum(x * x for x in xs)
    constant = numerator / denominator if denominator else 0.0
    ratios = tuple(y / x for x, y in zip(xs, ys) if x > 0)
    spread = (max(ratios) / min(ratios)) if ratios and min(ratios) > 0 else math.inf
    return ScalingFit(
        model=model, constant=constant, ratios=ratios, ratio_spread=spread
    )


def best_model(
    ns: Sequence[float], ys: Sequence[float], candidates: Sequence[str]
) -> str:
    """Among candidate models, the one with the smallest ratio spread."""
    fits = [(fit_scaling(ns, ys, model).ratio_spread, model) for model in candidates]
    return min(fits)[1]


def doubling_ratios(ns: Sequence[float], ys: Sequence[float]) -> List[float]:
    """``y(2n)/y(n)`` style growth factors between consecutive sizes.

    For ``O(log n)`` quantities these approach 1; for linear, the ratio of
    sizes; for ``n log n`` slightly above it — a model-free sanity view.
    """
    pairs = sorted(zip(ns, ys))
    return [
        later / earlier
        for (_, earlier), (_, later) in zip(pairs, pairs[1:])
        if earlier > 0
    ]


def geometric_mean(values: Sequence[float]) -> float:
    positives = [value for value in values if value > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(value) for value in positives) / len(positives))
