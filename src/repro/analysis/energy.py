"""A sensor-network energy model over awake/sleeping rounds.

The paper's motivation (Section 1): in ad-hoc wireless and sensor networks
a node's energy consumption is dominated by the rounds its radio is on —
transmitting, receiving, *or idle-listening* — while a sleeping radio
spends "little or no energy".  This module prices a simulation run under a
simple published-style radio model so the examples and the ENERGY
experiment can convert awake-complexity gaps into battery-lifetime gaps.

Default constants loosely follow classic sensor-mote numbers (order of
magnitude only; the conclusions depend on the *ratio* awake : sleep, which
is 3–4 orders of magnitude for real radios).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim import Metrics


@dataclass(frozen=True)
class EnergyModel:
    """Per-round energy prices in millijoules."""

    #: Price of one awake round (radio on: listen and possibly tx/rx).
    awake_mj: float = 20.0
    #: Extra price per message transmitted.
    tx_mj: float = 5.0
    #: Price of one sleeping round (deep-sleep current).
    sleep_mj: float = 0.02
    #: Battery capacity.
    battery_mj: float = 50_000.0

    def node_energy(
        self, awake_rounds: int, messages_sent: int, total_rounds: int
    ) -> float:
        """Energy one node spends over a run of ``total_rounds`` rounds."""
        sleeping_rounds = max(0, total_rounds - awake_rounds)
        return (
            awake_rounds * self.awake_mj
            + messages_sent * self.tx_mj
            + sleeping_rounds * self.sleep_mj
        )

    def run_energy(self, metrics: Metrics) -> Dict[int, float]:
        """Per-node energy for a whole run (node is asleep after it halts)."""
        return {
            node_id: self.node_energy(
                node.awake_rounds, node.messages_sent, metrics.rounds
            )
            for node_id, node in metrics.per_node.items()
        }

    def max_node_energy(self, metrics: Metrics) -> float:
        """Worst-case per-node energy — the network-lifetime bottleneck."""
        energies = self.run_energy(metrics)
        return max(energies.values()) if energies else 0.0

    def executions_per_battery(self, metrics: Metrics) -> float:
        """How many times the protocol can run before the worst node dies."""
        worst = self.max_node_energy(metrics)
        if worst <= 0:
            return float("inf")
        return self.battery_mj / worst
