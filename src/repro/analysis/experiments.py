"""Experiment drivers: one function per paper artifact (see DESIGN.md index).

Each ``experiment_*`` function runs the measurements behind one EXPERIMENTS.md
section and returns a structured dictionary; ``main()`` runs the whole suite
and prints a report.  The benchmarks in ``benchmarks/`` call the same
functions with smaller parameters, so numbers in EXPERIMENTS.md, the bench
output, and this module always come from the same code path.

Run from a checkout::

    python -m repro.analysis.experiments           # full suite
    python -m repro.analysis.experiments --quick   # smaller sizes
"""

from __future__ import annotations

import argparse
import inspect
import math
from typing import Any, Dict, List, Sequence

from repro.baselines import run_flooding_broadcast, run_traditional_ghs
from repro.core import run_deterministic_mst, run_randomized_mst
from repro.graphs import (
    adversarial_moe_chain,
    random_connected_graph,
    ring_graph,
)
from repro.lower_bounds import (
    GrcTopology,
    certify_ring_run,
    congestion_lower_bound_bits,
    dsd_marked_edges,
    random_sd_instance,
    solve_sd_via_mst,
    theorem3_ring,
    theorem4_regime,
)

from .ablation import boruvka_merge_structure, worst_merge_diameter
from .complexity import fit_scaling
from .energy import EnergyModel
from .tables import generate_table1, render_table
from .walkthrough import run_merging_walkthrough


def experiment_table1(quick: bool = False, workers: int = 1) -> Dict[str, Any]:
    """T1-R / T1-D / BASE: measured Table 1 plus asymptotic fits.

    The (algorithm × n × seed) grids are submitted to the orchestrator;
    ``workers > 1`` runs the cells in a process pool.
    """
    sizes = (16, 32, 64) if quick else (16, 32, 64, 128, 256)
    det_sizes = (8, 16, 32) if quick else (8, 16, 32, 64, 96)
    seeds = (0, 1) if quick else (0, 1, 2)
    randomized = generate_table1(
        sizes, seeds, algorithms=["Randomized-MST", "Traditional-GHS"],
        workers=workers,
    )
    deterministic = generate_table1(
        det_sizes, seeds, algorithms=["Deterministic-MST"], workers=workers
    )
    table = randomized
    table.rows.extend(deterministic.rows)
    return {
        "table": table,
        "rendered": render_table(table),
        "fits": {
            "randomized_awake": table.awake_fit("Randomized-MST"),
            "randomized_rounds": table.rounds_fit("Randomized-MST", "nlog"),
            "deterministic_awake": table.awake_fit("Deterministic-MST"),
            "deterministic_rounds": table.rounds_fit("Deterministic-MST", "n2log"),
            "traditional_awake": table.rounds_fit("Traditional-GHS", "nlog"),
        },
    }


def experiment_theorem3(quick: bool = False) -> Dict[str, Any]:
    """T1-LB1: ring instances, knowledge growth, awake optimality."""
    base_sizes = (4, 8, 16) if quick else (4, 8, 16, 32, 64)
    rows: List[Dict[str, Any]] = []
    for n in base_sizes:
        instance = theorem3_ring(n, seed=n)
        result = run_randomized_mst(
            instance.graph, seed=1, track_knowledge=True, verify=True
        )
        certificate = certify_ring_run(instance, result.simulation)
        rows.append(
            {
                "ring_size": instance.ring_size,
                "separation": instance.separation,
                "required_awake": certificate.required_awake,
                "observed_awake": certificate.observed_awake,
                "max_awake": result.metrics.max_awake,
                "growth_factor": certificate.observed_growth,
                "holds": certificate.holds,
            }
        )
    sizes = [row["ring_size"] for row in rows]
    awakes = [row["max_awake"] for row in rows]
    return {
        "rows": rows,
        "awake_fit": fit_scaling(sizes, awakes, "log"),
        "all_certificates_hold": all(row["holds"] for row in rows),
    }


def experiment_theorem4(quick: bool = False, workers: int = 1) -> Dict[str, Any]:
    """T1-LB2: the awake x rounds product sits at Ω̃(n) for everyone.

    One orchestrator grid — (Randomized-MST, Traditional-GHS) × sizes on
    the ``gnp`` family with seed ``n`` — executed with crash isolation
    and optional parallelism instead of an in-process loop.
    """
    from repro.orchestrator import JobSpec, run_jobs

    sizes = (16, 32, 64) if quick else (16, 32, 64, 128, 256)
    specs = [
        JobSpec.create(algorithm, "gnp", n, seed=n)
        for n in sizes
        for algorithm in ("Randomized-MST", "Traditional-GHS")
    ]
    report = run_jobs(specs, workers=workers)
    if report.failed:
        raise RuntimeError(f"theorem4 grid failed: {report.failures()[0].error}")
    by_cell = {
        (record.metrics["algorithm"], record.metrics["n"]): record.metrics
        for record in report.records
    }
    rows: List[Dict[str, Any]] = []
    for n in sizes:
        randomized = by_cell[("Randomized-MST", n)]
        traditional = by_cell[("Traditional-GHS", n)]
        rows.append(
            {
                "n": n,
                "randomized_product": randomized["awake_round_product"],
                "traditional_product": traditional["awake_round_product"],
                "randomized_product_per_n": randomized["awake_round_product"] / n,
            }
        )
    products = [row["randomized_product"] for row in rows]
    return {
        "rows": rows,
        # The randomized algorithm's product should scale as n * polylog(n):
        # a clean n log^2 n, measured against the nlog model times log.
        "product_fit_nlog": fit_scaling([r["n"] for r in rows], products, "nlog"),
        "min_product_per_n": min(row["randomized_product_per_n"] for row in rows),
    }


def experiment_fig1_reduction(quick: bool = False) -> Dict[str, Any]:
    """FIG1: G_rc structure + the SD → DSD → CSS → MST chain end to end."""
    n_target = 120 if quick else 360
    r, c = theorem4_regime(n_target)
    topology = GrcTopology(r, c)
    graph, _ = topology.to_weighted_graph()
    structure = {
        "r": r,
        "c": c,
        "n": topology.n,
        "x_size": topology.x_size,
        "edges": len(topology.edges),
        "diameter": graph.diameter(),
        "diameter_bound": topology.diameter_upper_bound(),
        "c_over_log_n": c / math.log2(topology.n),
    }
    outcomes = []
    for seed in range(4 if quick else 8):
        force = seed % 2 == 0
        instance = random_sd_instance(topology.r - 1, seed=seed, force_disjoint=force)
        outcomes.append(solve_sd_via_mst(topology, instance))
    # One distributed run with congestion accounting on the tree nodes.
    instance = random_sd_instance(topology.r - 1, seed=99, force_disjoint=False)
    marked_graph, _threshold = topology.to_weighted_graph(
        dsd_marked_edges(topology, instance)
    )
    distributed = run_randomized_mst(marked_graph, seed=0, verify=True)
    congestion = congestion_lower_bound_bits(
        distributed.simulation, topology.internal_nodes
    )
    return {
        "structure": structure,
        "oracle_all_correct": all(outcome.correct for outcome in outcomes),
        "css_matches_sd": all(
            outcome.css_connected == outcome.truth_disjoint for outcome in outcomes
        ),
        "distributed_awake": distributed.metrics.max_awake,
        "distributed_rounds": distributed.metrics.rounds,
        "internal_tree_bits": congestion,
    }


def experiment_fig2_5(quick: bool = False) -> Dict[str, Any]:
    """FIG2-5: the merging walk-through (asserts all figure invariants)."""
    walkthrough = run_merging_walkthrough()
    return {
        "u_tails": walkthrough.u_tails,
        "u_heads": walkthrough.u_heads,
        "before": {n: (s.fragment_id, s.level) for n, s in walkthrough.before.items()},
        "after": {n: (s.fragment_id, s.level) for n, s in walkthrough.after.items()},
    }


def experiment_ablation_coin(quick: bool = False) -> Dict[str, Any]:
    """ABL-COIN: merge-component diameters with vs without coin pruning."""
    n = 64 if quick else 256
    chain = adversarial_moe_chain(n, seed=3)
    random_graph = random_connected_graph(n, extra_edge_prob=0.05, seed=3)
    rows = {}
    for name, graph in (("moe_chain", chain), ("random", random_graph)):
        unrestricted = boruvka_merge_structure(graph, restricted=False, seed=1)
        restricted = boruvka_merge_structure(graph, restricted=True, seed=1)
        rows[name] = {
            "unrestricted_worst_diameter": worst_merge_diameter(unrestricted),
            "restricted_worst_diameter": worst_merge_diameter(restricted),
            "unrestricted_phases": len(unrestricted),
            "restricted_phases": len(restricted),
        }
    return rows


def experiment_baseline_gap(quick: bool = False) -> Dict[str, Any]:
    """BASE: sleeping vs traditional awake complexity, plus flooding Θ(D)."""
    sizes = (32, 64) if quick else (32, 64, 128, 256)
    rows = []
    for n in sizes:
        graph = ring_graph(n, seed=n)
        sleeping = run_randomized_mst(graph, seed=0)
        traditional = run_traditional_ghs(graph, seed=0)
        flooding = run_flooding_broadcast(graph)
        rows.append(
            {
                "n": n,
                "sleeping_awake": sleeping.metrics.max_awake,
                "traditional_awake": traditional.metrics.max_awake,
                "gap": traditional.metrics.max_awake
                / max(1, sleeping.metrics.max_awake),
                "flooding_awake": flooding.metrics.max_awake,
                "diameter": n // 2,
            }
        )
    return {"rows": rows}


def experiment_energy(quick: bool = False) -> Dict[str, Any]:
    """ENERGY: battery-lifetime implications of the awake gap."""
    n = 48 if quick else 128
    graph = random_connected_graph(n, extra_edge_prob=0.08, seed=5)
    model = EnergyModel()
    sleeping = run_randomized_mst(graph, seed=0)
    traditional = run_traditional_ghs(graph, seed=0)
    return {
        "n": n,
        "sleeping_worst_energy_mj": model.max_node_energy(sleeping.metrics),
        "traditional_worst_energy_mj": model.max_node_energy(traditional.metrics),
        "sleeping_runs_per_battery": model.executions_per_battery(sleeping.metrics),
        "traditional_runs_per_battery": model.executions_per_battery(
            traditional.metrics
        ),
    }


def experiment_lemma1(quick: bool = False) -> Dict[str, Any]:
    """LEMMA1: per-phase fragment contraction >= 4/3 in expectation."""
    from .randomized_stats import contraction_statistics, fixed_mode_success_rate

    n = 64 if quick else 128
    seeds = range(10 if quick else 25)
    rows = {}
    for name, graph in (
        ("random", random_connected_graph(n, 0.1, seed=n)),
        ("ring", ring_graph(n, seed=n)),
    ):
        stats = contraction_statistics(graph, seeds=seeds)
        rows[name] = {
            "mean_ratio": round(stats.mean_ratio, 3),
            "geometric_mean_ratio": round(stats.geometric_mean_ratio, 3),
            "worst_phase_count": max(stats.phases),
        }
    success = fixed_mode_success_rate(
        random_connected_graph(24, 0.15, seed=3), seeds=range(3 if quick else 6)
    )
    return {
        "contraction": rows,
        "fixed_mode_success": success.success_rate,
    }


def experiment_corollary1(quick: bool = False) -> Dict[str, Any]:
    """COR1: log*-coloring — rounds flat in N, small awake factor."""
    n = 16
    factors = (1, 16) if quick else (1, 4, 16, 64)
    rows = []
    for factor in factors:
        id_range = None if factor == 1 else factor * n
        graph = ring_graph(n, seed=5, id_range=id_range)
        fast = run_deterministic_mst(graph, coloring="fast-awake", verify=True)
        star = run_deterministic_mst(graph, coloring="log-star", verify=True)
        rows.append(
            {
                "N": graph.max_id,
                "fast_awake": fast.metrics.max_awake,
                "fast_rounds": fast.metrics.rounds,
                "logstar_awake": star.metrics.max_awake,
                "logstar_rounds": star.metrics.rounds,
            }
        )
    return {"rows": rows}


ALL_EXPERIMENTS = {
    "table1": experiment_table1,
    "theorem3": experiment_theorem3,
    "theorem4": experiment_theorem4,
    "fig1": experiment_fig1_reduction,
    "fig2_5": experiment_fig2_5,
    "lemma1": experiment_lemma1,
    "corollary1": experiment_corollary1,
    "ablation_coin": experiment_ablation_coin,
    "baseline_gap": experiment_baseline_gap,
    "energy": experiment_energy,
}


def main(argv: Sequence[str] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sizes")
    parser.add_argument(
        "--only",
        choices=sorted(ALL_EXPERIMENTS),
        action="append",
        help="run a subset of experiments",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for grid-shaped experiments",
    )
    args = parser.parse_args(argv)
    chosen = args.only or sorted(ALL_EXPERIMENTS)
    for name in chosen:
        print(f"\n=== {name} ===")
        driver = ALL_EXPERIMENTS[name]
        kwargs: Dict[str, Any] = {"quick": args.quick}
        if "workers" in inspect.signature(driver).parameters:
            kwargs["workers"] = args.workers
        outcome = driver(**kwargs)
        if name == "table1":
            print(outcome["rendered"])
            for fit_name, fit in outcome["fits"].items():
                print(
                    f"  {fit_name}: constant={fit.constant:.2f} "
                    f"spread={fit.ratio_spread:.2f} ({fit.model})"
                )
        else:
            _print_nested(outcome)


def _print_nested(value: Any, indent: int = 1) -> None:
    prefix = "  " * indent
    if isinstance(value, dict):
        for key, inner in value.items():
            if isinstance(inner, (dict, list)):
                print(f"{prefix}{key}:")
                _print_nested(inner, indent + 1)
            else:
                print(f"{prefix}{key}: {inner}")
    elif isinstance(value, list):
        for item in value:
            _print_nested(item, indent)
            if isinstance(item, dict):
                print()
    else:
        print(f"{prefix}{value}")


if __name__ == "__main__":
    main()
