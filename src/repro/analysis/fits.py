"""Statistical fits of awake curves with bootstrap confidence bands.

The paper's headline claims are curves — awake complexity staying
``O(log n)`` (MST) or ``O(log log n)`` (MIS) while round and message
complexity stay near-optimal.  This module turns the per-seed records a
campaign grid produces into a least-squares fit of ``metric ≈ c *
model(n)`` plus *seed-level bootstrap* confidence bands: seeds are the
unit of resampling (each bootstrap replicate re-draws whole seed columns
with replacement), so the bands reflect run-to-run randomness rather
than within-run noise.

Everything is deterministic for a fixed ``seed`` (see
:mod:`repro.analysis.stats`), which is what lets a committed campaign
artifact pin its confidence bands byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import random

from .complexity import MODELS, fit_scaling
from .stats import mean, percentile


@dataclass(frozen=True)
class PointBand:
    """One fitted size: observed mean plus its bootstrap band."""

    n: int
    mean: float
    low: float
    high: float
    #: Seed replicates observed at this size.
    samples: int

    def to_dict(self, digits: int = 3) -> Dict[str, Any]:
        return {
            "n": self.n,
            "mean": round(self.mean, digits),
            "low": round(self.low, digits),
            "high": round(self.high, digits),
            "samples": self.samples,
        }


@dataclass(frozen=True)
class FitBand:
    """A scaling fit with bootstrap confidence intervals.

    ``constant`` is the least-squares constant of ``metric ≈ c *
    model(n)`` over the observed per-size means; ``constant_low`` /
    ``constant_high`` bound it across bootstrap replicates, and each
    :class:`PointBand` bounds the per-size mean the same way.
    """

    metric: str
    model: str
    constant: float
    constant_low: float
    constant_high: float
    ratio_spread: float
    confidence: float
    resamples: int
    points: Tuple[PointBand, ...]

    def to_dict(self, digits: int = 4) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "model": self.model,
            "constant": round(self.constant, digits),
            "constant_low": round(self.constant_low, digits),
            "constant_high": round(self.constant_high, digits),
            "ratio_spread": round(self.ratio_spread, digits),
            "confidence": self.confidence,
            "resamples": self.resamples,
            "points": [point.to_dict() for point in self.points],
        }


def seed_level_fit(
    values: Mapping[int, Mapping[int, float]],
    metric: str = "max_awake",
    model: str = "log",
    resamples: int = 200,
    confidence: float = 0.95,
    seed: int = 0,
) -> FitBand:
    """Fit ``metric ≈ c * model(n)`` with seed-level bootstrap bands.

    ``values`` maps ``n -> {seed -> measured value}``.  Each bootstrap
    replicate draws seeds with replacement from the union of observed
    seeds, recomputes every per-size mean over the drawn seeds (skipping
    sizes a drawn seed is missing from), and refits the constant — so the
    interval answers "had we run a different batch of seeds, how much
    would the fitted curve move?".
    """
    if model not in MODELS:
        raise ValueError(
            f"unknown model {model!r}; choose from {sorted(MODELS)}"
        )
    if not values:
        raise ValueError("seed_level_fit needs at least one size")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    sizes = sorted(values)
    seed_pool = sorted({s for by_seed in values.values() for s in by_seed})
    if not seed_pool:
        raise ValueError("seed_level_fit needs at least one seed per size")

    observed_means = [mean(list(values[n].values())) for n in sizes]
    base_fit = fit_scaling(sizes, observed_means, model)

    rng = random.Random(seed)
    constants: List[float] = []
    point_samples: Dict[int, List[float]] = {n: [] for n in sizes}
    for _ in range(resamples):
        drawn = rng.choices(seed_pool, k=len(seed_pool))
        replicate_means = []
        for n in sizes:
            by_seed = values[n]
            picked = [by_seed[s] for s in drawn if s in by_seed]
            replicate = mean(picked) if picked else mean(
                list(by_seed.values())
            )
            replicate_means.append(replicate)
            point_samples[n].append(replicate)
        constants.append(fit_scaling(sizes, replicate_means, model).constant)

    tail = (1.0 - confidence) / 2.0 * 100.0
    points = tuple(
        PointBand(
            n=n,
            mean=observed,
            low=percentile(point_samples[n], tail),
            high=percentile(point_samples[n], 100.0 - tail),
            samples=len(values[n]),
        )
        for n, observed in zip(sizes, observed_means)
    )
    return FitBand(
        metric=metric,
        model=model,
        constant=base_fit.constant,
        constant_low=percentile(constants, tail),
        constant_high=percentile(constants, 100.0 - tail),
        ratio_spread=base_fit.ratio_spread,
        confidence=confidence,
        resamples=resamples,
        points=points,
    )


def fit_records(
    records: Sequence[Mapping[str, Any]],
    metric: str = "max_awake",
    model: str = "log",
    algorithm: Optional[str] = None,
    resamples: int = 200,
    confidence: float = 0.95,
    seed: int = 0,
) -> FitBand:
    """Fit orchestrator metrics records (``execute_job`` dicts).

    Records missing the metric (failed or crashed cells) are skipped;
    ``algorithm`` optionally restricts to one algorithm's cells.
    """
    values: Dict[int, Dict[int, float]] = {}
    for record in records:
        if algorithm is not None and record.get("algorithm") != algorithm:
            continue
        value = record.get(metric)
        if value is None:
            continue
        values.setdefault(int(record["n"]), {})[
            int(record["seed"])
        ] = float(value)
    if not values:
        raise ValueError(
            f"no usable records to fit metric {metric!r}"
            + (f" for algorithm {algorithm!r}" if algorithm else "")
        )
    return seed_level_fit(
        values,
        metric=metric,
        model=model,
        resamples=resamples,
        confidence=confidence,
        seed=seed,
    )


def render_fit(name: str, fit: Mapping[str, Any]) -> str:
    """Render one fit payload (:meth:`FitBand.to_dict`) as a text block."""
    lines = [
        f"{name}: {fit['metric']} = {fit['constant']:.2f} x {fit['model']}(n)"
        f"  [{fit['constant_low']:.2f}, {fit['constant_high']:.2f}]"
        f" @ {int(fit['confidence'] * 100)}% ({fit['resamples']} resamples)"
    ]
    for point in fit["points"]:
        lines.append(
            f"  n={point['n']:>6}  mean {point['mean']:>10.2f}  "
            f"band [{point['low']:.2f}, {point['high']:.2f}]  "
            f"seeds={point['samples']}"
        )
    return "\n".join(lines)
