"""Per-phase forest snapshots of the *distributed* executions.

The runners expose each node's final LDT labels, and stopping a run after
``k`` phases (``max_phases=k``) is exact — the algorithms are
deterministic given the seed, so the length-``k`` prefix of a run equals
the truncated run.  Replaying ``k = 1..P`` therefore reconstructs the full
phase-by-phase history of the real distributed execution: fragment counts,
fragment size distributions, and the growing tree-edge set.

This is the distributed counterpart of the centralised replay in
:mod:`repro.analysis.ablation`: Lemma 1's contraction can be measured on
the actual protocol, not just on the equivalent Markov chain.  Cost is
quadratic in the phase count (each prefix is re-simulated), fine at test
and bench scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Set

from repro.core import MSTRunResult, run_randomized_mst
from repro.graphs import WeightedGraph


@dataclass(frozen=True)
class PhaseSnapshot:
    """The forest at the end of one phase of a distributed run."""

    phase: int
    #: Fragment ID -> member count.
    fragment_sizes: Dict[int, int]
    #: Union of per-node incident MST weights so far.
    tree_weights: Set[int]

    @property
    def fragments(self) -> int:
        return len(self.fragment_sizes)


def phase_history(
    graph: WeightedGraph,
    runner: Callable[..., MSTRunResult] = run_randomized_mst,
    seed: int = 0,
    **runner_kwargs,
) -> List[PhaseSnapshot]:
    """Reconstruct the per-phase forests of one distributed execution.

    ``runner`` must accept ``seed`` and ``max_phases`` (both shipped
    runners do).  Returns one snapshot per executed phase, ending with the
    single-fragment final state.
    """
    snapshots: List[PhaseSnapshot] = []
    phase = 0
    while True:
        phase += 1
        result = runner(graph, seed=seed, max_phases=phase, **runner_kwargs)
        sizes: Dict[int, int] = {}
        weights: Set[int] = set()
        for output in result.node_outputs.values():
            sizes[output.fragment_id] = sizes.get(output.fragment_id, 0) + 1
            weights |= set(output.mst_weights)
        snapshots.append(
            PhaseSnapshot(
                phase=phase, fragment_sizes=sizes, tree_weights=weights
            )
        )
        if len(sizes) == 1 or result.phases < phase:
            return snapshots
        if phase > graph.n + 1:  # pragma: no cover - progress guarantee
            raise RuntimeError("phase history failed to converge")


def contraction_ratios(snapshots: List[PhaseSnapshot], n: int) -> List[float]:
    """Fragment-count ratios before/after each phase (first phase from n)."""
    counts = [n] + [snapshot.fragments for snapshot in snapshots]
    return [
        before / after
        for before, after in zip(counts, counts[1:])
        if before >= 2
    ]
