"""Statistics of the randomized algorithm: Lemma 1 and Monte Carlo success.

Lemma 1 claims each phase of ``Randomized-MST`` removes at least a quarter
of the fragments *in expectation* (contraction factor ≥ 4/3), which drives
the ``4⌈log_{4/3} n⌉ + 1`` phase budget and the w.h.p. correctness of the
fixed-termination mode (Lemma 2).  This module measures both:

* :func:`contraction_statistics` replays the coin-flip phase dynamics and
  reports the per-phase fragment-count ratios;
* :func:`fixed_mode_success_rate` runs the actual distributed algorithm in
  ``"fixed"`` mode across seeds and counts how often the output is the
  exact MST (the Monte Carlo guarantee — failures should essentially never
  be observed at these sizes, the bound being `1 - 1/n^3`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core import run_randomized_mst
from repro.graphs import WeightedGraph, mst_weight_set

from .ablation import boruvka_merge_structure
from .complexity import geometric_mean
from .stats import mean


@dataclass(frozen=True)
class ContractionReport:
    """Per-phase fragment contraction measurements across seeds."""

    #: Fragment-count ratio before/after for every (seed, phase) pair.
    ratios: Sequence[float]
    #: Number of phases needed per seed.
    phases: Sequence[int]

    @property
    def mean_ratio(self) -> float:
        """Arithmetic mean of per-phase contraction factors."""
        return mean(list(self.ratios))

    @property
    def geometric_mean_ratio(self) -> float:
        """Geometric mean — the factor that predicts total phase count."""
        return geometric_mean(list(self.ratios))

    @property
    def worst_ratio(self) -> float:
        """The smallest observed per-phase contraction."""
        return min(self.ratios) if self.ratios else 0.0


def contraction_statistics(
    graph: WeightedGraph, seeds: Sequence[int]
) -> ContractionReport:
    """Measure per-phase contraction of the coin-flip merge dynamics.

    Uses the centralised replay (identical merge rule to the distributed
    algorithm: an MOE is kept iff source flipped tails and target heads) so
    that thousands of phases across seeds are cheap; the distributed and
    replayed dynamics are the same Markov chain.
    """
    ratios: List[float] = []
    phases: List[int] = []
    for seed in seeds:
        stats = boruvka_merge_structure(graph, restricted=True, seed=seed)
        phases.append(len(stats))
        for entry in stats:
            if entry.fragments_before >= 2:
                ratios.append(entry.fragments_before / entry.fragments_after)
    return ContractionReport(ratios=tuple(ratios), phases=tuple(phases))


@dataclass(frozen=True)
class SuccessReport:
    """Fixed-mode Monte Carlo outcomes."""

    runs: int
    successes: int
    #: Worst awake complexity seen across the runs.
    max_awake: int

    @property
    def success_rate(self) -> float:
        return self.successes / self.runs if self.runs else 0.0


def fixed_mode_success_rate(
    graph: WeightedGraph, seeds: Sequence[int]
) -> SuccessReport:
    """Run the distributed algorithm with the paper's fixed phase budget.

    Counts exact-MST outcomes; the w.h.p. analysis promises failure
    probability at most ``1/n^3``, so at experiment scales every run should
    succeed — a failure here is a genuine red flag, not noise.
    """
    reference = mst_weight_set(graph)
    successes = 0
    worst_awake = 0
    for seed in seeds:
        result = run_randomized_mst(graph, seed=seed, termination="fixed")
        if result.mst_weights == reference:
            successes += 1
        worst_awake = max(worst_awake, result.metrics.max_awake)
    return SuccessReport(
        runs=len(seeds), successes=successes, max_awake=worst_awake
    )
