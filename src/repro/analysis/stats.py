"""Shared descriptive statistics for every analysis layer.

Per-seed aggregation (mean / std / confidence intervals) used to be
re-implemented inline wherever a module averaged repeated measurements —
:mod:`repro.analysis.randomized_stats`, :mod:`repro.analysis.compare`,
the sweep fitter.  This module is the one home for those helpers, and the
campaign fit layer (:mod:`repro.analysis.fits`) builds its bootstrap
confidence bands on the same primitives.

Everything here is deterministic: the bootstrap takes an explicit seed
and uses :class:`random.Random`, so resampled intervals are reproducible
byte-for-byte across sessions — a requirement for committed campaign
artifacts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import NormalDist
from typing import Dict, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; ``0.0`` on an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator); ``0.0`` below n=2."""
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return (
        sum((value - centre) ** 2 for value in values) / (len(values) - 1)
    ) ** 0.5


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (q / 100.0) * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


@dataclass(frozen=True)
class SummaryStats:
    """Mean / std / normal-approximation CI of one batch of values."""

    count: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float

    def to_dict(self, digits: int = 3) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": round(self.mean, digits),
            "std": round(self.std, digits),
            "ci_low": round(self.ci_low, digits),
            "ci_high": round(self.ci_high, digits),
            "confidence": self.confidence,
        }


def summarize(
    values: Sequence[float], confidence: float = 0.95
) -> SummaryStats:
    """Mean, sample std, and a normal-approximation confidence interval.

    The interval is ``mean ± z * std / sqrt(n)`` — the cheap parametric
    band.  For small seed counts or skewed metrics prefer
    :func:`bootstrap_mean_interval`, which makes no shape assumption.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    centre = mean(values)
    spread = sample_std(values)
    if len(values) >= 2:
        z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
        half_width = z * spread / (len(values) ** 0.5)
    else:
        half_width = 0.0
    return SummaryStats(
        count=len(values),
        mean=centre,
        std=spread,
        ci_low=centre - half_width,
        ci_high=centre + half_width,
        confidence=confidence,
    )


def bootstrap_mean_interval(
    values: Sequence[float],
    resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Resamples ``values`` with replacement ``resamples`` times and returns
    the ``(low, high)`` percentile interval of the resampled means.
    Deterministic for a fixed ``seed``.
    """
    if not values:
        raise ValueError("bootstrap of an empty sequence")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    rng = random.Random(seed)
    means: List[float] = []
    for _ in range(resamples):
        sample = rng.choices(values, k=len(values))
        means.append(mean(sample))
    tail = (1.0 - confidence) / 2.0 * 100.0
    return percentile(means, tail), percentile(means, 100.0 - tail)
