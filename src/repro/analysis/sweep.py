"""Parameter sweeps: (algorithm × graph family × n × seed) grids.

The benches and EXPERIMENTS.md each measure one artifact; this module is
the general tool — run any registered algorithms over any registered graph
families across sizes and seeds, collect one flat record per run, and
export CSV / Markdown for external analysis.  Used by the CLI's ``sweep``
subcommand.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.graphs import (
    WeightedGraph,
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_geometric_graph,
    ring_graph,
    star_graph,
)

from .complexity import ScalingFit, fit_scaling
from .tables import ALGORITHMS

#: Graph families available to sweeps (and the CLI).
FAMILIES: Dict[str, Callable[[int, int, Optional[int]], WeightedGraph]] = {
    "ring": lambda n, seed, idr: ring_graph(n, seed=seed, id_range=idr),
    "path": lambda n, seed, idr: path_graph(n, seed=seed, id_range=idr),
    "star": lambda n, seed, idr: star_graph(n, seed=seed, id_range=idr),
    "complete": lambda n, seed, idr: complete_graph(n, seed=seed, id_range=idr),
    "grid": lambda n, seed, idr: grid_graph(
        max(2, int(math.isqrt(n))),
        max(2, n // max(2, int(math.isqrt(n)))),
        seed=seed,
        id_range=idr,
    ),
    "gnp": lambda n, seed, idr: random_connected_graph(
        n, extra_edge_prob=0.1, seed=seed, id_range=idr
    ),
    "geometric": lambda n, seed, idr: random_geometric_graph(
        n, radius=0.35, seed=seed, id_range=idr
    ),
}


@dataclass(frozen=True)
class SweepPoint:
    """One (algorithm, family, n, seed) measurement."""

    algorithm: str
    family: str
    n: int
    m: int
    max_id: int
    seed: int
    phases: int
    max_awake: int
    mean_awake: float
    rounds: int
    awake_round_product: int
    messages: int
    bits: int
    correct: bool


#: Column order for exports.
COLUMNS = [
    "algorithm",
    "family",
    "n",
    "m",
    "max_id",
    "seed",
    "phases",
    "max_awake",
    "mean_awake",
    "rounds",
    "awake_round_product",
    "messages",
    "bits",
    "correct",
]


def run_sweep(
    algorithms: Sequence[str],
    families: Sequence[str],
    sizes: Sequence[int],
    seeds: Sequence[int],
    id_range_factor: Optional[int] = None,
) -> List[SweepPoint]:
    """Run the full grid; returns one :class:`SweepPoint` per run."""
    for name in algorithms:
        if name not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}")
    for name in families:
        if name not in FAMILIES:
            raise ValueError(f"unknown family {name!r}; choose from {sorted(FAMILIES)}")

    points: List[SweepPoint] = []
    for family in families:
        for n in sizes:
            for seed in seeds:
                id_range = None if id_range_factor is None else id_range_factor * n
                graph = FAMILIES[family](n, seed, id_range)
                for algorithm in algorithms:
                    result = ALGORITHMS[algorithm](graph, seed)
                    metrics = result.metrics
                    points.append(
                        SweepPoint(
                            algorithm=algorithm,
                            family=family,
                            n=graph.n,
                            m=graph.m,
                            max_id=graph.max_id,
                            seed=seed,
                            phases=result.phases,
                            max_awake=metrics.max_awake,
                            mean_awake=round(metrics.mean_awake, 3),
                            rounds=metrics.rounds,
                            awake_round_product=metrics.awake_round_product,
                            messages=metrics.messages_delivered,
                            bits=metrics.total_bits,
                            correct=result.is_correct_mst(graph),
                        )
                    )
    return points


def to_csv(points: Iterable[SweepPoint]) -> str:
    """Render points as CSV (header + one line per point)."""
    lines = [",".join(COLUMNS)]
    for point in points:
        record = asdict(point)
        lines.append(",".join(str(record[column]) for column in COLUMNS))
    return "\n".join(lines) + "\n"


def to_markdown(points: Iterable[SweepPoint]) -> str:
    """Render points as a GitHub-flavoured Markdown table."""
    lines = [
        "| " + " | ".join(COLUMNS) + " |",
        "|" + "---|" * len(COLUMNS),
    ]
    for point in points:
        record = asdict(point)
        lines.append(
            "| " + " | ".join(str(record[column]) for column in COLUMNS) + " |"
        )
    return "\n".join(lines) + "\n"


def fit_sweep(
    points: Sequence[SweepPoint],
    metric: str = "max_awake",
    model: str = "log",
) -> Dict[str, ScalingFit]:
    """Per-(algorithm, family) scaling fits of ``metric`` against ``model``.

    Seeds at the same size are averaged first.
    """
    grouped: Dict[str, Dict[int, List[float]]] = {}
    for point in points:
        key = f"{point.algorithm}/{point.family}"
        grouped.setdefault(key, {}).setdefault(point.n, []).append(
            float(getattr(point, metric))
        )
    fits: Dict[str, ScalingFit] = {}
    for key, by_size in grouped.items():
        sizes = sorted(by_size)
        if len(sizes) < 2:
            continue
        values = [sum(by_size[n]) / len(by_size[n]) for n in sizes]
        fits[key] = fit_scaling(sizes, values, model)
    return fits
