"""Parameter sweeps: (algorithm × graph family × n × seed) grids.

The benches and EXPERIMENTS.md each measure one artifact; this module is
the general tool — run any registered algorithms over any registered graph
families across sizes and seeds, collect one flat record per run, and
export CSV / Markdown for external analysis.  Used by the CLI's ``sweep``
subcommand.

Grids execute through :mod:`repro.orchestrator` — ``run_sweep`` accepts
``workers`` for pool execution plus optional ``cache``/``store`` handles,
and :func:`points_from_records` rebuilds sweep points from any orchestrator
run store.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.orchestrator import (
    GRAPH_FAMILIES,
    ResultCache,
    RunRecord,
    RunStore,
    STATUS_OK,
    expand_grid,
    run_jobs,
)

from .complexity import ScalingFit, fit_scaling
from .stats import mean

#: Graph families available to sweeps (and the CLI).  Re-exported from the
#: orchestrator registry — the single source of truth.
FAMILIES = GRAPH_FAMILIES


@dataclass(frozen=True)
class SweepPoint:
    """One (algorithm, family, n, seed) measurement."""

    algorithm: str
    family: str
    n: int
    m: int
    max_id: int
    seed: int
    phases: int
    max_awake: int
    mean_awake: float
    rounds: int
    awake_round_product: int
    messages: int
    bits: int
    correct: bool


#: Column order for exports.
COLUMNS = [
    "algorithm",
    "family",
    "n",
    "m",
    "max_id",
    "seed",
    "phases",
    "max_awake",
    "mean_awake",
    "rounds",
    "awake_round_product",
    "messages",
    "bits",
    "correct",
]


def points_from_records(records: Iterable[Union[RunRecord, dict]]) -> List[SweepPoint]:
    """Rebuild sweep points from orchestrator records (skips failures)."""
    points: List[SweepPoint] = []
    for record in records:
        if isinstance(record, dict):
            record = RunRecord.from_dict(record)
        if record.status != STATUS_OK or record.metrics is None:
            continue
        points.append(SweepPoint(**record.metrics))
    return points


def run_sweep(
    algorithms: Sequence[str],
    families: Sequence[str],
    sizes: Sequence[int],
    seeds: Sequence[int],
    id_range_factor: Optional[int] = None,
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    store: Optional[Union[RunStore, str]] = None,
) -> List[SweepPoint]:
    """Run the full grid; returns one :class:`SweepPoint` per run.

    The grid goes through the orchestrator: ``workers > 1`` executes
    cells in a process pool, and a ``cache`` serves previously computed
    cells.  A failure anywhere in the grid raises (sweeps either return
    the complete grid or nothing).
    """
    specs = expand_grid(algorithms, families, sizes, seeds, id_range_factor)
    report = run_jobs(specs, workers=workers, cache=cache, store=store)
    failures = report.failures()
    if failures:
        first = failures[0]
        raise RuntimeError(
            f"{len(failures)}/{report.total} sweep cells failed; "
            f"first: {first.spec} -> {first.error}"
        )
    return points_from_records(report.records)


def to_csv(points: Iterable[SweepPoint]) -> str:
    """Render points as CSV (header + one line per point)."""
    lines = [",".join(COLUMNS)]
    for point in points:
        record = asdict(point)
        lines.append(",".join(str(record[column]) for column in COLUMNS))
    return "\n".join(lines) + "\n"


def to_markdown(points: Iterable[SweepPoint]) -> str:
    """Render points as a GitHub-flavoured Markdown table."""
    lines = [
        "| " + " | ".join(COLUMNS) + " |",
        "|" + "---|" * len(COLUMNS),
    ]
    for point in points:
        record = asdict(point)
        lines.append(
            "| " + " | ".join(str(record[column]) for column in COLUMNS) + " |"
        )
    return "\n".join(lines) + "\n"


def fit_sweep(
    points: Sequence[SweepPoint],
    metric: str = "max_awake",
    model: str = "log",
) -> Dict[str, ScalingFit]:
    """Per-(algorithm, family) scaling fits of ``metric`` against ``model``.

    Seeds at the same size are averaged first.
    """
    grouped: Dict[str, Dict[int, List[float]]] = {}
    for point in points:
        key = f"{point.algorithm}/{point.family}"
        grouped.setdefault(key, {}).setdefault(point.n, []).append(
            float(getattr(point, metric))
        )
    fits: Dict[str, ScalingFit] = {}
    for key, by_size in grouped.items():
        sizes = sorted(by_size)
        if len(sizes) < 2:
            continue
        values = [mean(by_size[n]) for n in sizes]
        fits[key] = fit_scaling(sizes, values, model)
    return fits
