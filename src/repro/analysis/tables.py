"""Regenerate Table 1 of the paper from measured executions.

The paper's Table 1 states, per algorithm, the awake time (AT), the run
time (RT), and the two lower bounds.  Being a theory table, "reproducing"
it means measuring AT and RT across sizes and exhibiting that

* `Randomized-MST`: AT = Θ(log n), RT = Θ(n log n);
* `Deterministic-MST`: AT = Θ(log n), RT = Θ(nN log n);
* both sit above the AT bound Ω(log n) and the AT × RT bound Ω̃(n);
* the traditional-model comparator pays AT = RT.

:func:`generate_table1` runs everything — through the orchestrator, so
grids parallelise with ``workers`` and repeat runs hit the result cache —
and returns structured rows; :func:`table1_from_records` builds the same
rows from any orchestrator run-store ledger; :func:`render_table` prints
them in the paper's layout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Union

from repro.graphs import WeightedGraph
from repro.orchestrator import (
    ALGORITHMS,
    ResultCache,
    RunRecord,
    RunStore,
    STATUS_OK,
    expand_grid,
    load_records,
    run_jobs,
)

from .complexity import fit_scaling
from .stats import mean

__all__ = [
    "ALGORITHMS",
    "MeasuredRow",
    "Table1",
    "generate_table1",
    "render_table",
    "table1_from_records",
    "table1_from_store",
]


@dataclass(frozen=True)
class MeasuredRow:
    """One (algorithm, n) measurement averaged over seeds."""

    algorithm: str
    n: int
    max_id: int
    max_awake: float
    rounds: float
    product: float
    correct_runs: int
    total_runs: int

    @property
    def awake_per_log(self) -> float:
        return self.max_awake / math.log2(max(2, self.n))

    @property
    def rounds_per_nlog(self) -> float:
        return self.rounds / (self.n * math.log2(max(2, self.n)))

    @property
    def rounds_per_nNlog(self) -> float:
        return self.rounds / (self.n * self.max_id * math.log2(max(2, self.n)))


@dataclass
class Table1:
    """All measurements plus the fitted asymptotic constants."""

    rows: List[MeasuredRow] = field(default_factory=list)

    def rows_for(self, algorithm: str) -> List[MeasuredRow]:
        return sorted(
            (row for row in self.rows if row.algorithm == algorithm),
            key=lambda row: row.n,
        )

    def awake_fit(self, algorithm: str):
        rows = self.rows_for(algorithm)
        return fit_scaling(
            [row.n for row in rows], [row.max_awake for row in rows], "log"
        )

    def rounds_fit(self, algorithm: str, model: str = "nlog"):
        rows = self.rows_for(algorithm)
        return fit_scaling(
            [row.n for row in rows], [row.rounds for row in rows], model
        )


def table1_from_records(
    records: Iterable[Union[RunRecord, dict]],
    algorithms: Optional[Sequence[str]] = None,
) -> Table1:
    """Aggregate orchestrator records into Table 1 rows.

    Seeds at the same (algorithm, n) are averaged, mirroring the live
    measurement path, so a table fitted from a stored JSONL ledger is
    identical to one measured in-process.
    """
    grouped: dict = {}
    for record in records:
        if isinstance(record, dict):
            record = RunRecord.from_dict(record)
        if record.status != STATUS_OK or record.metrics is None:
            continue
        metrics = record.metrics
        grouped.setdefault((metrics["algorithm"], metrics["n"]), []).append(metrics)
    if algorithms is not None:
        order = {name: rank for rank, name in enumerate(algorithms)}
        keys = sorted(
            (key for key in grouped if key[0] in order),
            key=lambda key: (order[key[0]], key[1]),
        )
    else:
        keys = sorted(grouped)
    table = Table1()
    for algorithm, n in keys:
        cells = grouped[(algorithm, n)]
        table.rows.append(
            MeasuredRow(
                algorithm=algorithm,
                n=n,
                max_id=cells[0]["max_id"],
                max_awake=mean([cell["max_awake"] for cell in cells]),
                rounds=mean([cell["rounds"] for cell in cells]),
                product=mean(
                    [cell["awake_round_product"] for cell in cells]
                ),
                correct_runs=sum(1 for cell in cells if cell["correct"]),
                total_runs=len(cells),
            )
        )
    return table


def table1_from_store(path) -> Table1:
    """Fit Table 1 straight from a run-store JSONL file."""
    return table1_from_records(load_records(path))


def generate_table1(
    sizes: Sequence[int] = (16, 32, 64, 128),
    seeds: Sequence[int] = (0, 1, 2),
    graph_factory: Optional[Callable[[int, int], WeightedGraph]] = None,
    algorithms: Optional[Sequence[str]] = None,
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    store: Optional[Union[RunStore, str]] = None,
) -> Table1:
    """Measure every Table 1 algorithm across ``sizes`` x ``seeds``.

    Without a custom ``graph_factory`` the grid (on the default ``gnp``
    family) runs through the orchestrator, honouring ``workers``,
    ``cache``, and ``store``.  A custom factory falls back to the direct
    in-process loop (arbitrary callables cannot be content-hashed).
    """
    chosen = list(algorithms) if algorithms else list(ALGORITHMS)
    if graph_factory is None:
        specs = expand_grid(chosen, ["gnp"], sizes, seeds)
        report = run_jobs(specs, workers=workers, cache=cache, store=store)
        failures = report.failures()
        if failures:
            first = failures[0]
            raise RuntimeError(
                f"{len(failures)}/{report.total} Table 1 cells failed; "
                f"first: {first.spec} -> {first.error}"
            )
        return table1_from_records(report.records, algorithms=chosen)

    table = Table1()
    for name in chosen:
        runner = ALGORITHMS[name]
        for n in sizes:
            awake_total = rounds_total = product_total = 0.0
            correct = 0
            for seed in seeds:
                graph = graph_factory(n, seed)
                result = runner(graph, seed)
                awake_total += result.metrics.max_awake
                rounds_total += result.metrics.rounds
                product_total += result.metrics.awake_round_product
                if result.is_correct_mst(graph):
                    correct += 1
            count = len(seeds)
            table.rows.append(
                MeasuredRow(
                    algorithm=name,
                    n=n,
                    max_id=graph_factory(n, seeds[0]).max_id,
                    max_awake=awake_total / count,
                    rounds=rounds_total / count,
                    product=product_total / count,
                    correct_runs=correct,
                    total_runs=count,
                )
            )
    return table


def render_table(table: Table1) -> str:
    """Render the measured Table 1 as aligned ASCII text."""
    header = (
        f"{'Algorithm':<18} {'n':>5} {'AT':>8} {'AT/log2 n':>10} "
        f"{'RT':>10} {'RT/(n log n)':>13} {'AT*RT':>12} {'MST ok':>7}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted({row.algorithm for row in table.rows}):
        for row in table.rows_for(name):
            lines.append(
                f"{row.algorithm:<18} {row.n:>5} {row.max_awake:>8.1f} "
                f"{row.awake_per_log:>10.2f} {row.rounds:>10.0f} "
                f"{row.rounds_per_nlog:>13.2f} {row.product:>12.0f} "
                f"{row.correct_runs:>4}/{row.total_runs}"
            )
        lines.append("")
    return "\n".join(lines)
