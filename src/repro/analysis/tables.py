"""Regenerate Table 1 of the paper from measured executions.

The paper's Table 1 states, per algorithm, the awake time (AT), the run
time (RT), and the two lower bounds.  Being a theory table, "reproducing"
it means measuring AT and RT across sizes and exhibiting that

* `Randomized-MST`: AT = Θ(log n), RT = Θ(n log n);
* `Deterministic-MST`: AT = Θ(log n), RT = Θ(nN log n);
* both sit above the AT bound Ω(log n) and the AT × RT bound Ω̃(n);
* the traditional-model comparator pays AT = RT.

:func:`generate_table1` runs everything and returns structured rows;
:func:`render_table` prints them in the paper's layout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines import run_pipelined_ghs, run_traditional_ghs
from repro.core import run_deterministic_mst, run_randomized_mst
from repro.graphs import WeightedGraph, random_connected_graph

from .complexity import fit_scaling


@dataclass(frozen=True)
class MeasuredRow:
    """One (algorithm, n) measurement averaged over seeds."""

    algorithm: str
    n: int
    max_id: int
    max_awake: float
    rounds: float
    product: float
    correct_runs: int
    total_runs: int

    @property
    def awake_per_log(self) -> float:
        return self.max_awake / math.log2(max(2, self.n))

    @property
    def rounds_per_nlog(self) -> float:
        return self.rounds / (self.n * math.log2(max(2, self.n)))

    @property
    def rounds_per_nNlog(self) -> float:
        return self.rounds / (self.n * self.max_id * math.log2(max(2, self.n)))


@dataclass
class Table1:
    """All measurements plus the fitted asymptotic constants."""

    rows: List[MeasuredRow] = field(default_factory=list)

    def rows_for(self, algorithm: str) -> List[MeasuredRow]:
        return sorted(
            (row for row in self.rows if row.algorithm == algorithm),
            key=lambda row: row.n,
        )

    def awake_fit(self, algorithm: str):
        rows = self.rows_for(algorithm)
        return fit_scaling(
            [row.n for row in rows], [row.max_awake for row in rows], "log"
        )

    def rounds_fit(self, algorithm: str, model: str = "nlog"):
        rows = self.rows_for(algorithm)
        return fit_scaling(
            [row.n for row in rows], [row.rounds for row in rows], model
        )


#: The runners behind each Table 1 row (+ the traditional comparator).
ALGORITHMS: Dict[str, Callable] = {
    "Randomized-MST": lambda graph, seed: run_randomized_mst(graph, seed=seed),
    "Deterministic-MST": lambda graph, seed: run_deterministic_mst(graph, seed=seed),
    "LogStar-MST": lambda graph, seed: run_deterministic_mst(
        graph, seed=seed, coloring="log-star"
    ),
    "Traditional-GHS": lambda graph, seed: run_traditional_ghs(graph, seed=seed),
    "Pipelined-GHS": lambda graph, seed: run_pipelined_ghs(graph, seed=seed),
}


def generate_table1(
    sizes: Sequence[int] = (16, 32, 64, 128),
    seeds: Sequence[int] = (0, 1, 2),
    graph_factory: Optional[Callable[[int, int], WeightedGraph]] = None,
    algorithms: Optional[Sequence[str]] = None,
) -> Table1:
    """Measure every Table 1 algorithm across ``sizes`` x ``seeds``."""
    factory = graph_factory or (
        lambda n, seed: random_connected_graph(n, extra_edge_prob=0.1, seed=seed)
    )
    chosen = list(algorithms) if algorithms else list(ALGORITHMS)
    table = Table1()
    for name in chosen:
        runner = ALGORITHMS[name]
        for n in sizes:
            awake_total = rounds_total = product_total = 0.0
            correct = 0
            for seed in seeds:
                graph = factory(n, seed)
                result = runner(graph, seed)
                awake_total += result.metrics.max_awake
                rounds_total += result.metrics.rounds
                product_total += result.metrics.awake_round_product
                if result.is_correct_mst(graph):
                    correct += 1
            count = len(seeds)
            table.rows.append(
                MeasuredRow(
                    algorithm=name,
                    n=n,
                    max_id=factory(n, seeds[0]).max_id,
                    max_awake=awake_total / count,
                    rounds=rounds_total / count,
                    product=product_total / count,
                    correct_runs=correct,
                    total_runs=count,
                )
            )
    return table


def render_table(table: Table1) -> str:
    """Render the measured Table 1 as aligned ASCII text."""
    header = (
        f"{'Algorithm':<18} {'n':>5} {'AT':>8} {'AT/log2 n':>10} "
        f"{'RT':>10} {'RT/(n log n)':>13} {'AT*RT':>12} {'MST ok':>7}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted({row.algorithm for row in table.rows}):
        for row in table.rows_for(name):
            lines.append(
                f"{row.algorithm:<18} {row.n:>5} {row.max_awake:>8.1f} "
                f"{row.awake_per_log:>10.2f} {row.rounds:>10.0f} "
                f"{row.rounds_per_nlog:>13.2f} {row.product:>12.0f} "
                f"{row.correct_runs:>4}/{row.total_runs}"
            )
        lines.append("")
    return "\n".join(lines)
