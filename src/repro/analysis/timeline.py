"""ASCII awake-timeline rendering from simulation traces.

A picture of the sleeping model: rows are nodes, columns are (bucketed)
rounds, and a mark means the node was awake at least once in that bucket.
For the paper's algorithms the picture is a few thin vertical stripes — the
aligned Transmission-Schedule blocks — in an ocean of sleep; for the
traditional baselines it is solid ink.  Used by tests (as a structural
probe on wake patterns) and by the timeline example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim import EventTrace


@dataclass(frozen=True)
class Timeline:
    """Bucketed awake pattern for a set of nodes."""

    node_ids: Sequence[int]
    #: Inclusive round range covered.
    first_round: int
    last_round: int
    bucket: int
    #: node -> list of bools, one per bucket.
    awake_buckets: Dict[int, List[bool]]

    @property
    def buckets(self) -> int:
        if not self.awake_buckets:
            return 0
        return len(next(iter(self.awake_buckets.values())))

    def density(self, node_id: int) -> float:
        """Fraction of buckets in which the node was awake."""
        marks = self.awake_buckets[node_id]
        return sum(marks) / len(marks) if marks else 0.0

    def overall_density(self) -> float:
        total = sum(sum(marks) for marks in self.awake_buckets.values())
        cells = sum(len(marks) for marks in self.awake_buckets.values())
        return total / cells if cells else 0.0

    def render(self, max_nodes: int = 16, mark: str = "#", gap: str = ".") -> str:
        """ASCII art: one row per node (truncated to ``max_nodes``)."""
        lines = [
            f"rounds {self.first_round}..{self.last_round} "
            f"({self.bucket} rounds per column)"
        ]
        for node_id in list(self.node_ids)[:max_nodes]:
            row = "".join(
                mark if awake else gap for awake in self.awake_buckets[node_id]
            )
            lines.append(f"node {node_id:>4} |{row}|")
        if len(self.node_ids) > max_nodes:
            lines.append(f"... ({len(self.node_ids) - max_nodes} more nodes)")
        return "\n".join(lines)


def awake_timeline(
    trace: EventTrace,
    node_ids: Sequence[int],
    width: int = 72,
    last_round: Optional[int] = None,
) -> Timeline:
    """Build a :class:`Timeline` from a traced run.

    ``width`` caps the number of columns; rounds are bucketed evenly so
    arbitrarily long runs render at terminal width.
    """
    wake_rounds: Dict[int, List[int]] = {node: [] for node in node_ids}
    observed_last = 1
    for event in trace.of_kind("wake"):
        if event.node in wake_rounds:
            wake_rounds[event.node].append(event.round)
        observed_last = max(observed_last, event.round)
    end = last_round if last_round is not None else observed_last
    bucket = max(1, -(-end // width))  # ceil division
    columns = -(-end // bucket)

    awake_buckets = {
        node: [False] * columns for node in node_ids
    }
    for node, rounds in wake_rounds.items():
        for round_number in rounds:
            awake_buckets[node][(round_number - 1) // bucket] = True
    return Timeline(
        node_ids=tuple(node_ids),
        first_round=1,
        last_round=end,
        bucket=bucket,
        awake_buckets=awake_buckets,
    )
