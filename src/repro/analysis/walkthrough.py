"""Reproduce the Figures 2–5 ``Merging-Fragments`` walk-through.

Appendix C illustrates one merge: a Tails fragment (rooted tree) with an
MOE into a Heads fragment.  Figure 2 shows the initial labelled forest;
Figures 3–4 the two ``Transmission-Schedule`` passes updating
``NEW-LEVEL-NUM`` / ``NEW-FRAGMENT-ID``; Figure 5 the final re-oriented
single fragment whose levels are distances from the Heads root.

:func:`run_merging_walkthrough` builds an equivalent instance, executes the
real ``merging_fragments`` procedure under the simulator, and returns the
before/after snapshots plus the invariant checks that make the figures'
claims precise:

* every old-Tails node's new level equals
  ``level(u_H) + 1 + dist_T(u_T, node)``;
* the ``u_T → old root`` path reversed its parent pointers;
* all nodes carry the Heads fragment ID; the merged structure is an LDT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.harness import FLDTPlan, run_procedure
from repro.core.ldt import LDTState, check_fldt
from repro.core.merging import merging_fragments
from repro.graphs import WeightedGraph


@dataclass(frozen=True)
class NodeSnapshot:
    """One node's labels at a walk-through step (what the figures draw)."""

    node_id: int
    fragment_id: int
    level: int
    parent: Optional[int]


@dataclass
class Walkthrough:
    """Before/after states of the Appendix C merge."""

    graph: WeightedGraph
    u_tails: int
    u_heads: int
    before: Dict[int, NodeSnapshot]
    after: Dict[int, NodeSnapshot]
    #: Old-tree distances from u_T within the Tails fragment.
    tails_distance: Dict[int, int]
    heads_root_level_of_u_heads: int


def build_walkthrough_instance() -> Tuple[WeightedGraph, FLDTPlan, int, int]:
    """An instance shaped like Figure 2.

    Heads fragment: root 10 — 11 — 12 (a path, levels 0/1/2).
    Tails fragment: root 1 with children 2, 3; 2 has children 4, 5 (levels
    drawn in the figure).  The MOE (weight 1, the lightest inter-fragment
    edge) joins tails node 5 (= ``u_T``, old level 2) to heads node 11
    (= ``u_H``, level 1).  A second, heavier inter-fragment edge (4 — 12)
    exists so the merge edge is genuinely the *minimum* outgoing edge.
    """
    nodes = [1, 2, 3, 4, 5, 10, 11, 12]
    edges = [
        # Tails tree edges (weights arbitrary but distinct).
        (1, 2, 10),
        (1, 3, 11),
        (2, 4, 12),
        (2, 5, 13),
        # Heads tree edges.
        (10, 11, 20),
        (11, 12, 21),
        # Inter-fragment edges: the MOE (weight 1) and a heavier rival.
        (5, 11, 1),
        (4, 12, 30),
    ]
    graph = WeightedGraph(nodes, edges)
    plan = FLDTPlan(
        {
            1: None,
            2: 1,
            3: 1,
            4: 2,
            5: 2,
            10: None,
            11: 10,
            12: 11,
        }
    )
    return graph, plan, 5, 11


def _snapshot(
    graph: WeightedGraph, states: Dict[int, LDTState]
) -> Dict[int, NodeSnapshot]:
    snapshots = {}
    for node, state in states.items():
        parent = None
        if state.parent_port is not None:
            parent = graph.ports_of(node)[state.parent_port][0]
        snapshots[node] = NodeSnapshot(
            node_id=node,
            fragment_id=state.fragment_id,
            level=state.level,
            parent=parent,
        )
    return snapshots


def run_merging_walkthrough() -> Walkthrough:
    """Execute the Appendix C merge and verify every figure-level claim."""
    graph, plan, u_tails, u_heads = build_walkthrough_instance()
    before_states = plan.build_states(graph)
    tails_members = {
        node for node, state in before_states.items() if state.fragment_id == 1
    }

    def procedure(ctx, ldt, clock, value):
        merge_port = None
        merging = ctx.node_id in tails_members
        if ctx.node_id == u_tails:
            ports = {
                port: neighbour
                for port, (neighbour, _, _) in graph.ports_of(u_tails).items()
            }
            merge_port = next(
                port for port, neighbour in ports.items() if neighbour == u_heads
            )
        outcome = yield from merging_fragments(
            ctx, ldt, clock, merge_port=merge_port, fragment_merging=merging
        )
        return outcome

    run = run_procedure(graph, plan, procedure, refresh_neighbors=False)
    after_states = run.states

    # Figure 5's invariants.
    fragments = check_fldt(graph, after_states)
    if set(fragments) != {10}:
        raise AssertionError(
            f"merge did not produce the single Heads fragment: {sorted(fragments)}"
        )
    tails_distance = _tree_distances_from(graph, before_states, u_tails, tails_members)
    u_heads_level = before_states[u_heads].level
    for node in tails_members:
        expected = u_heads_level + 1 + tails_distance[node]
        actual = after_states[node].level
        if actual != expected:
            raise AssertionError(
                f"node {node}: level {actual}, expected "
                f"{u_heads_level} + 1 + {tails_distance[node]}"
            )

    return Walkthrough(
        graph=graph,
        u_tails=u_tails,
        u_heads=u_heads,
        before=_snapshot(graph, before_states),
        after=_snapshot(graph, after_states),
        tails_distance=tails_distance,
        heads_root_level_of_u_heads=u_heads_level,
    )


def _tree_distances_from(
    graph: WeightedGraph,
    states: Dict[int, LDTState],
    source: int,
    members,
) -> Dict[int, int]:
    """Hop distances from ``source`` using only the fragment's tree edges."""
    tree_adjacency: Dict[int, set] = {node: set() for node in members}
    for node in members:
        ports = graph.ports_of(node)
        for port in states[node].tree_ports():
            neighbour = ports[port][0]
            if neighbour in tree_adjacency:
                tree_adjacency[node].add(neighbour)
    distances = {source: 0}
    frontier = [source]
    while frontier:
        node = frontier.pop(0)
        for neighbour in tree_adjacency[node]:
            if neighbour not in distances:
                distances[neighbour] = distances[node] + 1
                frontier.append(neighbour)
    return distances
