"""Traditional-model baselines: always-awake GHS accounting and flooding."""

from .always_awake import run_traditional_ghs, traditional_metrics
from .ghs import ghs_phase_budget, ghs_phase_rounds, pipelined_ghs_protocol, run_pipelined_ghs
from .spanning_tree import run_sleeping_spanning_tree, with_synthetic_weights
from .flooding import (
    FloodingOutput,
    flooding_broadcast_protocol,
    run_flooding_broadcast,
)

__all__ = [
    "FloodingOutput",
    "flooding_broadcast_protocol",
    "ghs_phase_budget",
    "ghs_phase_rounds",
    "pipelined_ghs_protocol",
    "run_flooding_broadcast",
    "run_pipelined_ghs",
    "run_sleeping_spanning_tree",
    "run_traditional_ghs",
    "traditional_metrics",
    "with_synthetic_weights",
]
