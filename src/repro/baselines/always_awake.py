"""Traditional-model accounting: what the paper's algorithms cost *without*
the sleeping model.

In the standard CONGEST model a node is awake from round 1 until it
terminates — idle listening is not free (the paper's Section 1: "significant
amount of energy is spent by a node even when it is just waiting to hear
from a neighbor").  The awake complexity of *any* traditional-model
algorithm therefore equals its round complexity.

:func:`traditional_metrics` converts a sleeping-model run's metrics to
traditional accounting (per-node awake = the node's termination round), and
:func:`run_traditional_ghs` runs the GHS/Borůvka skeleton as the classical
synchronous algorithm — same message structure, same ``O(n log n)`` round
complexity as Gallager–Humblet–Spira — reported under traditional
accounting.  The pair (sleeping run, traditional run) isolates exactly the
benefit the paper claims: awake complexity drops from ``Θ̃(n)`` to
``O(log n)`` while the round complexity stays ``O(n log n)``.
"""

from __future__ import annotations

import copy
from typing import Any

from repro.graphs import WeightedGraph
from repro.sim import Metrics

from repro.core.runner import MSTRunResult, run_randomized_mst


def traditional_metrics(metrics: Metrics) -> Metrics:
    """Return a copy of ``metrics`` under traditional (always-awake) accounting.

    Every node is charged one awake round per round from round 1 to its
    termination round, because in the traditional CONGEST model it must
    listen in every one of them.
    """
    converted = copy.deepcopy(metrics)
    total = 0
    max_awake = 0
    for node_metrics in converted.per_node.values():
        node_metrics.awake_rounds = max(
            node_metrics.terminated_round, node_metrics.awake_rounds
        )
        total += node_metrics.awake_rounds
        max_awake = max(max_awake, node_metrics.awake_rounds)
    converted.total_awake_rounds = total
    # Rewriting per-node counts invalidates the engine-maintained running
    # maximum; recompute it so ``max_awake`` stays O(1) and correct.
    converted.max_awake_running = max_awake
    return converted


def run_traditional_ghs(
    graph: WeightedGraph,
    seed: int = 0,
    **kwargs: Any,
) -> MSTRunResult:
    """Run the GHS/Borůvka skeleton as a classical always-awake algorithm.

    The execution (messages, phases, round complexity) is the synchronous
    GHS variant the paper builds on; only the accounting differs: the
    returned result's metrics charge every node for every round up to its
    termination, as the traditional model does.  Use it as the comparator
    for the Table 1 / baseline-gap experiments.
    """
    result = run_randomized_mst(graph, seed=seed, **kwargs)
    return MSTRunResult(
        algorithm="Traditional-GHS",
        mst_weights=result.mst_weights,
        node_outputs=result.node_outputs,
        metrics=traditional_metrics(result.metrics),
        phases=result.phases,
        simulation=result.simulation,
    )
