"""Flooding-based primitives in the traditional model.

These baselines make the sleeping model's benefit concrete on *global*
problems: a node running classical flooding cannot know in advance when a
message will reach it, so it must stay awake listening — its awake
complexity is its receipt time, ``Θ(D)`` in the worst case — whereas the
paper's schedule-driven trees deliver the same information with ``O(1)``
awake rounds per procedure (and ``O(log n)`` for global construction, cf.
Barenboim–Maimon for spanning trees and this paper for MSTs).

``flooding_broadcast_protocol``
    A designated root floods a token; every node records its BFS depth and
    parent, yielding a BFS spanning tree.  Node ``v`` stays awake from
    round 1 until it has received and forwarded the token:
    ``awake(v) = depth(v) + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.graphs import WeightedGraph
from repro.sim import Awake, NodeContext, SimulationResult, simulate


@dataclass(frozen=True)
class FloodingOutput:
    """Per-node result of a flooding broadcast / BFS tree construction."""

    node_id: int
    #: BFS hop distance from the root (0 at the root).
    depth: int
    #: Port towards the BFS parent (``None`` at the root).
    parent_port: Optional[int]
    #: The broadcast payload as received.
    payload: Any


def flooding_broadcast_protocol(ctx: NodeContext, root_id: int, payload: Any = 1):
    """Classical flooding from ``root_id`` in the traditional model.

    The root sends in round 1; every other node listens **every round**
    (it cannot know when the wave arrives) until it receives, then forwards
    once and terminates.  Awake complexity: ``depth + 1`` per node, i.e.
    ``Θ(D)`` in the worst case — the quantity the sleeping model avoids.
    """
    if ctx.node_id == root_id:
        yield Awake(1, ctx.broadcast(payload))
        return FloodingOutput(ctx.node_id, 0, None, payload)

    round_number = 0
    while True:
        round_number += 1
        inbox = yield Awake(round_number)
        if inbox:
            parent_port = min(inbox)
            received = inbox[parent_port]
            # Forward to everyone else next round, then stop.
            others = {port: received for port in ctx.ports if port != parent_port}
            yield Awake(round_number + 1, others)
            return FloodingOutput(
                ctx.node_id, round_number, parent_port, received
            )


def run_flooding_broadcast(
    graph: WeightedGraph,
    root_id: Optional[int] = None,
    payload: Any = 1,
    **sim_kwargs: Any,
) -> SimulationResult:
    """Run classical flooding; returns the raw simulation result.

    The resulting metrics show awake complexity ``Θ(D)`` (e.g. ``Θ(n)`` on
    a ring) against round complexity ``Θ(D)`` — traditional flooding is
    round-optimal but awake-terrible.
    """
    chosen_root = root_id if root_id is not None else min(graph.node_ids)
    if chosen_root not in graph.node_ids:
        raise ValueError(f"root {chosen_root} is not a node of the graph")

    def factory(ctx: NodeContext):
        return flooding_broadcast_protocol(ctx, chosen_root, payload)

    result = simulate(graph, factory, **sim_kwargs)
    depths: Dict[int, int] = {
        node: output.depth for node, output in result.node_results.items()
    }
    reference = graph.bfs_distances(chosen_root)
    if depths != reference:
        raise AssertionError("flooding produced non-BFS depths")
    return result
