"""Pipelined synchronous GHS/Borůvka in the traditional CONGEST model.

An independent, from-scratch implementation of the classical synchronous
MST algorithm the paper builds on — *without* any sleeping-model machinery:
every node is awake in **every** round until it terminates (so its awake
complexity genuinely equals its termination round), convergecasts are
pipelined (a node forwards as soon as all children reported, no
``Transmission-Schedule``), and merging is the classical *full* MOE-forest
merge (no coin flips — the traditional model can afford Θ(n)-deep merge
floods because idle listening is already being paid for).

Phase structure (all segments have fixed, globally known budgets, so the
phases stay synchronised):

1. **Exchange** (1 round): all nodes trade fragment IDs; each computes its
   local minimum outgoing edge (MOE) candidate.
2. **Convergecast** (n+1 rounds): pipelined min-aggregation to the
   fragment root — a node reports up as soon as every child has reported.
3. **Broadcast** (n+1 rounds): the fragment MOE weight (or a halt flag if
   the fragment has no outgoing edge) relays down the tree.
4. **Merge request** (1 round): each fragment's MOE owner sends a request
   across its MOE.  The union of old tree edges and this phase's MOE edges
   is a forest (MOE digraph components contain exactly one cycle, always a
   mutual 2-cycle); the mutual edge's larger-ID endpoint roots the merged
   fragment.
5. **Re-orientation flood** (n+1 rounds): BFS from each new root over the
   merge structure assigns the new fragment ID and parent/child pointers.

Every fragment merges in every phase, so fragments at least halve per
phase: ``⌈log₂ n⌉ + 1`` phases of ``3n + 5`` rounds — the classical
``O(n log n)`` GHS round complexity, with awake complexity equal to it.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Set

from repro.core.mst_randomized import MSTNodeOutput
from repro.core.runner import MSTRunResult
from repro.graphs import (
    WeightedGraph,
    check_local_mst_outputs,
    require_sleeping_model_inputs,
)
from repro.sim import Awake, NodeContext, SleepingSimulator

#: Marker for "no outgoing edge" in convergecast reports.
NO_MOE = 0

#: Halt flag values carried by the broadcast segment.
CONTINUE, HALT = 0, 1


def ghs_phase_rounds(n: int) -> int:
    """Rounds per phase: exchange + convergecast + broadcast + request + flood."""
    return 3 * (n + 1) + 2


def ghs_phase_budget(n: int) -> int:
    """Full Borůvka at least halves fragments per phase (+1 halt phase)."""
    if n < 2:
        return 0
    return math.ceil(math.log2(n)) + 1


def pipelined_ghs_protocol(ctx: NodeContext):
    """Protocol generator: classical always-awake synchronous GHS."""
    n = ctx.n
    fragment_id = ctx.node_id
    parent_port: Optional[int] = None
    children_ports: Set[int] = set()
    current_round = 0
    phases = 0

    if n == 1 or not ctx.ports:
        return _ghs_output(ctx, fragment_id, parent_port, children_ports, phases)

    for _ in range(ghs_phase_budget(n) + 1):
        phases += 1
        tree_ports = set(children_ports)
        if parent_port is not None:
            tree_ports.add(parent_port)

        # ----- Segment 1: exchange fragment IDs (1 round). -----
        current_round += 1
        inbox = yield Awake(current_round, ctx.broadcast(fragment_id))
        neighbor_fragment = dict(inbox)
        candidate: Optional[int] = None
        for port in ctx.ports:
            if neighbor_fragment.get(port) == fragment_id:
                continue
            weight = ctx.port_weights[port]
            if candidate is None or weight < candidate:
                candidate = weight

        # ----- Segment 2: pipelined convergecast (n + 1 rounds). -----
        segment_end = current_round + n + 1
        pending_children = set(children_ports)
        best = candidate
        reported_up = False
        while current_round < segment_end:
            sends: Dict[int, Any] = {}
            if (
                not reported_up
                and not pending_children
                and parent_port is not None
            ):
                sends[parent_port] = best if best is not None else NO_MOE
                reported_up = True
            current_round += 1
            inbox = yield Awake(current_round, sends)
            for port, report in inbox.items():
                if port in pending_children:
                    pending_children.discard(port)
                    if report != NO_MOE and (best is None or report < best):
                        best = report

        # ----- Segment 3: broadcast fragment MOE / halt (n + 1 rounds). -----
        segment_end = current_round + n + 1
        if parent_port is None:
            fragment_moe = best if best is not None else NO_MOE
            halt = HALT if fragment_moe == NO_MOE else CONTINUE
            outgoing_message: Optional[Any] = (fragment_moe, halt)
        else:
            fragment_moe = None
            halt = None
            outgoing_message = None
        while current_round < segment_end:
            sends = {}
            if outgoing_message is not None:
                sends = {port: outgoing_message for port in children_ports}
                outgoing_message = None
            current_round += 1
            inbox = yield Awake(current_round, sends)
            if parent_port is not None and parent_port in inbox:
                fragment_moe, halt = inbox[parent_port]
                outgoing_message = (fragment_moe, halt)
        if halt == HALT:
            break

        # ----- Segment 4: merge requests across MOEs (1 round). -----
        own_moe_port: Optional[int] = None
        if fragment_moe != NO_MOE:
            for port in ctx.ports:
                if (
                    ctx.port_weights[port] == fragment_moe
                    and neighbor_fragment.get(port) != fragment_id
                ):
                    own_moe_port = port
        sends = {}
        if own_moe_port is not None:
            sends[own_moe_port] = ("merge", ctx.node_id)
        current_round += 1
        inbox = yield Awake(current_round, sends)
        merge_ports = set(tree_ports)
        mutual = False
        peer_id: Optional[int] = None
        if own_moe_port is not None:
            merge_ports.add(own_moe_port)
            if own_moe_port in inbox:
                mutual = True
                peer_id = inbox[own_moe_port][1]
        for port, message in inbox.items():
            if isinstance(message, tuple) and message[0] == "merge":
                merge_ports.add(port)

        # ----- Segment 5: re-orientation flood (n + 1 rounds). -----
        segment_end = current_round + n + 1
        is_new_root = mutual and ctx.node_id > peer_id
        new_fragment: Optional[int] = ctx.node_id if is_new_root else None
        new_parent: Optional[int] = None
        pending_flood: Optional[Dict[int, Any]] = None
        if is_new_root:
            pending_flood = {port: ctx.node_id for port in merge_ports}
        while current_round < segment_end:
            sends = pending_flood or {}
            pending_flood = None
            current_round += 1
            inbox = yield Awake(current_round, sends)
            if new_fragment is None:
                arrived = [port for port in inbox if port in merge_ports]
                if arrived:
                    # The merge structure is a tree: exactly one arrival.
                    new_parent = arrived[0]
                    new_fragment = inbox[new_parent]
                    pending_flood = {
                        port: new_fragment
                        for port in merge_ports
                        if port != new_parent
                    }
        if new_fragment is None:
            raise RuntimeError(
                f"node {ctx.node_id}: flood never reached it — the merge "
                "structure was not connected"
            )
        fragment_id = new_fragment
        parent_port = new_parent
        children_ports = merge_ports - (
            {new_parent} if new_parent is not None else set()
        )

    return _ghs_output(ctx, fragment_id, parent_port, children_ports, phases)


def _ghs_output(
    ctx: NodeContext,
    fragment_id: int,
    parent_port: Optional[int],
    children_ports: Set[int],
    phases: int,
) -> MSTNodeOutput:
    tree_ports = set(children_ports)
    if parent_port is not None:
        tree_ports.add(parent_port)
    return MSTNodeOutput(
        node_id=ctx.node_id,
        mst_weights=frozenset(ctx.port_weights[p] for p in tree_ports),
        fragment_id=fragment_id,
        level=0,
        phases=phases,
        parent_port=parent_port,
        children_ports=frozenset(children_ports),
    )


def run_pipelined_ghs(
    graph: WeightedGraph, seed: int = 0, **sim_kwargs: Any
) -> MSTRunResult:
    """Run the classical pipelined GHS; awake complexity == round complexity.

    This is the *independent* traditional baseline (its own message flow,
    pipelined aggregation, full-forest merging); compare with
    :func:`repro.baselines.always_awake.run_traditional_ghs`, which
    re-accounts the sleeping-model skeleton.
    """
    require_sleeping_model_inputs(graph)
    simulation = SleepingSimulator(
        graph, pipelined_ghs_protocol, seed=seed, **sim_kwargs
    ).run()
    outputs: Dict[int, MSTNodeOutput] = dict(simulation.node_results)
    mst_weights = check_local_mst_outputs(
        graph, {node: out.mst_weights for node, out in outputs.items()}
    )
    return MSTRunResult(
        algorithm="Pipelined-GHS",
        mst_weights=mst_weights,
        node_outputs=outputs,
        metrics=simulation.metrics,
        phases=max((out.phases for out in outputs.values()), default=0),
        simulation=simulation,
    )
