"""Sleeping-model spanning tree in O(log n) awake rounds (Barenboim–Maimon).

The paper positions itself against Barenboim & Maimon (2021), who showed
that an *arbitrary* spanning tree can be built in ``O(log n)`` awake rounds
via Distributed Layered Trees; the paper's contribution is getting the
*minimum* spanning tree at the same awake complexity.

This module realises the comparison point inside our framework through the
observation the paper itself makes (Section 1.1, footnote on weights): any
assignment of distinct edge weights makes the MST a valid spanning tree,
so running ``Randomized-MST`` on synthetic distinct weights yields an
arbitrary spanning tree of an *unweighted* graph with identical awake
complexity — an LDT, ready for ``O(1)``-awake broadcasts/convergecasts.

This is a faithful *functional* equivalent (same problem solved, same
asymptotic awake/round complexities as the DLT construction), not a
re-implementation of the DLT data structure; DESIGN.md records the
substitution.
"""

from __future__ import annotations

from random import Random
from typing import Any, Iterable, Optional, Tuple

from repro.core.runner import MSTRunResult, run_randomized_mst
from repro.graphs import WeightedGraph


def with_synthetic_weights(
    node_ids: Iterable[int],
    edges: Iterable[Tuple[int, int]],
    seed: int = 0,
    max_id: Optional[int] = None,
) -> WeightedGraph:
    """Attach random distinct weights to an unweighted edge list."""
    edge_list = [tuple(sorted(edge)) for edge in edges]
    if len(set(edge_list)) != len(edge_list):
        raise ValueError("duplicate edges in the unweighted graph")
    rng = Random(f"st/{seed}")
    weights = rng.sample(range(1, 8 * len(edge_list) + 2), len(edge_list))
    return WeightedGraph(
        node_ids,
        [(u, v, w) for (u, v), w in zip(edge_list, weights)],
        max_id=max_id,
    )


def run_sleeping_spanning_tree(
    graph: WeightedGraph,
    seed: int = 0,
    **kwargs: Any,
) -> MSTRunResult:
    """Build a spanning tree of ``graph`` in ``O(log n)`` awake rounds.

    The input's weights are ignored (re-randomised), making the output an
    arbitrary — but perfectly usable — spanning tree: every node ends with
    parent/children pointers and its distance from the root, i.e. a
    network-wide LDT.
    """
    synthetic = with_synthetic_weights(
        graph.node_ids,
        [edge.endpoints for edge in graph.edges()],
        seed=seed,
        max_id=graph.max_id,
    )
    result = run_randomized_mst(synthetic, seed=seed, **kwargs)
    # Map the synthetic weights back to the caller's edge identities.
    original_weights = {
        frozenset(edge.endpoints): edge.weight for edge in graph.edges()
    }
    synthetic_edges = {
        weight: frozenset(synthetic.edge_by_weight(weight).endpoints)
        for weight in result.mst_weights
    }
    mapped = {original_weights[pair] for pair in synthetic_edges.values()}
    return MSTRunResult(
        algorithm="Sleeping-SpanningTree",
        mst_weights=mapped,
        node_outputs=result.node_outputs,
        metrics=result.metrics,
        phases=result.phases,
        simulation=result.simulation,
    )
