"""Reproducible benchmark harness with regression gating.

The paper's empirical story (``O(log n)`` awake fits, Table 1 grids, the
Theorem 4 trade-off) is bounded by how large an ``n`` the pure-Python
engine can sweep, so the engine's wall-clock performance is itself a
tracked artifact.  This package measures it reproducibly:

* :mod:`repro.bench.harness` — warmup + repeated timing with
  median/IQR summaries.
* :mod:`repro.bench.suites` — the benchmark registry: microbenchmarks
  (CONGEST bit accounting, the engine round loop) and end-to-end MST
  runs at fixed seeds, organised in ``micro`` / ``e2e`` tiers with a CI
  ``smoke`` subset.
* :mod:`repro.bench.env` — an environment fingerprint stamped into every
  result file so numbers are never compared across unlike machines
  silently.
* :mod:`repro.bench.report` — the ``BENCH_<name>.json`` schema
  (``repro-bench/1``), baseline comparison, and regression gating used
  by ``repro-mst bench --check``.

Results accumulate across PRs as committed ``BENCH_*.json`` files (see
``BENCH_engine.json`` at the repository root); CI runs the smoke tier and
warns when a benchmark's median regresses past the threshold.
"""

from .env import environment_fingerprint
from .harness import BenchTiming, time_callable
from .report import (
    SCHEMA_VERSION,
    BenchComparison,
    build_payload,
    compare_to_baseline,
    load_bench_json,
    make_baseline_comparison,
    validate_bench_payload,
    write_bench_json,
)
from .suites import BENCHMARKS, Benchmark, get_benchmark, select_benchmarks

__all__ = [
    "BENCHMARKS",
    "BenchComparison",
    "BenchTiming",
    "Benchmark",
    "SCHEMA_VERSION",
    "build_payload",
    "compare_to_baseline",
    "environment_fingerprint",
    "get_benchmark",
    "load_bench_json",
    "make_baseline_comparison",
    "select_benchmarks",
    "time_callable",
    "validate_bench_payload",
    "write_bench_json",
]
