"""Environment fingerprint stamped into every benchmark result file.

Benchmark numbers are only comparable on like hardware and interpreters;
the fingerprint makes silent cross-machine comparisons visible.  The
regression gate (:func:`repro.bench.report.compare_to_baseline`) does not
*refuse* to compare across differing fingerprints — CI runners vary — but
reports flag the mismatch so a human can discount noise accordingly.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from typing import Any, Dict, Optional


def _numpy_fingerprint() -> Dict[str, Any]:
    """numpy version plus the BLAS backend and its thread cap.

    The array engine's scale-tier numbers depend on which BLAS numpy was
    built against and how many threads it may spawn — two installs with
    the same numpy version can differ several-fold on reduction-heavy
    workloads.  ``None`` values mean numpy is absent (the coroutine
    engine and every non-scale benchmark still run without it).
    """
    info: Dict[str, Any] = {
        "numpy": None,
        "numpy_blas": None,
        "numpy_threads": None,
    }
    try:
        import numpy
    except ImportError:
        return info
    info["numpy"] = numpy.__version__
    try:
        config = numpy.show_config(mode="dicts")
        blas = (config.get("Build Dependencies") or {}).get("blas") or {}
        name = blas.get("name")
        version = blas.get("version")
        if name:
            info["numpy_blas"] = f"{name} {version}" if version else str(name)
    except (TypeError, AttributeError):
        # numpy < 1.25 has no dict mode; leave the backend unidentified
        # rather than parse the printed config.
        pass
    for variable in (
        "OMP_NUM_THREADS",
        "OPENBLAS_NUM_THREADS",
        "MKL_NUM_THREADS",
    ):
        value = os.environ.get(variable)
        if value:
            info["numpy_threads"] = f"{variable}={value}"
            break
    return info


def _git_revision() -> Optional[str]:
    """Best-effort short git revision of the working tree (None outside git)."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = completed.stdout.strip()
    return revision or None


def environment_fingerprint() -> Dict[str, Any]:
    """Return the dictionary written under ``env`` in ``BENCH_*.json``."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pythonhashseed": os.environ.get("PYTHONHASHSEED"),
        "git_revision": _git_revision(),
        **_numpy_fingerprint(),
    }


def fingerprint_mismatches(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> Dict[str, Any]:
    """Return ``{key: (current, baseline)}`` for keys that differ.

    Volatile keys (git revision — expected to differ across PRs) are
    excluded; the rest genuinely change what a second of wall-clock means.
    """
    volatile = {"git_revision"}
    mismatches: Dict[str, Any] = {}
    for key in sorted(set(current) | set(baseline)):
        if key in volatile:
            continue
        if current.get(key) != baseline.get(key):
            mismatches[key] = (current.get(key), baseline.get(key))
    return mismatches
