"""Timing core: warmup, repeats, and robust summary statistics.

Benchmarks are timed with ``time.perf_counter`` around a zero-argument
callable.  Warmup iterations run first (filling caches, importing lazily
loaded modules, warming the allocator) and are discarded; the remaining
samples are summarised by their median and interquartile range, which are
robust to the occasional scheduler hiccup that makes means useless on
shared runners.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, List


@dataclass(frozen=True)
class BenchTiming:
    """Raw samples plus the summary statistics written into reports."""

    samples_s: List[float]
    repeats: int
    warmup: int

    @property
    def median_s(self) -> float:
        return statistics.median(self.samples_s)

    @property
    def mean_s(self) -> float:
        return statistics.fmean(self.samples_s)

    @property
    def min_s(self) -> float:
        return min(self.samples_s)

    @property
    def iqr_s(self) -> float:
        """Interquartile range; 0.0 when there are fewer than 4 samples."""
        if len(self.samples_s) < 4:
            return 0.0
        q1, _, q3 = statistics.quantiles(self.samples_s, n=4)
        return q3 - q1

    def summary(self) -> dict:
        return {
            "median_s": self.median_s,
            "iqr_s": self.iqr_s,
            "min_s": self.min_s,
            "mean_s": self.mean_s,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "samples_s": list(self.samples_s),
        }


def time_callable(
    fn: Callable[[], object],
    *,
    repeats: int = 5,
    warmup: int = 1,
) -> BenchTiming:
    """Time ``fn()`` ``repeats`` times after ``warmup`` discarded runs."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    perf_counter = time.perf_counter
    samples: List[float] = []
    for _ in range(repeats):
        start = perf_counter()
        fn()
        samples.append(perf_counter() - start)
    return BenchTiming(samples_s=samples, repeats=repeats, warmup=warmup)
