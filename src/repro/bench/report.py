"""``BENCH_*.json`` schema, baseline comparison, and regression gating.

File layout (schema ``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "suite": "engine",
      "created_unix": 1754500000,
      "env": { ... environment fingerprint ... },
      "benchmarks": [
        {"name": "...", "tier": "micro", "params": {...},
         "median_s": ..., "iqr_s": ..., "min_s": ..., "mean_s": ...,
         "repeats": 5, "warmup": 1, "samples_s": [...]},
        ...
      ],
      "baseline_comparison": null | {
        "reference": "<label of what current numbers are compared against>",
        "headline": {"name": ..., "baseline_median_s": ...,
                     "current_median_s": ..., "speedup": ...},
        "benchmarks": {name: {"baseline_median_s": ...,
                              "current_median_s": ..., "speedup": ...}}
      }
    }

``compare_to_baseline`` implements the regression gate used by
``repro-mst bench --check``: a benchmark regresses when its current
median exceeds ``threshold ×`` its baseline median.  Missing benchmarks
(on either side) never fail the gate — they are reported so renames don't
silently drop coverage.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .env import fingerprint_mismatches

SCHEMA_VERSION = "repro-bench/1"

_REQUIRED_TOP_KEYS = ("schema", "suite", "created_unix", "env", "benchmarks")
_REQUIRED_BENCH_KEYS = (
    "name",
    "tier",
    "params",
    "median_s",
    "iqr_s",
    "min_s",
    "mean_s",
    "repeats",
    "warmup",
    "samples_s",
)


def build_payload(
    suite: str,
    results: Sequence[Tuple[Any, Any]],
    env: Mapping[str, Any],
    baseline_comparison: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the schema payload from ``(Benchmark, BenchTiming)`` pairs."""
    benchmarks = []
    for benchmark, timing in results:
        entry = benchmark.describe()
        entry.pop("smoke", None)
        entry.update(timing.summary())
        benchmarks.append(entry)
    return {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "created_unix": int(time.time()),
        "env": dict(env),
        "benchmarks": benchmarks,
        "baseline_comparison": (
            dict(baseline_comparison) if baseline_comparison is not None else None
        ),
    }


def validate_bench_payload(payload: Any) -> int:
    """Validate a payload against ``repro-bench/1``; return benchmark count.

    Raises ``ValueError`` with a pointed message on the first problem.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"payload must be an object, got {type(payload).__name__}")
    for key in _REQUIRED_TOP_KEYS:
        if key not in payload:
            raise ValueError(f"missing top-level key {key!r}")
    if payload["schema"] != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {payload['schema']!r} (expected {SCHEMA_VERSION!r})"
        )
    if not isinstance(payload["env"], dict):
        raise ValueError("env must be an object")
    benchmarks = payload["benchmarks"]
    if not isinstance(benchmarks, list):
        raise ValueError("benchmarks must be a list")
    seen = set()
    for position, entry in enumerate(benchmarks):
        if not isinstance(entry, dict):
            raise ValueError(f"benchmarks[{position}] must be an object")
        for key in _REQUIRED_BENCH_KEYS:
            if key not in entry:
                raise ValueError(f"benchmarks[{position}] missing key {key!r}")
        name = entry["name"]
        if name in seen:
            raise ValueError(f"duplicate benchmark name {name!r}")
        seen.add(name)
        samples = entry["samples_s"]
        if not isinstance(samples, list) or not samples:
            raise ValueError(f"benchmarks[{position}] samples_s must be non-empty")
        if any(
            not isinstance(sample, (int, float)) or sample < 0 for sample in samples
        ):
            raise ValueError(
                f"benchmarks[{position}] samples_s must be non-negative numbers"
            )
        if entry["median_s"] < 0:
            raise ValueError(f"benchmarks[{position}] median_s must be >= 0")
    return len(benchmarks)


def write_bench_json(path: Union[str, Path], payload: Mapping[str, Any]) -> Path:
    """Validate and write ``payload`` to ``path`` (pretty, sorted, trailing \\n)."""
    validate_bench_payload(dict(payload))
    target = Path(path)
    target.write_text(json.dumps(dict(payload), indent=2, sort_keys=True) + "\n")
    return target


def load_bench_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a ``BENCH_*.json`` file."""
    source = Path(path)
    payload = json.loads(source.read_text())
    validate_bench_payload(payload)
    return payload


def _medians(payload: Mapping[str, Any]) -> Dict[str, float]:
    return {
        entry["name"]: float(entry["median_s"]) for entry in payload["benchmarks"]
    }


@dataclass(frozen=True)
class ComparisonEntry:
    """Per-benchmark verdict of a baseline comparison."""

    name: str
    baseline_median_s: float
    current_median_s: float
    #: ``current / baseline`` — above 1.0 means slower than the baseline.
    ratio: float
    regressed: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "baseline_median_s": self.baseline_median_s,
            "current_median_s": self.current_median_s,
            "ratio": self.ratio,
            "regressed": self.regressed,
        }


@dataclass
class BenchComparison:
    """Outcome of gating current results against a committed baseline."""

    threshold: float
    entries: List[ComparisonEntry]
    #: Benchmarks present only in the baseline / only in the current run.
    missing_in_current: List[str] = field(default_factory=list)
    missing_in_baseline: List[str] = field(default_factory=list)
    #: Environment keys that differ (``{key: (current, baseline)}``).
    env_mismatches: Dict[str, Any] = field(default_factory=dict)

    @property
    def regressions(self) -> List[ComparisonEntry]:
        return [entry for entry in self.entries if entry.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "threshold": self.threshold,
            "ok": self.ok,
            "entries": [entry.to_dict() for entry in self.entries],
            "missing_in_current": list(self.missing_in_current),
            "missing_in_baseline": list(self.missing_in_baseline),
            "env_mismatches": {
                key: list(value) for key, value in self.env_mismatches.items()
            },
        }


def compare_to_baseline(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    threshold: float = 1.25,
) -> BenchComparison:
    """Gate ``current`` against ``baseline`` at ``threshold`` slowdown.

    Only benchmarks present in both payloads are gated; a benchmark
    regresses when ``current_median > threshold * baseline_median``.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    current_medians = _medians(current)
    baseline_medians = _medians(baseline)
    entries: List[ComparisonEntry] = []
    for name in sorted(set(current_medians) & set(baseline_medians)):
        baseline_median = baseline_medians[name]
        current_median = current_medians[name]
        ratio = (
            current_median / baseline_median
            if baseline_median > 0
            else float("inf") if current_median > 0 else 1.0
        )
        entries.append(
            ComparisonEntry(
                name=name,
                baseline_median_s=baseline_median,
                current_median_s=current_median,
                ratio=ratio,
                regressed=ratio > threshold,
            )
        )
    return BenchComparison(
        threshold=threshold,
        entries=entries,
        missing_in_current=sorted(set(baseline_medians) - set(current_medians)),
        missing_in_baseline=sorted(set(current_medians) - set(baseline_medians)),
        env_mismatches=fingerprint_mismatches(
            dict(current.get("env", {})), dict(baseline.get("env", {}))
        ),
    )


def make_baseline_comparison(
    current: Mapping[str, Any],
    reference: Mapping[str, Any],
    label: str,
    headline: Optional[str] = None,
) -> Dict[str, Any]:
    """Build the ``baseline_comparison`` block recording speedups.

    ``reference`` holds the *older* (e.g. pre-optimization) numbers;
    ``speedup`` is ``reference_median / current_median``, so values above
    1.0 mean the current engine is faster.  ``headline`` names the
    benchmark whose speedup is surfaced at the top (the end-to-end run at
    the largest smoke ``n``, per the repo's acceptance criteria).
    """
    current_medians = _medians(current)
    reference_medians = _medians(reference)
    per_benchmark: Dict[str, Any] = {}
    for name in sorted(set(current_medians) & set(reference_medians)):
        reference_median = reference_medians[name]
        current_median = current_medians[name]
        per_benchmark[name] = {
            "baseline_median_s": reference_median,
            "current_median_s": current_median,
            "speedup": (
                reference_median / current_median if current_median > 0 else None
            ),
        }
    block: Dict[str, Any] = {"reference": label, "benchmarks": per_benchmark}
    if headline is not None and headline in per_benchmark:
        block["headline"] = {"name": headline, **per_benchmark[headline]}
    return block
