"""The benchmark registry: what gets timed, at which tier, with what inputs.

Every benchmark is deterministic end to end — fixed graph seeds, fixed
protocol seeds, fixed payload corpora — so two runs on the same machine
and interpreter time the *same* computation and their medians are directly
comparable.  Benchmarks build their inputs (graphs, corpora) once in
``make()``; only the returned thunk is timed.

Tiers
-----
``micro``
    Isolated hot paths: CONGEST bit accounting over a realistic payload
    corpus, and the engine round loop driven by a payload-light heartbeat
    protocol (so engine overhead, not bit accounting, dominates).
``e2e``
    Full MST runs through the public runners at fixed seeds — the number
    that actually bounds how large an ``n`` the experiment sweeps reach.
``fault``
    Runs under a fault-injecting channel model (:mod:`repro.sim.transport`):
    the general loop with channel dispatch and the delayed-message heap.
    Guards the robustness workload the same way ``micro``/``e2e`` guard
    the default path.
``monitors``
    Full MST runs with every invariant monitor attached
    (:mod:`repro.invariants`): probe buffering, group checking, and span
    forwarding on top of the general loop.  Compared against the ``e2e``
    twins, the ratio *is* the monitoring overhead.
``mis``
    Full ``Sleeping-MIS`` runs (the second problem bundle,
    :mod:`repro.problems.mis`), bare and monitored.  Not smoke — the
    committed ``BENCH_engine.json`` baselines predate the problem
    registry and pin the smoke suite; CI times this tier in the
    ``problem-zoo-smoke`` job instead.
``scale``
    Large-``n`` MST runs pitting the vectorized array backend
    (``engine="array"``, :mod:`repro.core.array_ops`) against the
    coroutine engine on the same graph.  The
    ``coroutine_scale_n4096`` / ``array_scale_n4096`` pair measures the
    backend speedup (the acceptance gate asserts >= 20x on the committed
    baseline); ``array_scale_n16384`` documents that the array backend
    reaches n = 16384 in CI-smoke time.  The grid family keeps the
    coroutine twin affordable (phases grow with diameter, not edge count,
    so ``gnp`` at this ``n`` would take minutes per sample).

The ``smoke`` flag marks the subset cheap enough for CI on every push.
The ``scale`` tier is deliberately *not* smoke: CI runs it in a separate
``scale-smoke`` job via explicit ``--names`` so the per-push job stays
fast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

from repro.sim import Awake


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark: metadata plus a thunk factory."""

    name: str
    tier: str  # "micro" | "e2e" | "fault" | "monitors" | "mis" | "scale"
    smoke: bool
    params: Mapping[str, Any]
    make: Callable[[], Callable[[], Any]] = field(repr=False)

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "tier": self.tier,
            "smoke": self.smoke,
            "params": dict(self.params),
        }


# ----------------------------------------------------------------------
# Micro: CONGEST bit accounting
# ----------------------------------------------------------------------

def payload_corpus(count: int = 512, seed: int = 1234) -> List[Any]:
    """A fixed, realistic mix of protocol payload shapes.

    Mirrors what the MST protocols actually send: short string tags
    followed by a few bounded integers, occasional booleans, ``inf``
    sentinels (Upcast-Min), bare integers, and a sprinkling of nested
    tuples to exercise the uncached recursive path.
    """
    rng = Random(seed)
    corpus: List[Any] = []
    for _ in range(count):
        kind = rng.randrange(6)
        if kind == 0:
            corpus.append(
                (
                    "mwoe",
                    rng.randrange(10**6),
                    rng.randrange(4096),
                    rng.randrange(16),
                )
            )
        elif kind == 1:
            corpus.append(("hb", rng.randrange(10**4), bool(rng.randrange(2))))
        elif kind == 2:
            corpus.append(
                (
                    "up",
                    rng.randrange(512),
                    math.inf if rng.randrange(2) else rng.randrange(10**6),
                )
            )
        elif kind == 3:
            corpus.append(rng.randrange(10**9))
        elif kind == 4:
            corpus.append(("id", "x" * (1 + rng.randrange(8)), rng.randrange(10**6)))
        else:
            corpus.append((("nest", rng.randrange(64)), rng.randrange(10**6), None))
    return corpus


def _make_payload_bits(loops: int = 30) -> Callable[[], Any]:
    from repro.sim.congest import CongestPolicy

    corpus = payload_corpus()

    def run() -> None:
        # A fresh policy per sample: the first corpus pass is cold, the
        # remaining ``loops - 1`` passes measure the steady state the
        # engine sees (repetitive shapes, warm accounting).
        policy = CongestPolicy(10**6, strict=False)
        check = policy.check
        for _ in range(loops):
            for payload in corpus:
                check(payload)

    return run


# ----------------------------------------------------------------------
# Micro: engine round loop
# ----------------------------------------------------------------------

def _heartbeat_protocol(ctx: Any):
    """Payload-light staggered heartbeats: stresses the round loop itself."""
    node_id = ctx.node_id
    offset = node_id % 3
    sends = {port: ("hb", node_id) for port in ctx.ports}
    for i in range(1, 61):
        yield Awake(3 * i + offset, sends)
    return None


def _make_engine_loop(n: int = 128) -> Callable[[], Any]:
    from repro.graphs import ring_graph
    from repro.sim import simulate

    graph = ring_graph(n, seed=1)

    def run() -> None:
        simulate(graph, _heartbeat_protocol, seed=0)

    return run


# ----------------------------------------------------------------------
# Fault tier: the general loop under channel models
# ----------------------------------------------------------------------

def _make_engine_fault_drop(n: int = 128, p: float = 0.05) -> Callable[[], Any]:
    from repro.graphs import ring_graph
    from repro.sim import DropChannel, simulate

    # Heartbeats never read their inbox, so they tolerate any loss rate:
    # this times the general loop + channel dispatch, not protocol recovery.
    graph = ring_graph(n, seed=1)
    channel = DropChannel(p)

    def run() -> None:
        simulate(graph, _heartbeat_protocol, seed=0, channel=channel)

    return run


def _make_mst_fault_dup(n: int, p: float = 0.1) -> Callable[[], Any]:
    from repro.core import run_randomized_mst
    from repro.orchestrator import GRAPH_FAMILIES
    from repro.sim import DuplicateChannel

    # Duplication is the fault the MST protocols survive (stale copies
    # mostly arrive while receivers sleep), so the run completes and the
    # delayed-message heap gets a real workout.
    graph = GRAPH_FAMILIES["gnp"](n, 0, None)
    channel = DuplicateChannel(p)

    def run() -> None:
        run_randomized_mst(graph, seed=0, channel=channel)

    return run


# ----------------------------------------------------------------------
# Monitors tier: MST runs with every invariant monitor attached
# ----------------------------------------------------------------------

def _make_mst_monitored(algorithm: str, n: int) -> Callable[[], Any]:
    from repro.core import run_deterministic_mst, run_randomized_mst
    from repro.invariants import build_monitor_set
    from repro.orchestrator import GRAPH_FAMILIES

    graph = GRAPH_FAMILIES["gnp"](n, 0, None)
    runner = (
        run_randomized_mst if algorithm == "randomized" else run_deterministic_mst
    )

    def run() -> None:
        # A fresh MonitorSet per sample: attach() resets state, but the
        # timed work must include building the checker wiring the way a
        # monitored orchestrator job does.
        runner(graph, seed=0, monitors=build_monitor_set("all"))

    return run


# ----------------------------------------------------------------------
# End to end: MST runs at fixed seeds
# ----------------------------------------------------------------------

def _make_mst_randomized(n: int) -> Callable[[], Any]:
    from repro.core import run_randomized_mst
    from repro.orchestrator import GRAPH_FAMILIES

    graph = GRAPH_FAMILIES["gnp"](n, 0, None)

    def run() -> None:
        run_randomized_mst(graph, seed=0)

    return run


def _make_mst_deterministic(n: int) -> Callable[[], Any]:
    from repro.core import run_deterministic_mst
    from repro.orchestrator import GRAPH_FAMILIES

    graph = GRAPH_FAMILIES["gnp"](n, 0, None)

    def run() -> None:
        run_deterministic_mst(graph)

    return run


# ----------------------------------------------------------------------
# MIS tier: the second problem bundle (Sleeping-MIS)
# ----------------------------------------------------------------------

def _make_mis_sleeping(n: int, monitored: bool = False) -> Callable[[], Any]:
    from repro.invariants import build_monitor_set
    from repro.orchestrator import GRAPH_FAMILIES
    from repro.problems import run_sleeping_mis

    graph = GRAPH_FAMILIES["gnp"](n, 0, None)

    def run() -> None:
        monitors = build_monitor_set("all", problem="mis") if monitored else None
        run_sleeping_mis(graph, seed=0, monitors=monitors)

    return run


# ----------------------------------------------------------------------
# Scale tier: array vs coroutine backend at large n
# ----------------------------------------------------------------------

def _make_mst_scale(n: int, engine: str) -> Callable[[], Any]:
    from repro.core import run_randomized_mst
    from repro.orchestrator import GRAPH_FAMILIES

    # Both engines run the *same* graph and seed, so the pair of medians
    # is a clean backend ratio: identical rounds, identical messages,
    # identical metrics (the equivalence suite asserts byte equality).
    graph = GRAPH_FAMILIES["grid"](n, 0, None)

    def run() -> None:
        run_randomized_mst(graph, seed=0, engine=engine)

    return run


#: The registry, in execution order (cheap first).
BENCHMARKS: Tuple[Benchmark, ...] = (
    Benchmark(
        name="payload_bits_micro",
        tier="micro",
        smoke=True,
        params={"corpus": 512, "loops": 30, "seed": 1234},
        make=_make_payload_bits,
    ),
    Benchmark(
        name="engine_round_loop",
        tier="micro",
        smoke=True,
        params={"family": "ring", "n": 128, "heartbeats": 60, "seed": 1},
        make=_make_engine_loop,
    ),
    Benchmark(
        name="mst_randomized_e2e_n64",
        tier="e2e",
        smoke=True,
        params={"family": "gnp", "n": 64, "seed": 0},
        make=lambda: _make_mst_randomized(64),
    ),
    Benchmark(
        name="mst_deterministic_e2e_n64",
        tier="e2e",
        smoke=True,
        params={"family": "gnp", "n": 64, "seed": 0},
        make=lambda: _make_mst_deterministic(64),
    ),
    Benchmark(
        name="mst_randomized_e2e_n256",
        tier="e2e",
        smoke=True,
        params={"family": "gnp", "n": 256, "seed": 0},
        make=lambda: _make_mst_randomized(256),
    ),
    Benchmark(
        name="engine_fault_drop_loop",
        tier="fault",
        smoke=True,
        params={"family": "ring", "n": 128, "drop": 0.05, "seed": 1},
        make=_make_engine_fault_drop,
    ),
    Benchmark(
        name="mst_randomized_fault_dup_n64",
        tier="fault",
        smoke=True,
        params={"family": "gnp", "n": 64, "dup": 0.1, "seed": 0},
        make=lambda: _make_mst_fault_dup(64),
    ),
    Benchmark(
        name="mst_randomized_monitored_n64",
        tier="monitors",
        smoke=True,
        params={"family": "gnp", "n": 64, "seed": 0, "monitors": "all"},
        make=lambda: _make_mst_monitored("randomized", 64),
    ),
    Benchmark(
        name="mst_deterministic_monitored_n64",
        tier="monitors",
        smoke=True,
        params={"family": "gnp", "n": 64, "seed": 0, "monitors": "all"},
        make=lambda: _make_mst_monitored("deterministic", 64),
    ),
    # MIS tier is deliberately not smoke (like scale): the per-push bench
    # gate compares against BENCH_engine.json baselines recorded before
    # the problem registry existed, and a smoke-flagged addition would
    # change the smoke suite those baselines pin.  CI runs it in the
    # separate problem-zoo-smoke job.
    Benchmark(
        name="mis_sleeping_e2e_n64",
        tier="mis",
        smoke=False,
        params={"problem": "mis", "family": "gnp", "n": 64, "seed": 0},
        make=lambda: _make_mis_sleeping(64),
    ),
    Benchmark(
        name="mis_sleeping_e2e_n256",
        tier="mis",
        smoke=False,
        params={"problem": "mis", "family": "gnp", "n": 256, "seed": 0},
        make=lambda: _make_mis_sleeping(256),
    ),
    Benchmark(
        name="mis_sleeping_monitored_n64",
        tier="mis",
        smoke=False,
        params={
            "problem": "mis",
            "family": "gnp",
            "n": 64,
            "seed": 0,
            "monitors": "all",
        },
        make=lambda: _make_mis_sleeping(64, monitored=True),
    ),
    Benchmark(
        name="mst_randomized_array_scale_n4096",
        tier="scale",
        smoke=False,
        params={"family": "grid", "n": 4096, "seed": 0, "engine": "array"},
        make=lambda: _make_mst_scale(4096, "array"),
    ),
    Benchmark(
        name="mst_randomized_array_scale_n16384",
        tier="scale",
        smoke=False,
        params={"family": "grid", "n": 16384, "seed": 0, "engine": "array"},
        make=lambda: _make_mst_scale(16384, "array"),
    ),
    Benchmark(
        name="mst_randomized_coroutine_scale_n4096",
        tier="scale",
        smoke=False,
        params={"family": "grid", "n": 4096, "seed": 0, "engine": "coroutine"},
        make=lambda: _make_mst_scale(4096, "coroutine"),
    ),
)

#: The end-to-end benchmark at the largest smoke ``n`` — the headline
#: number for ``baseline_comparison`` (see the acceptance criteria).
HEADLINE_BENCHMARK = "mst_randomized_e2e_n256"


def get_benchmark(name: str) -> Benchmark:
    for benchmark in BENCHMARKS:
        if benchmark.name == name:
            return benchmark
    known = ", ".join(b.name for b in BENCHMARKS)
    raise KeyError(f"unknown benchmark {name!r}; known: {known}")


def select_benchmarks(
    suite: str = "smoke", names: Sequence[str] = ()
) -> List[Benchmark]:
    """Resolve a suite name (or explicit benchmark names) to benchmarks.

    ``names`` wins when non-empty; otherwise ``suite`` is one of
    ``smoke`` (CI subset), ``micro``, ``e2e``, ``fault``, ``monitors``,
    ``mis``, ``scale``, or ``full``.
    """
    if names:
        return [get_benchmark(name) for name in names]
    if suite == "full":
        return list(BENCHMARKS)
    if suite == "smoke":
        return [b for b in BENCHMARKS if b.smoke]
    if suite in ("micro", "e2e", "fault", "monitors", "mis", "scale"):
        return [b for b in BENCHMARKS if b.tier == suite]
    raise ValueError(
        f"unknown suite {suite!r}; use smoke, micro, e2e, fault, monitors, "
        "mis, scale, or full"
    )
