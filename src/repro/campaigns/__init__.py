"""Declarative experiment campaigns with adaptive sweeps and fits.

One spec file (TOML or JSON) describes dense grids over the
orchestrator's axes, adaptive drivers (bisection crossover search,
fault-rate threshold scan), and statistical fits with bootstrap
confidence bands; one resumable command runs it all into a
byte-reproducible ``repro-campaign/1`` report.  See
``docs/campaigns.md`` and ``examples/campaigns/``.
"""

from .drivers import (
    DRIVER_KINDS,
    BisectDriver,
    BisectSearch,
    DriverBudgetError,
    ProbeSide,
    ThresholdDriver,
    build_driver,
    default_budget,
)
from .report import (
    CAMPAIGN_SCHEMA,
    build_report,
    load_report,
    render_report,
    validate_campaign_report,
    write_report,
)
from .runner import (
    CampaignError,
    LocalGridExecutor,
    MissingRecordsError,
    ServiceGridExecutor,
    StoreReplayExecutor,
    campaign_root,
    ledger_path,
    report_path,
    run_campaign,
)
from .spec import CampaignSpec, CampaignSpecError, FitSection, GridSection

__all__ = [
    "BisectDriver",
    "BisectSearch",
    "CAMPAIGN_SCHEMA",
    "CampaignError",
    "CampaignSpec",
    "CampaignSpecError",
    "DRIVER_KINDS",
    "DriverBudgetError",
    "FitSection",
    "GridSection",
    "LocalGridExecutor",
    "MissingRecordsError",
    "ProbeSide",
    "ServiceGridExecutor",
    "StoreReplayExecutor",
    "ThresholdDriver",
    "build_driver",
    "build_report",
    "campaign_root",
    "default_budget",
    "ledger_path",
    "load_report",
    "render_report",
    "report_path",
    "run_campaign",
    "validate_campaign_report",
    "write_report",
]
