"""Adaptive drivers: probe-by-probe searches over the experiment space.

Dense grids measure a fixed set of cells; a *driver* decides its next
cell from the results so far.  Two drivers ship:

* :class:`BisectDriver` binary-searches the smallest ``n`` where a
  predicate comparing two measured quantities flips — e.g. the smallest
  graph where the sleeping algorithm's awake complexity beats an
  always-awake baseline's round complexity (the paper's headline
  trade-off, located empirically instead of eyeballed off a sweep).
* :class:`ThresholdDriver` scans a fault-rate axis upward and reports
  the first rate where correctness breaks — where
  :func:`repro.graphs.verify_or_diagnose` stops saying ``correct`` or an
  invariant monitor first fires.

Both are deterministic given their config: every probe is recorded in an
audit trail that lands in the campaign report, and every measurement
goes through an *executor* (see :mod:`repro.campaigns.runner`) — the
driver itself never runs a simulation, which is what lets ``campaign
report`` replay a finished ledger without re-running anything, and lets
tests drive the search logic with synthetic predicates.

The search core, :class:`BisectSearch`, is a pure propose/feed state
machine with a hard probe budget — no I/O, no simulation — so property
tests can hammer it with arbitrary monotone predicates.

Adding a driver kind
--------------------
Write a class with ``kind``/``name`` attributes, a ``run(run_grid)``
method taking a ``(payload, label) -> records`` callable and returning a
JSON-safe audit dict, and a ``from_config`` classmethod raising
:class:`~repro.campaigns.spec.CampaignSpecError` on bad config; then
register it in :data:`DRIVER_KINDS`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.stats import mean

from .spec import CampaignSpecError, _context

#: ``(grid payload, label) -> execute_job-style record dicts`` — how a
#: driver asks the campaign runner for measurements.
GridRunner = Callable[[Mapping[str, Any], str], List[Dict[str, Any]]]

#: Comparison operators a bisect predicate may use.
PREDICATE_OPS: Dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class DriverBudgetError(RuntimeError):
    """A driver needed more probes than its hard budget allows."""


def default_budget(lo: int, hi: int) -> int:
    """Probe budget for a bisection over ``[lo, hi]``.

    A binary search over ``R = hi - lo + 1`` candidates needs at most
    ``ceil(log2 R)`` narrowing probes plus one confirmation probe; the
    default budget adds one more of slack.
    """
    span = max(1, hi - lo + 1)
    return math.ceil(math.log2(span)) + 2


class BisectSearch:
    """Pure binary search for the smallest value where a predicate holds.

    Assumes the predicate is *monotone*: false up to some threshold,
    true from it onward (either side possibly empty).  Usage::

        search = BisectSearch(4, 512)
        while (value := search.propose()) is not None:
            search.feed(value, predicate(value))
        search.found  # smallest true value, or None if never true

    ``feed`` enforces the hard probe ``budget`` — a non-monotone
    predicate cannot send the search into an unbounded walk — and
    records every ``(value, verdict)`` pair in :attr:`probes` for the
    audit trail.  Proposals always stay inside ``[lo, hi]``.
    """

    def __init__(self, lo: int, hi: int, budget: Optional[int] = None) -> None:
        lo, hi = int(lo), int(hi)
        if lo > hi:
            raise ValueError(f"bisect range is empty: lo={lo} > hi={hi}")
        self.initial_lo = lo
        self.initial_hi = hi
        self.lo = lo
        self.hi = hi
        self.budget = default_budget(lo, hi) if budget is None else int(budget)
        if self.budget < 1:
            raise ValueError(f"bisect budget must be >= 1, got {self.budget}")
        self.probes: List[Tuple[int, bool]] = []
        self._verdicts: Dict[int, bool] = {}
        self._done = False

    def propose(self) -> Optional[int]:
        """Next value to probe, or ``None`` when the search is finished."""
        if self._done:
            return None
        if self.lo < self.hi:
            return (self.lo + self.hi) // 2
        # Interval collapsed: one confirmation probe of the survivor,
        # unless the narrowing already measured it.
        if self.lo in self._verdicts:
            self._done = True
            return None
        return self.lo

    def feed(self, value: int, verdict: bool) -> None:
        """Record the predicate's verdict at ``value`` and narrow."""
        if self._done:
            raise RuntimeError("search already finished")
        if not (self.lo <= value <= self.hi):
            raise ValueError(
                f"probe {value} outside current interval "
                f"[{self.lo}, {self.hi}]"
            )
        if len(self.probes) >= self.budget:
            raise DriverBudgetError(
                f"bisect over [{self.initial_lo}, {self.initial_hi}] "
                f"exceeded its probe budget of {self.budget}"
            )
        verdict = bool(verdict)
        self.probes.append((value, verdict))
        self._verdicts[value] = verdict
        if self.lo < self.hi:
            if verdict:
                self.hi = value
            else:
                self.lo = value + 1
        else:
            self._done = True

    @property
    def done(self) -> bool:
        return self._done or (
            self.lo == self.hi and self.lo in self._verdicts
        )

    @property
    def found(self) -> Optional[int]:
        """Smallest value where the predicate held, or ``None``."""
        if not self.done:
            return None
        return self.lo if self._verdicts.get(self.lo) else None


@dataclass(frozen=True)
class ProbeSide:
    """One side of a bisect predicate: what to run and what to measure."""

    algorithm: str
    metric: str = "max_awake"
    engine: Optional[str] = None
    problem: Optional[str] = None

    def payload(self, family: str, n: int, seeds: Sequence[int]) -> Dict[str, Any]:
        grid: Dict[str, Any] = {
            "algorithms": [self.algorithm],
            "families": [family],
            "sizes": [n],
            "seeds": list(seeds),
        }
        if self.engine:
            grid["engine"] = self.engine
        if self.problem:
            grid["problem"] = self.problem
        return grid

    def describe(self) -> str:
        suffix = f"@{self.problem}" if self.problem else ""
        return f"mean {self.metric}({self.algorithm}{suffix})"

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "algorithm": self.algorithm, "metric": self.metric
        }
        if self.engine:
            payload["engine"] = self.engine
        if self.problem:
            payload["problem"] = self.problem
        return payload


def _parse_side(
    config: Any, driver: str, side: str, source: Optional[str]
) -> ProbeSide:
    if not isinstance(config, Mapping) or "algorithm" not in config:
        raise CampaignSpecError(
            f"driver {driver!r} needs a {side!r} table with at least "
            f"'algorithm'{_context(source)}"
        )
    unknown = set(config) - {"algorithm", "metric", "engine", "problem"}
    if unknown:
        raise CampaignSpecError(
            f"driver {driver!r} {side} side has unknown keys "
            f"{sorted(unknown)}{_context(source)}"
        )
    return ProbeSide(
        algorithm=str(config["algorithm"]),
        metric=str(config.get("metric", "max_awake")),
        engine=config.get("engine"),
        problem=config.get("problem"),
    )


def _seeds(value: Any) -> List[int]:
    if isinstance(value, int):
        return list(range(value))
    return [int(seed) for seed in value]


@dataclass(frozen=True)
class BisectDriver:
    """Binary-search the smallest ``n`` where ``left OP right`` holds.

    Each probe at size ``n`` runs both sides' one-size grids over the
    configured seeds and compares the per-side means of the configured
    metrics.  With the defaults in ``examples/campaigns/crossover.toml``
    the predicate reads "the sleeping algorithm's mean max awake time is
    below the always-awake baseline's mean round count" — its flip point
    is the crossover size the campaign artifact records.
    """

    kind = "bisect"

    name: str
    family: str
    seeds: Tuple[int, ...]
    lo: int
    hi: int
    left: ProbeSide
    right: ProbeSide
    op: str = "<"
    budget: Optional[int] = None

    @classmethod
    def from_config(
        cls, config: Mapping[str, Any], source: Optional[str] = None
    ) -> "BisectDriver":
        name = config.get("name")
        if not isinstance(name, str) or not name:
            raise CampaignSpecError(
                f"bisect driver needs a non-empty 'name'{_context(source)}"
            )
        allowed = {
            "kind", "name", "family", "seeds", "lo", "hi",
            "left", "right", "op", "budget",
        }
        unknown = set(config) - allowed
        if unknown:
            raise CampaignSpecError(
                f"driver {name!r} has unknown keys {sorted(unknown)}"
                f"{_context(source)}"
            )
        for required in ("family", "lo", "hi", "left", "right"):
            if required not in config:
                raise CampaignSpecError(
                    f"bisect driver {name!r} is missing {required!r}"
                    f"{_context(source)}"
                )
        op = config.get("op", "<")
        if op not in PREDICATE_OPS:
            raise CampaignSpecError(
                f"driver {name!r} has unknown op {op!r}; choose from "
                f"{sorted(PREDICATE_OPS)}{_context(source)}"
            )
        lo, hi = int(config["lo"]), int(config["hi"])
        if lo > hi:
            raise CampaignSpecError(
                f"driver {name!r} has an empty range: lo={lo} > hi={hi}"
                f"{_context(source)}"
            )
        seeds = _seeds(config.get("seeds", 3))
        if not seeds:
            raise CampaignSpecError(
                f"driver {name!r} needs at least one seed{_context(source)}"
            )
        budget = config.get("budget")
        return cls(
            name=name,
            family=str(config["family"]),
            seeds=tuple(seeds),
            lo=lo,
            hi=hi,
            left=_parse_side(config["left"], name, "left", source),
            right=_parse_side(config["right"], name, "right", source),
            op=op,
            budget=None if budget is None else int(budget),
        )

    def predicate_label(self) -> str:
        return f"{self.left.describe()} {self.op} {self.right.describe()}"

    def _measure(
        self, run_grid: GridRunner, side: ProbeSide, n: int, label: str
    ) -> float:
        records = run_grid(side.payload(self.family, n, self.seeds), label)
        values = [
            float(record[side.metric])
            for record in records
            if record.get(side.metric) is not None
        ]
        if not values:
            raise RuntimeError(
                f"driver {self.name!r}: no {side.metric!r} measurements "
                f"for {side.algorithm} at n={n}"
            )
        return mean(values)

    def run(self, run_grid: GridRunner) -> Dict[str, Any]:
        """Execute the search; returns the audit-trail report fragment."""
        search = BisectSearch(self.lo, self.hi, self.budget)
        compare = PREDICATE_OPS[self.op]
        probes: List[Dict[str, Any]] = []
        while (n := search.propose()) is not None:
            label = f"{self.name}/n={n}"
            left_mean = self._measure(run_grid, self.left, n, f"{label}/left")
            right_mean = self._measure(
                run_grid, self.right, n, f"{label}/right"
            )
            verdict = compare(left_mean, right_mean)
            search.feed(n, verdict)
            probes.append(
                {
                    "n": n,
                    "left": round(left_mean, 3),
                    "right": round(right_mean, 3),
                    "verdict": verdict,
                }
            )
        return {
            "kind": self.kind,
            "name": self.name,
            "predicate": self.predicate_label(),
            "family": self.family,
            "seeds": list(self.seeds),
            "range": [self.initial_range[0], self.initial_range[1]],
            "budget": search.budget,
            "probes": probes,
            "probe_count": len(probes),
            "crossover": search.found,
        }

    @property
    def initial_range(self) -> Tuple[int, int]:
        return (self.lo, self.hi)


@dataclass(frozen=True)
class ThresholdDriver:
    """Scan a fault-rate axis upward until correctness first breaks.

    For each rate the driver runs ``algorithm`` on ``(family, n)`` over
    the seeds under the channel ``{fault}:{rate}``, optionally with
    invariant monitors attached.  A rate *breaks* when any cell is not
    ``correct`` (crashed, hung, or wrong output per
    ``verify_or_diagnose``) or any monitor records a violation.  The
    scan stops at the first breaking rate — later rates are never run —
    and reports it as ``threshold`` (``None`` if the whole axis
    survived).
    """

    kind = "threshold"

    name: str
    algorithm: str
    family: str
    n: int
    seeds: Tuple[int, ...]
    rates: Tuple[float, ...]
    fault: str = "drop"
    monitors: Optional[str] = None
    problem: Optional[str] = None

    @classmethod
    def from_config(
        cls, config: Mapping[str, Any], source: Optional[str] = None
    ) -> "ThresholdDriver":
        name = config.get("name")
        if not isinstance(name, str) or not name:
            raise CampaignSpecError(
                f"threshold driver needs a non-empty 'name'{_context(source)}"
            )
        allowed = {
            "kind", "name", "algorithm", "family", "n", "seeds",
            "rates", "fault", "monitors", "problem",
        }
        unknown = set(config) - allowed
        if unknown:
            raise CampaignSpecError(
                f"driver {name!r} has unknown keys {sorted(unknown)}"
                f"{_context(source)}"
            )
        for required in ("algorithm", "family", "n", "rates"):
            if required not in config:
                raise CampaignSpecError(
                    f"threshold driver {name!r} is missing {required!r}"
                    f"{_context(source)}"
                )
        rates = [float(rate) for rate in config["rates"]]
        if not rates:
            raise CampaignSpecError(
                f"driver {name!r} needs a non-empty 'rates' list"
                f"{_context(source)}"
            )
        if rates != sorted(rates):
            raise CampaignSpecError(
                f"driver {name!r} rates must be ascending (the scan stops "
                f"at the first breaking rate){_context(source)}"
            )
        seeds = _seeds(config.get("seeds", 3))
        if not seeds:
            raise CampaignSpecError(
                f"driver {name!r} needs at least one seed{_context(source)}"
            )
        return cls(
            name=name,
            algorithm=str(config["algorithm"]),
            family=str(config["family"]),
            n=int(config["n"]),
            seeds=tuple(seeds),
            rates=tuple(rates),
            fault=str(config.get("fault", "drop")),
            monitors=config.get("monitors"),
            problem=config.get("problem"),
        )

    def _payload(self, rate: float) -> Dict[str, Any]:
        grid: Dict[str, Any] = {
            "algorithms": [self.algorithm],
            "families": [self.family],
            "sizes": [self.n],
            "seeds": list(self.seeds),
            "faults": [f"{self.fault}:{rate:g}"],
        }
        if self.monitors:
            grid["monitors"] = self.monitors
        if self.problem:
            grid["problem"] = self.problem
        return grid

    def run(self, run_grid: GridRunner) -> Dict[str, Any]:
        """Execute the scan; returns the audit-trail report fragment."""
        probes: List[Dict[str, Any]] = []
        threshold: Optional[float] = None
        for rate in self.rates:
            label = f"{self.name}/{self.fault}:{rate:g}"
            records = run_grid(self._payload(rate), label)
            incorrect = sum(
                1 for record in records if not record.get("correct")
            )
            violations = sum(
                record.get("violations") or 0 for record in records
            )
            outcomes = sorted(
                {
                    str(record.get("outcome") or "correct")
                    for record in records
                }
            )
            broke = incorrect > 0 or violations > 0
            probes.append(
                {
                    "rate": rate,
                    "cells": len(records),
                    "incorrect": incorrect,
                    "violations": violations,
                    "outcomes": outcomes,
                    "broke": broke,
                }
            )
            if broke:
                threshold = rate
                break
        return {
            "kind": self.kind,
            "name": self.name,
            "algorithm": self.algorithm,
            "family": self.family,
            "n": self.n,
            "seeds": list(self.seeds),
            "fault": self.fault,
            "rates": list(self.rates),
            "monitors": self.monitors,
            "probes": probes,
            "probe_count": len(probes),
            "threshold": threshold,
        }


#: Registered driver kinds: config ``kind`` -> driver class.
DRIVER_KINDS: Dict[str, Any] = {
    BisectDriver.kind: BisectDriver,
    ThresholdDriver.kind: ThresholdDriver,
}


def build_driver(
    config: Mapping[str, Any], source: Optional[str] = None
) -> Any:
    """Build a driver instance from a ``[[drivers]]`` spec section."""
    kind = config.get("kind")
    if kind not in DRIVER_KINDS:
        raise CampaignSpecError(
            f"unknown driver kind {kind!r}; choose from "
            f"{sorted(DRIVER_KINDS)}{_context(source)}"
        )
    return DRIVER_KINDS[kind].from_config(config, source=source)
