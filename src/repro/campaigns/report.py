"""The ``repro-campaign/1`` report artifact: build, validate, render.

A campaign run distils into one JSON document — the report — holding the
spec's content hash, every grid's records (deterministic portions only),
every driver's audit trail, and every fit with its bootstrap bands.  The
report is *replay-stable*: it is built exclusively from record
fingerprints (never telemetry), records are listed in canonical grid
expansion order (never execution order), and fits use fixed bootstrap
seeds — so running a campaign, killing it mid-grid, and resuming
produces a byte-identical ``report.json``.  CI and the resume tests
lean on that byte-identity directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.analysis.fits import fit_records, render_fit
from repro.orchestrator import RunRecord, grid_key
from repro.orchestrator.store import STATUS_OK

from .spec import CampaignSpec

#: Version tag of the campaign report schema.
CAMPAIGN_SCHEMA = "repro-campaign/1"

#: Required top-level keys of a report payload.
REPORT_KEYS = (
    "schema", "campaign", "description", "spec_hash",
    "grids", "drivers", "fits", "summary",
)


def deterministic_record(record: RunRecord) -> Dict[str, Any]:
    """The replay-stable portion of a record (its fingerprint content)."""
    return json.loads(record.fingerprint())


def build_report(
    spec: CampaignSpec,
    grid_records: Mapping[str, Sequence[RunRecord]],
    driver_results: Sequence[Mapping[str, Any]] = (),
) -> Dict[str, Any]:
    """Assemble the report payload from a campaign's measurements.

    ``grid_records`` maps grid name -> records in canonical expansion
    order (the runner guarantees the order).  Fits declared in the spec
    are computed here, from the ok records of their grid — so a report
    rebuilt from a finished ledger carries identical fits.
    """
    grids: Dict[str, Any] = {}
    totals = {"cells": 0, "ok": 0, "failed": 0, "violations": 0}
    for section in spec.grids:
        records = list(grid_records.get(section.name, []))
        ok = sum(1 for record in records if record.status == STATUS_OK)
        violations = sum(
            (record.metrics or {}).get("violations") or 0
            for record in records
        )
        grids[section.name] = {
            "grid_key": grid_key(section.specs()),
            "cells": len(records),
            "ok": ok,
            "failed": len(records) - ok,
            "violations": violations,
            "records": [deterministic_record(record) for record in records],
        }
        totals["cells"] += len(records)
        totals["ok"] += ok
        totals["failed"] += len(records) - ok
        totals["violations"] += violations

    fits: Dict[str, Any] = {}
    for fit in spec.fits:
        records = [
            record.metrics
            for record in grid_records.get(fit.grid, [])
            if record.status == STATUS_OK and record.metrics is not None
        ]
        band = fit_records(
            records,
            metric=fit.metric,
            model=fit.model,
            algorithm=fit.algorithm,
            resamples=fit.resamples,
            confidence=fit.confidence,
            seed=fit.seed,
        )
        fits[fit.name] = {"grid": fit.grid, **band.to_dict()}

    return {
        "schema": CAMPAIGN_SCHEMA,
        "campaign": spec.name,
        "description": spec.description,
        "spec_hash": spec.spec_hash,
        "grids": grids,
        "drivers": [dict(result) for result in driver_results],
        "fits": fits,
        "summary": totals,
    }


def validate_campaign_report(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Structurally validate a report payload; raises ``ValueError``.

    Checks the schema tag, the presence and shapes of every section, and
    the internal consistency of the counts (per-grid cell counts match
    their record lists; the summary matches the per-grid totals).
    Returns the payload so callers can chain.
    """
    problems: List[str] = []
    schema = payload.get("schema")
    if schema != CAMPAIGN_SCHEMA:
        raise ValueError(
            f"unexpected campaign report schema {schema!r} "
            f"(wanted {CAMPAIGN_SCHEMA!r})"
        )
    for key in REPORT_KEYS:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    grids = payload.get("grids")
    totals = {"cells": 0, "ok": 0, "failed": 0, "violations": 0}
    if not isinstance(grids, Mapping):
        problems.append("'grids' must be a mapping")
        grids = {}
    for name, grid in grids.items():
        for key in ("grid_key", "cells", "ok", "failed", "violations", "records"):
            if key not in grid:
                problems.append(f"grid {name!r} is missing {key!r}")
        records = grid.get("records") or []
        if grid.get("cells") != len(records):
            problems.append(
                f"grid {name!r} claims {grid.get('cells')} cells but "
                f"lists {len(records)} records"
            )
        for index, record in enumerate(records):
            for key in ("key", "spec", "status"):
                if key not in record:
                    problems.append(
                        f"grid {name!r} record #{index} is missing {key!r}"
                    )
        for key in totals:
            totals[key] += int(grid.get(key) or 0)
    summary = payload.get("summary") or {}
    for key, expected in totals.items():
        if summary.get(key) != expected:
            problems.append(
                f"summary.{key}={summary.get(key)!r} disagrees with "
                f"per-grid total {expected}"
            )
    for index, driver in enumerate(payload.get("drivers") or []):
        for key in ("kind", "name", "probes", "probe_count"):
            if key not in driver:
                problems.append(f"driver #{index} is missing {key!r}")
        probes = driver.get("probes")
        if probes is not None and driver.get("probe_count") != len(probes):
            problems.append(
                f"driver #{index} probe_count disagrees with its probes"
            )
    fits = payload.get("fits")
    if fits is not None and not isinstance(fits, Mapping):
        problems.append("'fits' must be a mapping")
    for name, fit in (fits or {}).items():
        for key in ("grid", "metric", "model", "constant", "points"):
            if key not in fit:
                problems.append(f"fit {name!r} is missing {key!r}")
    if problems:
        raise ValueError(
            "invalid campaign report: " + "; ".join(problems)
        )
    return dict(payload)


def write_report(
    payload: Mapping[str, Any], path: Union[str, Path]
) -> Path:
    """Write the report JSON with stable formatting (byte-reproducible)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate a report artifact."""
    return validate_campaign_report(json.loads(Path(path).read_text()))


def render_report(payload: Mapping[str, Any]) -> str:
    """Render a report payload as a human-readable text block."""
    summary = payload["summary"]
    lines = [
        f"campaign {payload['campaign']!r}"
        + (f" — {payload['description']}" if payload.get("description") else ""),
        f"spec hash {payload['spec_hash'][:12]}  "
        f"{summary['cells']} cells, {summary['ok']} ok, "
        f"{summary['failed']} failed, "
        f"{summary['violations']} invariant violations",
    ]
    for name, grid in payload["grids"].items():
        lines.append(
            f"  grid {name:<16} {grid['cells']:>4} cells  "
            f"{grid['ok']:>4} ok  {grid['failed']:>3} failed  "
            f"{grid['violations']:>3} violations  "
            f"key {grid['grid_key'][:12]}"
        )
    for driver in payload.get("drivers") or []:
        if driver["kind"] == "bisect":
            found = driver.get("crossover")
            outcome = (
                f"crossover at n={found}" if found is not None
                else "no crossover in range"
            )
            lines.append(
                f"  bisect {driver['name']!r}: {outcome} "
                f"({driver['probe_count']} probes, budget "
                f"{driver.get('budget')}; {driver.get('predicate')})"
            )
            for probe in driver["probes"]:
                lines.append(
                    f"    n={probe['n']:>6}  left {probe['left']:>10.2f}  "
                    f"right {probe['right']:>10.2f}  "
                    f"{'TRUE' if probe['verdict'] else 'false'}"
                )
        elif driver["kind"] == "threshold":
            threshold = driver.get("threshold")
            outcome = (
                f"breaks at {driver['fault']}:{threshold:g}"
                if threshold is not None
                else f"survived all {driver['fault']} rates"
            )
            lines.append(
                f"  threshold {driver['name']!r}: {outcome} "
                f"({driver['probe_count']} rates probed, "
                f"{driver['algorithm']}/{driver['family']}/n={driver['n']})"
            )
            for probe in driver["probes"]:
                lines.append(
                    f"    rate={probe['rate']:<7g} "
                    f"incorrect {probe['incorrect']}/{probe['cells']}  "
                    f"violations {probe['violations']}  "
                    f"outcomes {','.join(probe['outcomes'])}"
                )
        else:
            lines.append(
                f"  driver {driver['name']!r} (kind={driver['kind']}): "
                f"{driver['probe_count']} probes"
            )
    for name, fit in (payload.get("fits") or {}).items():
        lines.append(render_fit(name, fit))
    return "\n".join(lines)
