"""Campaign execution: one resumable ledger per campaign, three executors.

Everything a campaign measures — dense grid cells and adaptive driver
probes alike — flows through one *executor* into one append-only
:class:`~repro.orchestrator.store.RunStore` ledger at
``<root>/<campaign>/runs.jsonl``.  The ledger doubles as the resume
journal: :func:`run_campaign` always passes it as both ``store`` and
``resume`` to :func:`~repro.orchestrator.run_jobs`, so a campaign killed
mid-grid (even one that left a torn trailing JSONL line) re-runs exactly
the missing cells on the next invocation and nothing else.  Driver
probes resume the same way — drivers are deterministic, so a resumed
bisection proposes the same sizes and finds its measurements already in
the ledger.

Executors:

* :class:`LocalGridExecutor` — in-process :func:`run_jobs` with the
  shared ledger and an optional cross-campaign result cache;
* :class:`ServiceGridExecutor` — submits grids to a ``repro serve``
  daemon via :class:`repro.service.ServiceClient` (the ``--via-service``
  path) and mirrors the returned records into the local ledger so
  ``campaign report``/``resume`` work identically afterwards;
* :class:`StoreReplayExecutor` — never runs anything: it answers every
  grid from a finished ledger, which is how ``campaign report`` rebuilds
  a byte-identical report without touching a simulator.

The report lists records in canonical grid-expansion order regardless of
the executor or the grid section's execution ``order``, which is half of
the byte-identity story (the other half is
:func:`repro.campaigns.report.deterministic_record`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.orchestrator import (
    JobSpec,
    ResultCache,
    RunRecord,
    RunStore,
    grid_from_payload,
    run_jobs,
)

from .drivers import build_driver
from .report import build_report
from .spec import CampaignSpec, GridSection


class CampaignError(RuntimeError):
    """A campaign could not produce a complete report."""


class MissingRecordsError(CampaignError):
    """A replay executor found cells absent from the ledger."""

    def __init__(self, message: str, missing: Sequence[str]):
        super().__init__(message)
        #: Labels of the missing cells.
        self.missing = list(missing)


def campaign_root(root: Union[str, Path], name: str) -> Path:
    return Path(root) / name


def ledger_path(root: Union[str, Path], name: str) -> Path:
    return campaign_root(root, name) / "runs.jsonl"


def report_path(root: Union[str, Path], name: str) -> Path:
    return campaign_root(root, name) / "report.json"


class LocalGridExecutor:
    """Run grids in-process through the orchestrator pool."""

    def __init__(
        self,
        store: Union[RunStore, str, Path],
        cache: Optional[ResultCache] = None,
        workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
        log: Optional[Callable[[str], None]] = None,
    ):
        self.store = store if isinstance(store, RunStore) else RunStore(store)
        self.cache = cache
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.log = log or (lambda message: None)

    def _run(self, specs: Sequence[JobSpec], label: str) -> List[RunRecord]:
        report = run_jobs(
            specs,
            workers=self.workers,
            cache=self.cache,
            store=self.store,
            resume=self.store,
            timeout=self.timeout,
            retries=self.retries,
        )
        self.log(
            f"{label}: {report.total} cells "
            f"({report.executed} executed, {report.cached} cached, "
            f"{report.resumed} resumed, {report.failed} failed)"
        )
        return list(report.records)

    def run_section(
        self, section: GridSection, campaign: str
    ) -> List[RunRecord]:
        specs = section.specs()
        ordered = section.execution_order(specs, campaign)
        return self._run(ordered, f"grid {section.name}")

    def run_grid(
        self, payload: Mapping[str, Any], label: str
    ) -> List[RunRecord]:
        return self._run(grid_from_payload(payload), label)


class ServiceGridExecutor:
    """Run grids through a ``repro serve`` daemon (``--via-service``).

    Each grid becomes one ``POST /jobs`` submission; identical in-flight
    grids coalesce server-side and the daemon's own cache/store serve
    warm cells.  Returned records are mirrored into the campaign's local
    ledger (skipping keys already present) so later ``resume``/``report``
    invocations work offline.
    """

    def __init__(
        self,
        client: Any,
        store: Union[RunStore, str, Path],
        timeout: Optional[float] = None,
        log: Optional[Callable[[str], None]] = None,
    ):
        self.client = client
        self.store = store if isinstance(store, RunStore) else RunStore(store)
        self.timeout = timeout
        self.log = log or (lambda message: None)

    def _run_payload(
        self, payload: Mapping[str, Any], label: str
    ) -> List[RunRecord]:
        job = self.client.submit(dict(payload))["job"]
        self.client.wait(job, timeout_s=self.timeout)
        result = self.client.fetch(job)
        records = [
            RunRecord.from_dict(record) for record in result["records"]
        ]
        known = set(self.store.latest_by_key())
        for record in records:
            if record.key not in known:
                self.store.append(record)
        self.log(f"{label}: {len(records)} cells via service job {job}")
        return records

    def run_section(
        self, section: GridSection, campaign: str
    ) -> List[RunRecord]:
        # Execution ordering is the daemon's concern; submit the payload.
        return self._run_payload(section.payload, f"grid {section.name}")

    def run_grid(
        self, payload: Mapping[str, Any], label: str
    ) -> List[RunRecord]:
        return self._run_payload(payload, label)


class StoreReplayExecutor:
    """Answer every grid from a finished ledger; never run a simulation.

    Raises :class:`MissingRecordsError` naming the absent cells if the
    ledger is incomplete — the caller should suggest ``campaign resume``.
    """

    def __init__(self, store: Union[RunStore, str, Path]):
        self.store = store if isinstance(store, RunStore) else RunStore(store)
        self._latest = self.store.latest_by_key()

    def _lookup(self, specs: Sequence[JobSpec], label: str) -> List[RunRecord]:
        missing = [
            spec.label() for spec in specs if spec.key not in self._latest
        ]
        if missing:
            raise MissingRecordsError(
                f"{label}: ledger {self.store.path} is missing "
                f"{len(missing)}/{len(specs)} cells (first: {missing[0]}); "
                f"run 'campaign resume' to fill them in",
                missing,
            )
        return [self._latest[spec.key] for spec in specs]

    def run_section(
        self, section: GridSection, campaign: str
    ) -> List[RunRecord]:
        return self._lookup(section.specs(), f"grid {section.name}")

    def run_grid(
        self, payload: Mapping[str, Any], label: str
    ) -> List[RunRecord]:
        return self._lookup(grid_from_payload(payload), label)


def run_campaign(
    spec: CampaignSpec,
    executor: Any,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Execute a campaign end to end; returns the report payload.

    Grid sections run first (in spec order, each in its declared
    execution order), then the adaptive drivers, then the report is
    assembled — records re-sorted into canonical expansion order and the
    spec's fits computed over them.  Works identically with every
    executor, which is what makes ``run``, ``resume``, and ``report``
    the same code path.
    """
    log = log or (lambda message: None)
    grid_records: Dict[str, List[RunRecord]] = {}
    for section in spec.grids:
        records = executor.run_section(section, spec.name)
        by_key = {record.key: record for record in records}
        # Canonical expansion order for the report, independent of the
        # execution order the section requested.
        grid_records[section.name] = [
            by_key[job.key] for job in section.specs()
        ]

    def driver_grid(
        payload: Mapping[str, Any], label: str
    ) -> List[Dict[str, Any]]:
        return [
            record.metrics
            for record in executor.run_grid(payload, label)
            if record.metrics is not None
        ]

    driver_results: List[Dict[str, Any]] = []
    for config in spec.drivers:
        driver = build_driver(config, source=spec.source)
        log(f"driver {driver.name} ({driver.kind}) starting")
        result = driver.run(driver_grid)
        driver_results.append(result)
        log(f"driver {driver.name} done after {result['probe_count']} probes")

    return build_report(spec, grid_records, driver_results)
