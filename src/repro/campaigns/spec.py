"""Declarative campaign specs: TOML/JSON files compiled to JobSpec grids.

A campaign is one small spec file describing everything an experiment
needs — dense grids over the orchestrator's axes, adaptive drivers that
search for crossover points, and statistical fits — so "reproduce the
paper's curves" becomes one resumable command instead of a hand-rolled
script.

The grid sections reuse the orchestrator's grid-payload schema verbatim
(:data:`repro.orchestrator.jobs.GRID_PAYLOAD_KEYS`): a campaign grid
compiles through the same :func:`~repro.orchestrator.grid_from_payload`
/ :func:`~repro.orchestrator.expand_grid` pipeline every other front
door uses, so cells are content-hashed identically and an identical cell
across campaigns, batches, and service submissions costs one simulation.

Spec grammar (TOML shown; the JSON form is isomorphic)::

    [campaign]
    name = "crossover"
    description = "..."

    [[grids]]
    name = "mst-curve"
    algorithms = ["randomized"]
    families = ["gnp"]
    sizes = {base = 16, doublings = 4}   # derived axis: 16,32,...,256
    seeds = 5                            # or an explicit list
    engine = "array"                     # any grid-payload key works
    order = "default"                    # or "reversed" / "shuffled"

    [[drivers]]
    kind = "bisect"                      # see repro.campaigns.drivers
    ...

    [[fits]]
    name = "mst-awake-vs-logn"
    grid = "mst-curve"
    metric = "max_awake"
    model = "log"                        # any repro.analysis MODELS key
    resamples = 200
"""

from __future__ import annotations

import hashlib
import json
import random
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.complexity import MODELS
from repro.orchestrator import JobSpec, grid_from_payload
from repro.orchestrator.jobs import GRID_PAYLOAD_KEYS, canonical_json

#: Top-level sections a campaign spec may contain.
CAMPAIGN_SECTIONS = ("campaign", "grids", "drivers", "fits")

#: Execution orderings a grid section may request.  Ordering affects the
#: order cells are *executed* in, never their hashes or the report (the
#: report always lists records in canonical expansion order).
GRID_ORDERS = ("default", "reversed", "shuffled")

#: Grid-section keys beyond the shared orchestrator grid payload.
GRID_EXTRA_KEYS = ("name", "order", "repeats")

#: Fit-section keys.
FIT_KEYS = (
    "name", "grid", "metric", "model", "algorithm", "resamples",
    "confidence", "seed",
)


class CampaignSpecError(ValueError):
    """A malformed campaign spec; the message names the spec file."""


def _context(source: Optional[str]) -> str:
    return f" (campaign spec {source})" if source else ""


def _require_keys(
    section: Mapping[str, Any],
    allowed: Sequence[str],
    where: str,
    source: Optional[str],
) -> None:
    unknown = set(section) - set(allowed)
    if unknown:
        raise CampaignSpecError(
            f"unknown keys {sorted(unknown)} in {where}{_context(source)}; "
            f"allowed: {sorted(allowed)}"
        )


def _derived_sizes(
    sizes: Mapping[str, Any], where: str, source: Optional[str]
) -> List[int]:
    """Expand a derived size axis ``{base, doublings, factor}``.

    ``base`` is the smallest size; ``doublings`` counts how many further
    sizes follow, each the previous multiplied by ``factor`` (default 2).
    """
    _require_keys(sizes, ("base", "doublings", "factor"), where, source)
    try:
        base = int(sizes["base"])
        doublings = int(sizes["doublings"])
    except (KeyError, TypeError, ValueError):
        raise CampaignSpecError(
            f"derived sizes need integer 'base' and 'doublings' in "
            f"{where}{_context(source)}"
        ) from None
    factor = int(sizes.get("factor", 2))
    if base < 2 or doublings < 0 or factor < 2:
        raise CampaignSpecError(
            f"derived sizes need base >= 2, doublings >= 0, factor >= 2 "
            f"in {where}{_context(source)}"
        )
    return [base * factor**step for step in range(doublings + 1)]


@dataclass(frozen=True)
class GridSection:
    """One named dense grid of a campaign (a grid payload + ordering)."""

    name: str
    #: The orchestrator grid payload (GRID_PAYLOAD_KEYS subset).
    payload: Mapping[str, Any]
    order: str = "default"

    def specs(self) -> List[JobSpec]:
        """Compile to JobSpecs in canonical expansion order."""
        return grid_from_payload(self.payload)

    def execution_order(self, specs: Sequence[JobSpec], campaign: str) -> List[JobSpec]:
        """Reorder ``specs`` for execution per the section's ``order``.

        The shuffle is seeded from the campaign and grid names, so an
        interrupted shuffled campaign resumes in the same order.
        """
        ordered = list(specs)
        if self.order == "reversed":
            ordered.reverse()
        elif self.order == "shuffled":
            random.Random(f"{campaign}/{self.name}/order").shuffle(ordered)
        return ordered

    def to_payload(self) -> Dict[str, Any]:
        section: Dict[str, Any] = {"name": self.name, **dict(self.payload)}
        if self.order != "default":
            section["order"] = self.order
        return section


@dataclass(frozen=True)
class FitSection:
    """One statistical fit over a named grid's records."""

    name: str
    grid: str
    metric: str = "max_awake"
    model: str = "log"
    algorithm: Optional[str] = None
    resamples: int = 200
    confidence: float = 0.95
    seed: int = 0

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "grid": self.grid,
            "metric": self.metric,
            "model": self.model,
            "resamples": self.resamples,
            "confidence": self.confidence,
            "seed": self.seed,
        }
        if self.algorithm is not None:
            payload["algorithm"] = self.algorithm
        return payload


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign: grids + drivers + fits, content-hashable."""

    name: str
    description: str = ""
    grids: Tuple[GridSection, ...] = field(default_factory=tuple)
    #: Raw driver configs; :func:`repro.campaigns.drivers.build_driver`
    #: turns them into driver instances at run time (they are validated
    #: eagerly at load time).
    drivers: Tuple[Mapping[str, Any], ...] = field(default_factory=tuple)
    fits: Tuple[FitSection, ...] = field(default_factory=tuple)
    #: Where the spec was loaded from (context for error messages and
    #: the report); not part of the content hash.
    source: Optional[str] = None

    # -- loading -------------------------------------------------------

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Load and validate a ``.toml`` or ``.json`` campaign spec."""
        path = Path(path)
        try:
            if path.suffix == ".toml":
                with open(path, "rb") as handle:
                    payload = tomllib.load(handle)
            else:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
        except OSError as error:
            raise CampaignSpecError(
                f"cannot read campaign spec {path}: {error}"
            ) from error
        except (tomllib.TOMLDecodeError, json.JSONDecodeError) as error:
            raise CampaignSpecError(
                f"cannot parse campaign spec {path}: {error}"
            ) from error
        return cls.from_payload(payload, source=str(path))

    @classmethod
    def from_payload(
        cls, payload: Mapping[str, Any], source: Optional[str] = None
    ) -> "CampaignSpec":
        """Validate a parsed spec payload (the TOML/JSON document)."""
        _require_keys(payload, CAMPAIGN_SECTIONS, "campaign spec", source)
        header = payload.get("campaign") or {}
        _require_keys(
            header, ("name", "description"), "[campaign]", source
        )
        name = header.get("name")
        if not isinstance(name, str) or not name:
            raise CampaignSpecError(
                f"[campaign] needs a non-empty string 'name'"
                f"{_context(source)}"
            )
        grids = tuple(
            cls._parse_grid(section, index, source)
            for index, section in enumerate(payload.get("grids") or [])
        )
        if not grids:
            raise CampaignSpecError(
                f"campaign {name!r} declares no [[grids]] section"
                f"{_context(source)}"
            )
        seen: set = set()
        for grid in grids:
            if grid.name in seen:
                raise CampaignSpecError(
                    f"duplicate grid name {grid.name!r}{_context(source)}"
                )
            seen.add(grid.name)
        drivers = tuple(
            dict(section) for section in payload.get("drivers") or []
        )
        fits = tuple(
            cls._parse_fit(section, index, {g.name for g in grids}, source)
            for index, section in enumerate(payload.get("fits") or [])
        )
        spec = cls(
            name=name,
            description=str(header.get("description") or ""),
            grids=grids,
            drivers=drivers,
            fits=fits,
            source=source,
        )
        spec.validate()
        return spec

    @staticmethod
    def _parse_grid(
        section: Mapping[str, Any], index: int, source: Optional[str]
    ) -> GridSection:
        where = f"[[grids]] #{index}"
        if not isinstance(section, Mapping):
            raise CampaignSpecError(
                f"{where} must be a table{_context(source)}"
            )
        _require_keys(
            section,
            tuple(GRID_PAYLOAD_KEYS) + GRID_EXTRA_KEYS,
            where,
            source,
        )
        grid_name = section.get("name")
        if not isinstance(grid_name, str) or not grid_name:
            raise CampaignSpecError(
                f"{where} needs a non-empty string 'name'{_context(source)}"
            )
        where = f"grid {grid_name!r}"
        payload = {
            key: section[key] for key in GRID_PAYLOAD_KEYS if key in section
        }
        sizes = payload.get("sizes")
        if isinstance(sizes, Mapping):
            payload["sizes"] = _derived_sizes(sizes, where, source)
        if "repeats" in section:
            if "seeds" in payload:
                raise CampaignSpecError(
                    f"{where} sets both 'seeds' and 'repeats'; pick one"
                    f"{_context(source)}"
                )
            payload["seeds"] = int(section["repeats"])
        order = section.get("order", "default")
        if order not in GRID_ORDERS:
            raise CampaignSpecError(
                f"{where} has unknown order {order!r}; choose from "
                f"{list(GRID_ORDERS)}{_context(source)}"
            )
        # Empty axes are rejected eagerly, with the axis name and spec
        # path in the message (expand_grid would catch them later, but
        # without the file context).
        for axis in ("algorithms", "families", "sizes"):
            if axis in payload and len(payload[axis]) == 0:
                raise CampaignSpecError(
                    f"empty grid axis {axis!r} in {where}{_context(source)}"
                )
        if payload.get("faults") is not None and len(payload["faults"]) == 0:
            raise CampaignSpecError(
                f"empty grid axis 'faults' in {where}{_context(source)}"
            )
        seeds = payload.get("seeds")
        if isinstance(seeds, list) and not seeds:
            raise CampaignSpecError(
                f"empty grid axis 'seeds' in {where}{_context(source)}"
            )
        return GridSection(
            name=grid_name, payload=payload, order=order
        )

    @staticmethod
    def _parse_fit(
        section: Mapping[str, Any],
        index: int,
        grid_names: set,
        source: Optional[str],
    ) -> FitSection:
        where = f"[[fits]] #{index}"
        _require_keys(section, FIT_KEYS, where, source)
        fit_name = section.get("name")
        if not isinstance(fit_name, str) or not fit_name:
            raise CampaignSpecError(
                f"{where} needs a non-empty string 'name'{_context(source)}"
            )
        grid = section.get("grid")
        if grid not in grid_names:
            raise CampaignSpecError(
                f"fit {fit_name!r} references unknown grid {grid!r}; "
                f"declared grids: {sorted(grid_names)}{_context(source)}"
            )
        model = section.get("model", "log")
        if model not in MODELS:
            raise CampaignSpecError(
                f"fit {fit_name!r} has unknown model {model!r}; choose "
                f"from {sorted(MODELS)}{_context(source)}"
            )
        return FitSection(
            name=fit_name,
            grid=grid,
            metric=str(section.get("metric", "max_awake")),
            model=model,
            algorithm=section.get("algorithm"),
            resamples=int(section.get("resamples", 200)),
            confidence=float(section.get("confidence", 0.95)),
            seed=int(section.get("seed", 0)),
        )

    # -- validation / compilation --------------------------------------

    def validate(self) -> None:
        """Validate everything that needs the full registry.

        Grid payloads compile (axis values resolve against the
        orchestrator registries) and driver configs build.  Raises
        :class:`CampaignSpecError` with the spec path in the message.
        """
        from .drivers import build_driver

        for grid in self.grids:
            try:
                grid.specs()
            except ValueError as error:
                raise CampaignSpecError(
                    f"grid {grid.name!r}: {error}{_context(self.source)}"
                ) from error
        for config in self.drivers:
            build_driver(config, source=self.source)

    def compile(self) -> Dict[str, List[JobSpec]]:
        """Compile every grid section to JobSpecs (canonical order)."""
        return {grid.name: grid.specs() for grid in self.grids}

    # -- hashing / serialisation ---------------------------------------

    def payload(self) -> Dict[str, Any]:
        """The canonical content of the spec, as plain JSON types."""
        return {
            "campaign": {"name": self.name, "description": self.description},
            "grids": [grid.to_payload() for grid in self.grids],
            "drivers": [dict(config) for config in self.drivers],
            "fits": [fit.to_payload() for fit in self.fits],
        }

    @property
    def spec_hash(self) -> str:
        """Stable content hash of the spec (not the file bytes — the
        parsed content, so TOML and JSON spellings of the same campaign
        hash identically)."""
        return hashlib.sha256(
            canonical_json(self.payload()).encode()
        ).hexdigest()
