"""Command-line interface: ``python -m repro.cli`` (or ``repro-mst``).

Subcommands
-----------
``run``
    Run one algorithm on a generated graph and print the metrics the paper
    is about (awake complexity, round complexity, their product,
    correctness).  ``--json`` emits one machine-readable object instead.
``batch``
    Run an (algorithm × family × n × seed) grid through the orchestrator:
    worker-pool parallelism (``--workers``), a content-addressed result
    cache (re-running a grid only executes new cells), an append-only
    JSONL run store, and ``--resume`` to finish an interrupted grid.
``campaign``
    Run a declarative campaign spec (:mod:`repro.campaigns`): dense
    grids, adaptive drivers (bisection crossover search, fault-rate
    threshold scan), and statistical fits with bootstrap bands, all
    into one resumable ledger and a byte-reproducible
    ``repro-campaign/1`` report.  ``campaign resume`` finishes an
    interrupted run; ``campaign report`` rebuilds the report from the
    ledger without running anything.
``serve``
    Run the simulation service daemon: a stdlib HTTP job API
    (``POST /jobs`` / ``GET /jobs/<hash>`` / ``/result`` / ``/healthz``
    / ``/stats``) over a persistent worker pool that drains grid
    submissions through the orchestrator.  Identical submissions are
    coalesced onto one run; overlapping grids share cells via the
    result cache.
``submit``
    Submit a grid (same axes as ``batch``) to a running daemon; with
    ``--wait`` streams progress lines and prints the fetched result.
``trace``
    Run one algorithm with span observability enabled, export a Chrome
    trace-event JSON (open in Perfetto or chrome://tracing), and print
    the per-phase × per-block awake breakdown — the paper's "9 blocks ×
    O(1) awake rounds" decomposition, measured.
``check``
    Run one algorithm with the paper's invariant monitors attached
    (:mod:`repro.invariants`) and report which lemma-level invariants
    held; with ``--faults`` the report names the *first* invariant the
    injected faults broke.  ``--sweep`` runs a small perfect-channel
    grid and asserts that no monitor fires anywhere.
``compare``
    Run every registered problem bundle (MST's O(log n)-awake protocol,
    MIS's O(log log n)-awake protocol) over the same grid and print the
    normalized awake-complexity table — the problem-zoo artifact.
``table1``
    Regenerate Table 1 across sizes and print the fitted constants.
``experiments``
    Run the full experiment suite (delegates to
    :mod:`repro.analysis.experiments`).
``walkthrough``
    Print the Figures 2-5 merging walk-through.

Examples::

    python -m repro.cli run --algorithm randomized --graph ring --n 64
    python -m repro.cli run --problem mis --n 64 --monitors all
    python -m repro.cli compare --sizes 64 256 --seeds 2
    python -m repro.cli check --algorithm randomized --n 24 \
        --faults drop:0.02 --json
    python -m repro.cli check --sweep --sizes 8 16 --seed-range 2
    python -m repro.cli trace --algorithm randomized --n 64 \
        --output trace.json
    python -m repro.cli run --algorithm deterministic --coloring log-star \
        --graph gnp --n 32 --id-range 512
    python -m repro.cli table1 --sizes 16 32 64
    python -m repro.cli batch --algorithms randomized deterministic \
        --families ring gnp --sizes 16 32 --seeds 3 --workers 4
    python -m repro.cli campaign run examples/campaigns/crossover.toml \
        --workers 4
    python -m repro.cli serve --port 8732 --root /tmp/repro-service
    python -m repro.cli submit --url http://127.0.0.1:8732 \
        --families ring --sizes 16 --seeds 3 --wait
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Optional, Sequence

from repro.baselines import run_sleeping_spanning_tree, run_traditional_ghs
from repro.core import run_deterministic_mst, run_randomized_mst
from repro.orchestrator import GRAPH_FAMILIES


def _run_algorithm(args: argparse.Namespace, **sim_kwargs):
    """Shared graph-build + runner dispatch for ``run`` and ``trace``."""
    graph = GRAPH_FAMILIES[args.graph](args.n, args.seed, args.id_range)
    return graph, _dispatch_algorithm(args, graph, **sim_kwargs)


def _effective_problem(args: argparse.Namespace) -> str:
    """Resolve the problem axis: ``--problem``, or ``--algorithm mis``.

    ``--algorithm mis`` implies ``--problem mis`` so the short spelling
    works; everything else defaults to the MST problem the CLI has always
    dispatched.
    """
    if getattr(args, "algorithm", None) == "mis":
        return "mis"
    return getattr(args, "problem", "mst") or "mst"


def _dispatch_algorithm(args: argparse.Namespace, graph, **sim_kwargs):
    if _effective_problem(args) == "mis":
        from repro.problems import run_sleeping_mis

        mis_engine = getattr(args, "engine", None)
        if mis_engine is not None and mis_engine != "coroutine":
            # Routed through the runner so the rejection names the
            # Sleeping-MIS feature and the coroutine fallback.
            sim_kwargs["engine"] = mis_engine
        return run_sleeping_mis(graph, seed=args.seed, **sim_kwargs)
    engine = getattr(args, "engine", None)
    if engine is not None and engine != "coroutine":
        if args.algorithm not in ("randomized", "deterministic"):
            from repro.sim.errors import UnsupportedFeatureError

            raise UnsupportedFeatureError(
                args.algorithm, "only Randomized-MST is vectorized"
            )
        sim_kwargs["engine"] = engine
    if args.algorithm == "randomized":
        result = run_randomized_mst(
            graph,
            seed=args.seed,
            termination=getattr(args, "termination", "adaptive"),
            **sim_kwargs,
        )
    elif args.algorithm == "deterministic":
        result = run_deterministic_mst(
            graph,
            coloring=getattr(args, "coloring", "fast-awake"),
            **sim_kwargs,
        )
    elif args.algorithm == "traditional":
        result = run_traditional_ghs(graph, seed=args.seed, **sim_kwargs)
    else:
        result = run_sleeping_spanning_tree(graph, seed=args.seed, **sim_kwargs)
    return result


def _faults_sim_kwargs(args: argparse.Namespace, sim_kwargs: dict):
    """Resolve ``--faults`` into sim kwargs; returns the normalized spec.

    Raises ``ValueError`` on a bad spec.  The perfect channel resolves to
    ``None`` and leaves ``sim_kwargs`` untouched.
    """
    from repro.orchestrator import channel_from_spec, resolve_channel_spec
    from repro.orchestrator.jobs import FAULT_MAX_AWAKE_EVENTS

    faults = resolve_channel_spec(getattr(args, "faults", None))
    if faults is not None:
        sim_kwargs["channel"] = channel_from_spec(faults)
        sim_kwargs.setdefault("max_awake_events", FAULT_MAX_AWAKE_EVENTS)
    return faults


def _monitors_sim_kwargs(args: argparse.Namespace, sim_kwargs: dict):
    """Resolve ``--monitors`` into sim kwargs; returns the MonitorSet.

    Raises ``ValueError`` on unknown monitor names.  ``None`` / ``off``
    leaves ``sim_kwargs`` untouched (the engine fast path stays usable).
    """
    spec = getattr(args, "monitors", None)
    if spec is None:
        return None
    from repro.invariants import build_monitor_set

    monitor_set = build_monitor_set(spec, problem=_effective_problem(args))
    if monitor_set is not None:
        sim_kwargs["monitors"] = monitor_set
    return monitor_set


def _diagnosis_extras(diagnosis, monitor_set) -> dict:
    """Diagnosis refinements shared by the run/check fault reports."""
    extras = {}
    if diagnosis.missing_nodes:
        extras["missing_nodes"] = list(diagnosis.missing_nodes)
    if diagnosis.crashed_nodes:
        extras["crashed_nodes"] = list(diagnosis.crashed_nodes)
    if monitor_set is not None:
        extras["first_invariant"] = diagnosis.first_invariant
        extras["violations"] = diagnosis.violations
    return extras


def _print_diagnosis_extras(extras: dict) -> None:
    if "missing_nodes" in extras:
        print(f"missing outputs  : {extras['missing_nodes']}")
    if "crashed_nodes" in extras:
        print(f"crashed nodes    : {extras['crashed_nodes']}")
    if "first_invariant" in extras:
        first = extras["first_invariant"] or "-"
        print(f"violations       : {extras['violations']} (first: {first})")


def _cmd_run(args: argparse.Namespace) -> int:
    sim_kwargs = {"trace": True} if args.save_trace else {}
    try:
        faults = _faults_sim_kwargs(args, sim_kwargs)
        monitor_set = _monitors_sim_kwargs(args, sim_kwargs)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    if getattr(args, "engine", None) == "array" and (
        faults is not None or monitor_set is not None
    ):
        # Fail before running anything: a fault/monitor cell on the array
        # engine would otherwise be misdiagnosed as a protocol crash.
        from repro.sim.errors import UnsupportedFeatureError

        feature = "fault specs" if faults is not None else "invariant monitors"
        print(str(UnsupportedFeatureError(feature)), file=sys.stderr)
        return 2

    outcome = None
    diagnosis = None
    if faults is not None and args.algorithm in (
        "randomized", "deterministic", "traditional"
    ):
        # A fault-injected MST run may crash, hang, or silently produce a
        # wrong tree; classify instead of tracebacking.
        from repro.graphs import verify_or_diagnose

        graph = GRAPH_FAMILIES[args.graph](args.n, args.seed, args.id_range)
        diagnosis = verify_or_diagnose(
            graph,
            lambda: _dispatch_algorithm(args, graph, **sim_kwargs),
            monitors=monitor_set,
        )
        outcome = diagnosis.outcome
        if not diagnosis.completed:
            extras = _diagnosis_extras(diagnosis, monitor_set)
            if args.json:
                payload = {
                    "algorithm": args.algorithm,
                    "faults": faults,
                    "outcome": outcome,
                    "error": diagnosis.error,
                    "correct": False,
                }
                payload.update(extras)
                print(json.dumps(payload, sort_keys=True))
            else:
                print(f"faults           : {faults}")
                print(f"outcome          : {outcome}")
                print(f"error            : {diagnosis.error}")
                _print_diagnosis_extras(extras)
            return 1
        result = diagnosis.result
    else:
        from repro.sim.errors import UnsupportedFeatureError

        try:
            graph, result = _run_algorithm(args, **sim_kwargs)
        except UnsupportedFeatureError as error:
            print(str(error), file=sys.stderr)
            return 2

    trace_events = None
    if args.save_trace:
        from repro.sim import save_trace

        trace_events = save_trace(result.simulation, args.save_trace)

    metrics = result.metrics
    problem = _effective_problem(args)
    if problem != "mst":
        from repro.problems import problem_bundle

        ok = result.is_correct(graph)
        check = problem_bundle(problem).check_label
    elif args.algorithm in ("randomized", "deterministic", "traditional"):
        ok = result.is_correct_mst(graph)
        check = "correct MST"
    else:
        from repro.graphs import is_spanning_tree

        ok = is_spanning_tree(graph, result.mst_weights)
        check = "spanning tree"

    monitor_report = monitor_set.report if monitor_set is not None else None
    monitors_ok = monitor_report.ok() if monitor_report is not None else True

    if args.json:
        payload = {
            "algorithm": result.algorithm,
            "graph": {
                "family": args.graph,
                "n": graph.n,
                "m": graph.m,
                "max_id": graph.max_id,
                "seed": args.seed,
            },
            "phases": result.phases,
            "metrics": metrics.summary(),
            "correct": ok,
        }
        if problem != "mst":
            payload["problem"] = problem
        if faults is not None:
            payload["faults"] = faults
            payload["outcome"] = outcome
            if diagnosis is not None:
                payload.update(_diagnosis_extras(diagnosis, monitor_set))
        if monitor_report is not None:
            payload["monitors"] = monitor_report.to_dict()
        if trace_events is not None:
            payload["trace"] = {"events": trace_events, "path": args.save_trace}
        print(json.dumps(payload, sort_keys=True))
        return 0 if ok and monitors_ok else 1

    if trace_events is not None:
        print(f"trace            : {trace_events} events -> {args.save_trace}")
    print(f"algorithm        : {result.algorithm}")
    if faults is not None:
        print(f"faults           : {faults}")
        if outcome is not None:
            print(f"outcome          : {outcome}")
        fault_counts = metrics.fault_summary()
        print(
            "fault counters   : "
            + " ".join(f"{key}={value}" for key, value in fault_counts.items())
        )
        if diagnosis is not None and diagnosis.crashed_nodes:
            print(f"crashed nodes    : {list(diagnosis.crashed_nodes)}")
    print(f"graph            : {args.graph} n={graph.n} m={graph.m} N={graph.max_id}")
    print(f"phases           : {result.phases}")
    print(f"awake complexity : {metrics.max_awake} "
          f"({metrics.max_awake / math.log2(max(2, graph.n)):.1f} x log2 n)")
    print(f"mean awake       : {metrics.mean_awake:.1f}")
    print(f"round complexity : {metrics.rounds}")
    print(f"awake x rounds   : {metrics.awake_round_product}")
    print(f"messages         : {metrics.messages_delivered} delivered / "
          f"{metrics.messages_lost} lost")
    print(f"max message bits : {metrics.max_message_bits}")
    if monitor_report is not None:
        first = monitor_report.first_invariant or "-"
        print(
            f"invariants       : {len(monitor_report)} violation(s) in "
            f"{monitor_report.checks_run} checks (first: {first})"
        )
        for violation in monitor_report.violations[:5]:
            print(f"  VIOLATION {violation}")
    print(f"{check:<17}: {ok}")
    return 0 if ok and monitors_ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        check_awake_identity,
        render_block_table,
        span_log_lines,
        write_chrome_trace,
        write_ndjson,
    )

    sim_kwargs = {"observe": True, "trace": True}
    try:
        faults = _faults_sim_kwargs(args, sim_kwargs)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    if faults is not None and args.algorithm in (
        "randomized", "deterministic", "traditional"
    ):
        # A faulted run may die (that is the point of injecting faults);
        # report the diagnosis cleanly instead of an unhandled traceback.
        from repro.graphs import verify_or_diagnose

        graph = GRAPH_FAMILIES[args.graph](args.n, args.seed, args.id_range)
        diagnosis = verify_or_diagnose(
            graph, lambda: _dispatch_algorithm(args, graph, **sim_kwargs)
        )
        if not diagnosis.completed:
            failure = {
                "faults": faults,
                "outcome": diagnosis.outcome,
                "error": diagnosis.error,
            }
            if args.json:
                print(json.dumps(failure, sort_keys=True))
            else:
                print(f"faults           : {faults}")
                print(f"outcome          : {diagnosis.outcome}")
                print(f"error            : {diagnosis.error}")
            return 1
        result = diagnosis.result
    else:
        graph, result = _run_algorithm(args, **sim_kwargs)
    spans = result.spans
    label = f"{result.algorithm} {args.graph} n={graph.n} seed={args.seed}"
    metadata = {
        "algorithm": result.algorithm,
        "family": args.graph,
        "n": graph.n,
        "seed": args.seed,
    }
    if faults is not None:
        metadata["faults"] = faults
    events = write_chrome_trace(
        args.output,
        spans=spans,
        trace=result.simulation.trace,
        label=label,
        metadata=metadata,
    )
    ndjson_lines = None
    if args.ndjson:
        ndjson_lines = write_ndjson(args.ndjson, span_log_lines(spans))

    mismatches = check_awake_identity(spans, result.metrics)
    identity_ok = not mismatches

    if args.json:
        payload = {
            "algorithm": result.algorithm,
            "graph": {
                "family": args.graph,
                "n": graph.n,
                "m": graph.m,
                "seed": args.seed,
            },
            "output": str(args.output),
            "events": events,
            "spans": len(spans),
            "identity_ok": identity_ok,
            "metrics": result.metrics.summary(),
        }
        if faults is not None:
            payload["faults"] = faults
        if ndjson_lines is not None:
            payload["ndjson"] = {"path": str(args.ndjson), "lines": ndjson_lines}
        print(json.dumps(payload, sort_keys=True))
        return 0 if identity_ok else 1

    print(f"algorithm        : {result.algorithm}")
    print(f"graph            : {args.graph} n={graph.n} m={graph.m}")
    print(f"chrome trace     : {events} events -> {args.output}")
    if ndjson_lines is not None:
        print(f"span ndjson      : {ndjson_lines} lines -> {args.ndjson}")
    print(f"spans            : {len(spans)} records")
    print(
        "awake identity   : "
        + ("ok (span sums == engine accounting)" if identity_ok
           else f"MISMATCH on nodes {sorted(mismatches)}")
    )
    print()
    print("per-block max awake rounds by phase:")
    print(render_block_table(spans))
    return 0 if identity_ok else 1


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.invariants import resolve_monitor_spec

    try:
        spec = resolve_monitor_spec(args.monitors)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if spec is None:
        print(
            "check needs at least one monitor (got --monitors off)",
            file=sys.stderr,
        )
        return 2
    if args.sweep:
        return _check_sweep(args, spec)
    return _check_single(args, spec)


def _emit_check_payload(args: argparse.Namespace, payload: dict) -> None:
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
    if args.json:
        print(json.dumps(payload, sort_keys=True))


def _check_single(args: argparse.Namespace, spec: str) -> int:
    """One monitored cell: run, diagnose, report what broke first.

    Exit code: on the perfect channel a violation (or a wrong tree) is a
    failure; under ``--faults`` the report itself is the product — broken
    invariants are the expected outcome, so the exit code only signals
    operational errors.
    """
    from repro.graphs import verify_or_diagnose
    from repro.invariants import build_monitor_set

    problem = _effective_problem(args)
    algorithm_label = args.algorithm
    if problem != "mst":
        from repro.problems import problem_bundle

        # --problem mis dispatches the bundle's protocol regardless of
        # --algorithm; report the canonical name it actually ran.
        algorithm_label = problem_bundle(problem).default_algorithm
    monitor_set = build_monitor_set(spec, problem=problem)
    sim_kwargs = {"monitors": monitor_set}
    try:
        faults = _faults_sim_kwargs(args, sim_kwargs)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    graph = GRAPH_FAMILIES[args.graph](args.n, args.seed, args.id_range)
    diagnosis = verify_or_diagnose(
        graph,
        lambda: _dispatch_algorithm(args, graph, **sim_kwargs),
        monitors=monitor_set,
    )
    report = monitor_set.report
    payload = {
        "algorithm": algorithm_label,
        "graph": {
            "family": args.graph,
            "n": graph.n,
            "m": graph.m,
            "max_id": graph.max_id,
            "seed": args.seed,
        },
        "faults": faults,
        "monitors": list(monitor_set.names),
        "outcome": diagnosis.outcome,
        **({} if problem == "mst" else {"problem": problem}),
        "error": diagnosis.error,
        "correct": diagnosis.outcome == "correct",
        "checks_run": report.checks_run,
        "violations": len(report),
        "first_invariant": report.first_invariant,
        "missing_nodes": list(diagnosis.missing_nodes),
        "crashed_nodes": list(diagnosis.crashed_nodes),
        "report": report.to_dict(),
    }
    _emit_check_payload(args, payload)
    perfect_ok = diagnosis.outcome == "correct" and report.ok()
    if not args.json:
        print(f"algorithm        : {algorithm_label}")
        print(
            f"graph            : {args.graph} n={graph.n} m={graph.m} "
            f"N={graph.max_id} seed={args.seed}"
        )
        print(f"monitors         : {','.join(monitor_set.names)}")
        if faults is not None:
            print(f"faults           : {faults}")
        print(f"outcome          : {diagnosis.outcome}")
        if diagnosis.error:
            print(f"error            : {diagnosis.error}")
        if diagnosis.missing_nodes:
            print(f"missing outputs  : {list(diagnosis.missing_nodes)}")
        if diagnosis.crashed_nodes:
            print(f"crashed nodes    : {list(diagnosis.crashed_nodes)}")
        print(f"checks run       : {report.checks_run}")
        first = report.first_invariant or "-"
        print(f"violations       : {len(report)} (first: {first})")
        for violation in report.violations[:10]:
            print(f"  VIOLATION {violation}")
        if report.incomplete_groups:
            print(
                f"incomplete groups: {len(report.incomplete_groups)} "
                "(probe groups cut short by the failure)"
            )
        if args.output:
            print(f"report json      : {args.output}")
    if faults is not None:
        return 0
    return 0 if perfect_ok else 1


def _check_sweep(args: argparse.Namespace, spec: str) -> int:
    """Perfect-channel seed sweep: assert no monitor fires anywhere.

    This is the CI smoke gate behind the monitors: every cell must be a
    correct MST, run a positive number of invariant checks, and record
    zero violations.
    """
    from repro.invariants import build_monitor_set

    problem = getattr(args, "problem", "mst") or "mst"
    algorithms = list(args.algorithms)
    if problem == "mis" and algorithms == ["randomized", "deterministic"]:
        # The MST default algorithm pair makes no sense on the MIS axis;
        # sweep the one MIS protocol unless the user picked explicitly.
        algorithms = ["mis"]
    cells = []
    failed = 0
    total_checks = 0
    total_violations = 0
    for family in args.families:
        for n in args.sizes:
            for seed in range(args.seed_range):
                for algorithm in algorithms:
                    cell_problem = "mis" if algorithm == "mis" else problem
                    monitor_set = build_monitor_set(spec, problem=cell_problem)
                    graph = GRAPH_FAMILIES[family](n, seed, None)
                    cell_args = argparse.Namespace(
                        algorithm=algorithm,
                        seed=seed,
                        termination="adaptive",
                        coloring=args.coloring,
                        problem=cell_problem,
                    )
                    result = _dispatch_algorithm(
                        cell_args, graph, monitors=monitor_set
                    )
                    report = monitor_set.finalize()
                    correct = result.is_correct(graph)
                    ok = correct and report.ok() and report.checks_run > 0
                    failed += 0 if ok else 1
                    total_checks += report.checks_run
                    total_violations += len(report)
                    cells.append(
                        {
                            "algorithm": algorithm,
                            "family": family,
                            "n": n,
                            "seed": seed,
                            "correct": correct,
                            "checks_run": report.checks_run,
                            "violations": len(report),
                            "first_invariant": report.first_invariant,
                            "ok": ok,
                        }
                    )
    payload = {
        "monitors": spec,
        "cells": cells,
        "total_checks": total_checks,
        "total_violations": total_violations,
        "failed": failed,
        "ok": failed == 0,
    }
    _emit_check_payload(args, payload)
    if not args.json:
        for cell in cells:
            marker = "ok" if cell["ok"] else "FAILED"
            first = cell["first_invariant"] or "-"
            print(
                f"{cell['algorithm']:<14} {cell['family']:<8} "
                f"n={cell['n']:<4} seed={cell['seed']:<3} "
                f"checks={cell['checks_run']:<4} "
                f"violations={cell['violations']} first={first} {marker}"
            )
        print(
            f"sweep: {len(cells)} cells, {total_checks} checks, "
            f"{total_violations} violation(s), {failed} failed"
        )
        if args.output:
            print(f"report json      : {args.output}")
    return 0 if failed == 0 else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    """Side-by-side awake-complexity table across the problem registry.

    Exit code: non-zero when any cell was wrong, any monitor fired, or —
    with both bundles on the grid — MIS's awake curve failed to grow
    slower than MST's (the acceptance criterion of the problem zoo).
    """
    from repro.analysis import (
        generate_problem_comparison,
        render_comparison,
        write_comparison,
    )

    try:
        payload = generate_problem_comparison(
            sizes=args.sizes,
            seeds=range(args.seeds),
            family=args.family,
            problems=args.problems,
            monitors=args.monitors,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.output:
        write_comparison(payload, args.output)
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        print(render_comparison(payload))
        if args.output:
            print(f"artifact json    : {args.output}")
    ok = payload.get("mis_grows_slower", True) and all(
        data["violations"] == 0
        and data["correct_cells"] == data["total_cells"]
        for data in payload["problems"].values()
    )
    return 0 if ok else 1


def _grid_payload(args: argparse.Namespace) -> dict:
    """Grid payload shared by ``batch`` and ``submit`` (and ``--spec``).

    The returned dict is the same JSON schema a ``--spec`` file and the
    service's ``POST /jobs`` body use, so a grid is expressible
    identically from flags, a file, or over HTTP.  Raises ``ValueError``
    on unknown spec-file keys.
    """
    grid = {
        "algorithms": args.algorithms,
        "families": args.families,
        "sizes": args.sizes,
        "seeds": args.seeds,
        "id_range_factor": args.id_range_factor,
        "options": {},
        "faults": args.faults,
        "monitors": args.monitors,
        "engine": getattr(args, "engine", None),
        "problem": getattr(args, "problem", None),
    }
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        unknown = set(loaded) - set(grid)
        if unknown:
            raise ValueError(f"unknown spec keys: {sorted(unknown)}")
        grid.update(loaded)
    return grid


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry
    from repro.orchestrator import (
        ProgressReporter,
        ResultCache,
        grid_from_payload,
        grid_key,
        run_jobs,
    )
    from repro.telemetry import trace_context

    try:
        specs = grid_from_payload(_grid_payload(args))
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    store_path = args.resume or args.store or f"batch-{grid_key(specs)[:8]}.jsonl"
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = ProgressReporter(
        total=len(specs),
        stream=None if args.quiet else sys.stderr,
        min_interval_s=1.0,
    )
    registry = MetricsRegistry()
    # One trace ID per batch invocation: every record's telemetry block,
    # worker log line, and span export from this run carries it.
    with trace_context() as trace_id:
        report = run_jobs(
            specs,
            workers=args.workers,
            cache=cache,
            store=store_path,
            resume=args.resume,
            timeout=args.timeout,
            retries=args.retries,
            progress=progress,
            registry=registry,
            trace_id=trace_id,
        )

    if args.json:
        print(
            json.dumps(
                {
                    "store": str(store_path),
                    "summary": report.summary(),
                    "records": [record.to_dict() for record in report.records],
                },
                sort_keys=True,
            )
        )
    else:
        print(f"grid      : {report.total} jobs -> {store_path}")
        print(f"executed  : {report.executed}")
        print(f"cached    : {report.cached}")
        print(f"resumed   : {report.resumed}")
        print(f"failed    : {report.failed}")
        throughput = (report.progress or {}).get("throughput_jobs_per_s", 0.0)
        print(f"elapsed   : {report.elapsed_s:.2f}s ({throughput:.1f} job/s)")
        for failure in report.failures()[:5]:
            spec = failure.spec
            print(
                f"  FAILED {spec['algorithm']}/{spec['family']}"
                f"/n={spec['n']}/seed={spec['seed']}: {failure.error}"
            )
    return 0 if report.failed == 0 else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.campaigns import (
        CampaignSpec,
        CampaignSpecError,
        LocalGridExecutor,
        MissingRecordsError,
        ServiceGridExecutor,
        StoreReplayExecutor,
        ledger_path,
        render_report,
        report_path,
        run_campaign,
        write_report,
    )
    from repro.orchestrator import ResultCache

    try:
        spec = CampaignSpec.load(args.spec)
    except CampaignSpecError as error:
        print(str(error), file=sys.stderr)
        return 2

    ledger = ledger_path(args.root, spec.name)
    log = (
        (lambda message: None)
        if args.quiet
        else (lambda message: print(message, file=sys.stderr))
    )
    if args.action == "report":
        # Replay-only: rebuild the report from the ledger, run nothing.
        executor = StoreReplayExecutor(ledger)
    elif args.via_service:
        from repro.service import ServiceClient

        executor = ServiceGridExecutor(
            ServiceClient(args.via_service),
            store=ledger,
            timeout=args.timeout,
            log=log,
        )
    else:
        cache = None if args.no_cache else ResultCache(args.cache_dir)
        executor = LocalGridExecutor(
            store=ledger,
            cache=cache,
            workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            log=log,
        )
    try:
        payload = run_campaign(spec, executor, log=log)
    except MissingRecordsError as error:
        print(str(error), file=sys.stderr)
        return 1

    output = Path(args.output) if args.output else report_path(args.root, spec.name)
    write_report(payload, output)
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        print(render_report(payload))
        print(f"report : {output}")
        print(f"ledger : {ledger}")
    return 0 if payload["summary"]["failed"] == 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging
    from pathlib import Path

    from repro.orchestrator import ResultCache
    from repro.service import JobQueue, build_server, serve_forever
    from repro.telemetry import configure_logging

    if args.log_level is not None:
        level = getattr(logging, args.log_level.upper())
    else:
        # --quiet keeps the old behaviour (no per-request chatter) by
        # raising the threshold above the INFO access records.
        level = logging.WARNING if args.quiet else logging.INFO
    configure_logging(
        json_logs=args.log_json, log_file=args.log_file, level=level
    )

    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or str(Path(args.root) / "cache")
        cache = ResultCache(cache_dir)
    queue = JobQueue(
        args.root,
        workers=args.workers,
        job_workers=args.job_workers,
        cache=cache,
        timeout=args.timeout,
        retries=args.retries,
    ).start()
    server = build_server(
        queue, host=args.host, port=args.port, quiet=args.quiet
    )
    host, port = server.server_address[:2]
    # One parseable line so scripts (and CI) can discover an ephemeral port.
    print(
        f"serving on http://{host}:{port} "
        f"(workers={queue.workers}, job_workers={queue.job_workers}, "
        f"root={queue.root})",
        flush=True,
    )
    serve_forever(server)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    try:
        grid = _grid_payload(args)
    except (OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    client = ServiceClient(args.url)
    try:
        submission = client.submit(grid)
    except ServiceError as error:
        print(str(error), file=sys.stderr)
        return 2
    job = submission["job"]

    if not args.wait:
        if args.json:
            print(json.dumps(submission, sort_keys=True))
        else:
            print(f"job       : {job}")
            print(f"status    : {submission['status']}")
            print(f"cells     : {submission['cells']}")
            print(f"coalesced : {submission['coalesced']}")
            print(f"poll with : repro-mst submit is async; GET {args.url}"
                  f"/jobs/{job}")
        return 0

    last_seen = {"done": -1, "status": None}

    def stream_progress(snapshot: dict) -> None:
        if args.quiet:
            return
        progress = snapshot.get("progress") or {}
        done = progress.get("done")
        status = snapshot.get("status")
        if done == last_seen["done"] and status == last_seen["status"]:
            return
        last_seen["done"] = done
        last_seen["status"] = status
        eta = progress.get("eta_s")
        eta_text = "?" if eta is None else f"{eta:.0f}s"
        print(
            f"[{done}/{progress.get('total')}] status={status} "
            f"ok={progress.get('ok')} failed={progress.get('failed')} "
            f"cached={progress.get('cached')} eta {eta_text}",
            file=sys.stderr,
        )

    try:
        client.wait(
            job,
            timeout_s=args.timeout,
            interval_s=args.interval,
            on_progress=stream_progress,
        )
        result = client.fetch(job)
    except (ServiceError, TimeoutError) as error:
        print(str(error), file=sys.stderr)
        return 2

    summary = result.get("summary") or {}
    if args.json:
        print(json.dumps(result, sort_keys=True))
    else:
        print(f"job       : {job}")
        print(f"status    : {result['status']}")
        if result.get("error"):
            print(f"error     : {result['error']}")
        print(f"total     : {summary.get('total', 0)}")
        print(f"executed  : {summary.get('executed', 0)}")
        print(f"cached    : {summary.get('cached', 0)}")
        print(f"resumed   : {summary.get('resumed', 0)}")
        print(f"failed    : {summary.get('failed', 0)}")
    ok = result["status"] == "done" and summary.get("failed", 0) == 0
    return 0 if ok else 1


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.telemetry.dashboard import run_top

    return run_top(
        args.url,
        interval_s=args.interval,
        once=args.once,
        json_output=args.json,
        iterations=args.iterations,
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        build_payload,
        compare_to_baseline,
        environment_fingerprint,
        load_bench_json,
        make_baseline_comparison,
        select_benchmarks,
        time_callable,
        write_bench_json,
    )
    from repro.bench.suites import HEADLINE_BENCHMARK

    def say(message: str) -> None:
        if not args.quiet and not args.json:
            print(message)

    if args.input:
        payload = load_bench_json(args.input)
        say(f"loaded    : {args.input} ({len(payload['benchmarks'])} benchmarks)")
    else:
        try:
            benchmarks = select_benchmarks(args.suite, args.names or ())
        except (KeyError, ValueError) as error:
            print(str(error), file=sys.stderr)
            return 2
        results = []
        for benchmark in benchmarks:
            thunk = benchmark.make()
            timing = time_callable(
                thunk, repeats=args.repeats, warmup=args.warmup
            )
            results.append((benchmark, timing))
            say(
                f"{benchmark.name:<28}: median {timing.median_s * 1000:9.2f} ms"
                f"  iqr {timing.iqr_s * 1000:7.2f} ms  ({benchmark.tier})"
            )
        comparison_block = None
        if args.compare_ref:
            reference = load_bench_json(args.compare_ref)
            comparison_block = make_baseline_comparison(
                build_payload(args.suite_name, results, {}),
                reference,
                label=args.compare_label or str(args.compare_ref),
                headline=HEADLINE_BENCHMARK,
            )
        payload = build_payload(
            args.suite_name,
            results,
            environment_fingerprint(),
            baseline_comparison=comparison_block,
        )

    if args.output:
        write_bench_json(args.output, payload)
        say(f"wrote     : {args.output}")

    exit_code = 0
    check_report = None
    if args.check:
        baseline = load_bench_json(args.check)
        comparison = compare_to_baseline(
            payload, baseline, threshold=args.threshold
        )
        check_report = comparison.to_dict()
        for entry in comparison.entries:
            marker = "REGRESSED" if entry.regressed else "ok"
            say(
                f"check {entry.name:<28}: {entry.current_median_s * 1000:9.2f} ms"
                f" vs baseline {entry.baseline_median_s * 1000:9.2f} ms"
                f"  x{entry.ratio:.2f}  {marker}"
            )
        for name in comparison.missing_in_current:
            say(f"check {name:<28}: missing from current run")
        for key, (cur, base) in sorted(comparison.env_mismatches.items()):
            say(f"env mismatch {key}: current={cur!r} baseline={base!r}")
        if not comparison.ok:
            message = (
                f"{len(comparison.regressions)} benchmark(s) regressed past "
                f"x{args.threshold:.2f} of {args.check}"
            )
            if args.warn_only:
                print(f"WARNING: {message}", file=sys.stderr)
            else:
                print(f"FAILED: {message}", file=sys.stderr)
                exit_code = 1
        else:
            say(f"check     : ok (threshold x{args.threshold:.2f})")

    if args.json:
        output = dict(payload)
        if check_report is not None:
            output["check"] = check_report
        print(json.dumps(output, sort_keys=True))
    return exit_code


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis import generate_table1, render_table

    table = generate_table1(
        sizes=tuple(args.sizes),
        seeds=tuple(range(args.seeds)),
        algorithms=args.algorithms,
        workers=args.workers,
    )
    print(render_table(table))
    for name in args.algorithms or []:
        fit = table.awake_fit(name)
        print(f"{name}: awake = {fit.constant:.2f} x log2 n "
              f"(spread {fit.ratio_spread:.2f})")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import main as experiments_main

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    if args.workers != 1:
        forwarded.extend(["--workers", str(args.workers)])
    for name in args.only or []:
        forwarded.extend(["--only", name])
    experiments_main(forwarded)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import fit_sweep, run_sweep, to_csv, to_markdown

    points = run_sweep(
        algorithms=args.algorithms,
        families=args.families,
        sizes=args.sizes,
        seeds=list(range(args.seeds)),
        id_range_factor=args.id_range_factor,
        workers=args.workers,
    )
    rendered = to_csv(points) if args.format == "csv" else to_markdown(points)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered)
        print(f"wrote {len(points)} runs to {args.output}")
    else:
        print(rendered, end="")
    for key, fit in sorted(fit_sweep(points).items()):
        print(
            f"# {key}: max_awake = {fit.constant:.2f} x log2 n "
            f"(spread {fit.ratio_spread:.2f})"
        )
    return 0


def _cmd_walkthrough(_args: argparse.Namespace) -> int:
    from repro.analysis import run_merging_walkthrough

    walkthrough = run_merging_walkthrough()
    print("Figure 2 (before):")
    for node, snapshot in sorted(walkthrough.before.items()):
        print(f"  node {node:>2}: fragment={snapshot.fragment_id} "
              f"level={snapshot.level} parent={snapshot.parent}")
    print("Figure 5 (after):")
    for node, snapshot in sorted(walkthrough.after.items()):
        print(f"  node {node:>2}: fragment={snapshot.fragment_id} "
              f"level={snapshot.level} parent={snapshot.parent}")
    return 0


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """Grid axes shared by ``batch`` and ``submit`` (one schema, two doors)."""
    parser.add_argument(
        "--algorithms", nargs="+", default=["randomized"],
        help="canonical names or aliases (randomized, deterministic, ...)",
    )
    parser.add_argument("--families", nargs="+", default=["gnp"])
    parser.add_argument("--sizes", type=int, nargs="+", default=[16, 32])
    parser.add_argument(
        "--seeds", type=int, default=2, help="number of seeds (0..N-1) per cell"
    )
    parser.add_argument("--id-range-factor", type=int, default=None)
    parser.add_argument(
        "--faults", nargs="+", default=None, metavar="SPEC",
        help="channel-spec grid axis (e.g. --faults perfect drop:0.01 "
        "crash:2@50); each cell runs under each spec",
    )
    parser.add_argument(
        "--monitors", default=None, metavar="SPEC",
        help="attach invariant monitors to every cell ('all' or a "
        "comma-separated subset); records gain violations/first_invariant",
    )
    parser.add_argument(
        "--engine", choices=("coroutine", "array"), default=None,
        help="simulation backend for every cell; the default coroutine "
        "engine stores nothing in the spec, so default grids keep their "
        "historical hashes (array = vectorized numpy backend)",
    )
    parser.add_argument(
        "--problem", choices=("mst", "mis"), default=None,
        help="problem bundle for every cell (default mst; MST-only grids "
        "keep their historical JobSpec hashes)",
    )
    parser.add_argument(
        "--spec", default=None, metavar="PATH",
        help="JSON grid spec file; its keys override the grid flags",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mst",
        description="Sleeping-model distributed MST (PODC 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one algorithm")
    run_parser.add_argument(
        "--algorithm",
        choices=(
            "randomized", "deterministic", "traditional", "spanning-tree",
            "mis",
        ),
        default="randomized",
    )
    run_parser.add_argument(
        "--problem", choices=("mst", "mis"), default="mst",
        help="problem bundle to dispatch (mis ignores --algorithm and runs "
        "the O(log log n)-awake Sleeping-MIS protocol)",
    )
    run_parser.add_argument("--graph", choices=sorted(GRAPH_FAMILIES), default="gnp")
    run_parser.add_argument("--n", type=int, default=64)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--id-range", type=int, default=None)
    run_parser.add_argument(
        "--termination", choices=("adaptive", "fixed"), default="adaptive"
    )
    run_parser.add_argument(
        "--coloring", choices=("fast-awake", "log-star"), default="fast-awake"
    )
    run_parser.add_argument(
        "--engine", choices=("coroutine", "array"), default=None,
        help="simulation backend: coroutine (default) or the vectorized "
        "numpy array engine (randomized MST, perfect channel only)",
    )
    run_parser.add_argument(
        "--save-trace",
        default=None,
        metavar="PATH",
        help="record the execution trace and save it as JSONL",
    )
    run_parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="channel spec for fault injection (e.g. drop:0.05, delay:3, "
        "dup:0.1, crash:2@50, drop:0.01+crash:1@40); the run is classified "
        "as correct / detected_wrong / silent_wrong / hung",
    )
    run_parser.add_argument(
        "--monitors", default=None, metavar="SPEC",
        help="attach runtime invariant monitors: 'all', 'off', or a "
        "comma-separated subset of "
        "fldt-wellformed,star-merge,... (see repro.invariants)",
    )
    run_parser.add_argument(
        "--json", action="store_true", help="emit one JSON object instead of text"
    )
    run_parser.set_defaults(func=_cmd_run)

    check_parser = subparsers.add_parser(
        "check",
        help="run with invariant monitors attached; report broken lemmas",
    )
    check_parser.add_argument(
        "--algorithm",
        choices=("randomized", "deterministic", "mis"),
        default="randomized",
    )
    check_parser.add_argument(
        "--problem", choices=("mst", "mis"), default="mst",
        help="problem bundle: selects the monitor set 'all' expands to "
        "and the validator the outcome is judged by",
    )
    check_parser.add_argument(
        "--graph", choices=sorted(GRAPH_FAMILIES), default="gnp"
    )
    check_parser.add_argument("--n", type=int, default=32)
    check_parser.add_argument("--seed", type=int, default=0)
    check_parser.add_argument("--id-range", type=int, default=None)
    check_parser.add_argument(
        "--termination", choices=("adaptive", "fixed"), default="adaptive"
    )
    check_parser.add_argument(
        "--coloring", choices=("fast-awake", "log-star"), default="fast-awake"
    )
    check_parser.add_argument(
        "--monitors", default="all", metavar="SPEC",
        help="'all' (default) or a comma-separated subset of monitor names",
    )
    check_parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="channel spec for fault injection; the report then names the "
        "first invariant the faults broke",
    )
    check_parser.add_argument(
        "--sweep", action="store_true",
        help="run a perfect-channel grid instead of one cell and assert "
        "that no monitor fires anywhere (the CI smoke gate)",
    )
    check_parser.add_argument(
        "--algorithms", nargs="+",
        default=["randomized", "deterministic"],
        choices=("randomized", "deterministic", "mis"),
        help="(--sweep) algorithms to grid over",
    )
    check_parser.add_argument(
        "--families", nargs="+", default=["gnp"],
        help="(--sweep) graph families to grid over",
    )
    check_parser.add_argument(
        "--sizes", type=int, nargs="+", default=[8, 16, 24],
        help="(--sweep) graph sizes to grid over",
    )
    check_parser.add_argument(
        "--seed-range", type=int, default=3,
        help="(--sweep) seeds 0..N-1 per cell",
    )
    check_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the JSON report to this file",
    )
    check_parser.add_argument(
        "--json", action="store_true", help="emit one JSON object instead of text"
    )
    check_parser.set_defaults(func=_cmd_check)

    batch_parser = subparsers.add_parser(
        "batch",
        help="run a job grid through the orchestrator (pool + cache + store)",
    )
    _add_grid_arguments(batch_parser)
    batch_parser.add_argument("--workers", type=int, default=1)
    batch_parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="JSONL run store (default: batch-<gridhash>.jsonl)",
    )
    batch_parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume from an existing store: execute only failed/missing cells",
    )
    batch_parser.add_argument(
        "--cache-dir", default=".repro-cache",
        help="content-addressed result cache directory",
    )
    batch_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    batch_parser.add_argument(
        "--timeout", type=float, default=None, help="per-job seconds budget"
    )
    batch_parser.add_argument(
        "--retries", type=int, default=0, help="retries per failed job"
    )
    batch_parser.add_argument(
        "--json", action="store_true",
        help="emit the summary and all records as one JSON object",
    )
    batch_parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines on stderr"
    )
    batch_parser.set_defaults(func=_cmd_batch)

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="run a declarative campaign spec: dense grids + adaptive "
        "drivers + statistical fits, into one resumable report",
    )
    campaign_parser.add_argument(
        "action", choices=("run", "resume", "report"),
        help="run executes the campaign (resuming any prior ledger); "
        "resume is an explicit alias of run; report rebuilds report.json "
        "from the ledger without running anything",
    )
    campaign_parser.add_argument(
        "spec", metavar="SPEC",
        help="campaign spec file (.toml or .json; see docs/campaigns.md)",
    )
    campaign_parser.add_argument(
        "--root", default=".repro-campaigns",
        help="campaign state directory: ledger at <root>/<name>/runs.jsonl, "
        "report at <root>/<name>/report.json",
    )
    campaign_parser.add_argument("--workers", type=int, default=1)
    campaign_parser.add_argument(
        "--cache-dir", default=".repro-cache",
        help="content-addressed result cache shared with 'batch'",
    )
    campaign_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    campaign_parser.add_argument(
        "--timeout", type=float, default=None, help="per-job seconds budget"
    )
    campaign_parser.add_argument(
        "--retries", type=int, default=0, help="retries per failed job"
    )
    campaign_parser.add_argument(
        "--via-service", default=None, metavar="URL",
        help="execute grids through a running 'serve' daemon instead of "
        "in-process (records are mirrored into the local ledger)",
    )
    campaign_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the report here instead of <root>/<name>/report.json",
    )
    campaign_parser.add_argument(
        "--json", action="store_true",
        help="emit the full report payload as one JSON object",
    )
    campaign_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-grid progress lines on stderr",
    )
    campaign_parser.set_defaults(func=_cmd_campaign)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the simulation service daemon (job API + worker pool)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8732,
        help="TCP port (0 picks an ephemeral port, printed on start-up)",
    )
    serve_parser.add_argument(
        "--root", default=".repro-service",
        help="service state directory: per-job JSONL stores under "
        "<root>/jobs, result cache under <root>/cache",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=1,
        help="drainer threads (jobs running concurrently)",
    )
    serve_parser.add_argument(
        "--job-workers", type=int, default=1,
        help="process-pool width inside each job (run_jobs workers)",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="result cache directory (default: <root>/cache)",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=None, help="per-job seconds budget"
    )
    serve_parser.add_argument(
        "--retries", type=int, default=0, help="retries per failed job"
    )
    serve_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-request log lines"
    )
    serve_parser.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON log lines (one object per line)",
    )
    serve_parser.add_argument(
        "--log-file", default=None, metavar="PATH",
        help="write log lines here instead of stderr",
    )
    serve_parser.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error"),
        help="log threshold (default: info, or warning with --quiet)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    submit_parser = subparsers.add_parser(
        "submit",
        help="submit a grid to a running service daemon (see 'serve')",
    )
    submit_parser.add_argument(
        "--url", default="http://127.0.0.1:8732",
        help="base URL of the service daemon",
    )
    _add_grid_arguments(submit_parser)
    submit_parser.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes, streaming progress lines to "
        "stderr, then fetch and print the result",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=None,
        help="(--wait) give up after this many seconds",
    )
    submit_parser.add_argument(
        "--interval", type=float, default=0.5,
        help="(--wait) seconds between polls",
    )
    submit_parser.add_argument(
        "--json", action="store_true",
        help="emit the submission (or, with --wait, the result) as JSON",
    )
    submit_parser.add_argument(
        "--quiet", action="store_true",
        help="(--wait) suppress progress lines on stderr",
    )
    submit_parser.set_defaults(func=_cmd_submit)

    top_parser = subparsers.add_parser(
        "top",
        help="live dashboard over a running service daemon "
        "(/stats + /metrics)",
    )
    top_parser.add_argument(
        "--url", default="http://127.0.0.1:8732",
        help="base URL of the service daemon",
    )
    top_parser.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes",
    )
    top_parser.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    top_parser.add_argument(
        "--json", action="store_true",
        help="with --once: print the raw sample dict as JSON (scripting)",
    )
    top_parser.add_argument(
        "--iterations", type=int, default=None,
        help="stop after N frames (default: run until interrupted)",
    )
    top_parser.set_defaults(func=_cmd_top)

    trace_parser = subparsers.add_parser(
        "trace",
        help="run once with span observability; export a Chrome trace",
    )
    trace_parser.add_argument(
        "--algorithm",
        choices=(
            "randomized", "deterministic", "traditional", "spanning-tree",
            "mis",
        ),
        default="randomized",
    )
    trace_parser.add_argument(
        "--problem", choices=("mst", "mis"), default="mst",
        help="problem bundle to dispatch (mis runs Sleeping-MIS)",
    )
    trace_parser.add_argument(
        "--graph", choices=sorted(GRAPH_FAMILIES), default="gnp"
    )
    trace_parser.add_argument("--n", type=int, default=64)
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument("--id-range", type=int, default=None)
    trace_parser.add_argument(
        "--coloring", choices=("fast-awake", "log-star"), default="fast-awake"
    )
    trace_parser.add_argument(
        "--output", default="repro-trace.json", metavar="PATH",
        help="Chrome trace-event JSON output (open in Perfetto / chrome://tracing)",
    )
    trace_parser.add_argument(
        "--ndjson", default=None, metavar="PATH",
        help="also write per-span NDJSON structured logs",
    )
    trace_parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="channel spec for fault injection; fault events land in the "
        "Chrome trace under the 'fault' category",
    )
    trace_parser.add_argument(
        "--json", action="store_true", help="emit one JSON object instead of text"
    )
    trace_parser.set_defaults(func=_cmd_trace)

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the benchmark suite; write/gate BENCH_*.json results",
    )
    bench_parser.add_argument(
        "--suite",
        choices=(
            "smoke", "micro", "e2e", "fault", "monitors", "mis", "scale",
            "full",
        ),
        default="smoke",
        help="which benchmark tier to run (default: the CI smoke subset; "
        "scale = array-vs-coroutine speedup tier at n>=4096; mis = the "
        "Sleeping-MIS end-to-end tier)",
    )
    bench_parser.add_argument(
        "--names", nargs="+", default=None, metavar="NAME",
        help="run only these benchmarks (overrides --suite)",
    )
    bench_parser.add_argument("--repeats", type=int, default=5)
    bench_parser.add_argument("--warmup", type=int, default=1)
    bench_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write results as BENCH JSON (schema repro-bench/1)",
    )
    bench_parser.add_argument(
        "--suite-name", default="engine",
        help="suite label stamped into the JSON (default: engine)",
    )
    bench_parser.add_argument(
        "--input", default=None, metavar="PATH",
        help="gate a previously written results file instead of re-running",
    )
    bench_parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare medians against a committed BENCH baseline file",
    )
    bench_parser.add_argument(
        "--threshold", type=float, default=1.25,
        help="slowdown ratio above which --check fails (default 1.25)",
    )
    bench_parser.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (for flaky shared runners)",
    )
    bench_parser.add_argument(
        "--compare-ref", default=None, metavar="REF_JSON",
        help="embed a baseline_comparison block computed against this file",
    )
    bench_parser.add_argument(
        "--compare-label", default=None,
        help="label recorded as baseline_comparison.reference",
    )
    bench_parser.add_argument(
        "--json", action="store_true", help="emit the full payload as JSON"
    )
    bench_parser.add_argument("--quiet", action="store_true")
    bench_parser.set_defaults(func=_cmd_bench)

    compare_parser = subparsers.add_parser(
        "compare",
        help="side-by-side awake-complexity table across problem bundles "
        "(MST vs MIS)",
    )
    compare_parser.add_argument(
        "--sizes", type=int, nargs="+", default=[64, 256, 1024],
        help="graph sizes per problem (the acceptance grid by default)",
    )
    compare_parser.add_argument(
        "--seeds", type=int, default=3, help="seeds 0..N-1 per (problem, n)"
    )
    compare_parser.add_argument(
        "--family", choices=sorted(GRAPH_FAMILIES), default="gnp"
    )
    compare_parser.add_argument(
        "--problems", nargs="+", default=None, choices=("mst", "mis"),
        help="problem bundles to compare (default: every registered one)",
    )
    compare_parser.add_argument(
        "--monitors", default=None, metavar="SPEC",
        help="attach each problem's invariant monitors to every cell "
        "('all' expands per problem); violation counts enter the artifact",
    )
    compare_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the comparison artifact JSON "
        "(schema repro-problems-compare/1)",
    )
    compare_parser.add_argument(
        "--json", action="store_true",
        help="emit the artifact payload as one JSON object",
    )
    compare_parser.set_defaults(func=_cmd_compare)

    table_parser = subparsers.add_parser("table1", help="regenerate Table 1")
    table_parser.add_argument("--sizes", type=int, nargs="+", default=[16, 32, 64])
    table_parser.add_argument("--seeds", type=int, default=2)
    table_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["Randomized-MST", "Traditional-GHS"],
        choices=["Randomized-MST", "Deterministic-MST", "Traditional-GHS"],
    )
    table_parser.add_argument("--workers", type=int, default=1)
    table_parser.set_defaults(func=_cmd_table1)

    experiments_parser = subparsers.add_parser(
        "experiments", help="run the experiment suite"
    )
    experiments_parser.add_argument("--quick", action="store_true")
    experiments_parser.add_argument("--only", action="append")
    experiments_parser.add_argument("--workers", type=int, default=1)
    experiments_parser.set_defaults(func=_cmd_experiments)

    walkthrough_parser = subparsers.add_parser(
        "walkthrough", help="print the Figures 2-5 merge walk-through"
    )
    walkthrough_parser.set_defaults(func=_cmd_walkthrough)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run an (algorithm x family x n x seed) grid"
    )
    sweep_parser.add_argument(
        "--algorithms", nargs="+", default=["Randomized-MST"]
    )
    sweep_parser.add_argument("--families", nargs="+", default=["gnp"])
    sweep_parser.add_argument("--sizes", type=int, nargs="+", default=[16, 32, 64])
    sweep_parser.add_argument("--seeds", type=int, default=2)
    sweep_parser.add_argument("--id-range-factor", type=int, default=None)
    sweep_parser.add_argument("--workers", type=int, default=1)
    sweep_parser.add_argument(
        "--format", choices=("csv", "markdown"), default="csv"
    )
    sweep_parser.add_argument(
        "--output", default=None, help="write to a file instead of stdout"
    )
    sweep_parser.set_defaults(func=_cmd_sweep)
    return parser


#: Subcommands that execute simulations directly: each invocation gets
#: its own trace ID so exports and worker logs correlate (the service
#: path mints per-submission IDs instead; see repro.telemetry).
_TRACED_COMMANDS = ("run", "trace", "check")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "command", None) in _TRACED_COMMANDS:
        from repro.telemetry import trace_context

        with trace_context():
            return args.func(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
