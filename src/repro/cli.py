"""Command-line interface: ``python -m repro.cli`` (or ``repro-mst``).

Subcommands
-----------
``run``
    Run one algorithm on a generated graph and print the metrics the paper
    is about (awake complexity, round complexity, their product,
    correctness).
``table1``
    Regenerate Table 1 across sizes and print the fitted constants.
``experiments``
    Run the full experiment suite (delegates to
    :mod:`repro.analysis.experiments`).
``walkthrough``
    Print the Figures 2-5 merging walk-through.

Examples::

    python -m repro.cli run --algorithm randomized --graph ring --n 64
    python -m repro.cli run --algorithm deterministic --coloring log-star \
        --graph gnp --n 32 --id-range 512
    python -m repro.cli table1 --sizes 16 32 64
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.baselines import run_sleeping_spanning_tree, run_traditional_ghs
from repro.core import run_deterministic_mst, run_randomized_mst
from repro.graphs import (
    WeightedGraph,
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_geometric_graph,
    ring_graph,
    star_graph,
)

GRAPH_FAMILIES: Dict[str, Callable[[int, int, Optional[int]], WeightedGraph]] = {
    "ring": lambda n, seed, idr: ring_graph(n, seed=seed, id_range=idr),
    "path": lambda n, seed, idr: path_graph(n, seed=seed, id_range=idr),
    "star": lambda n, seed, idr: star_graph(n, seed=seed, id_range=idr),
    "complete": lambda n, seed, idr: complete_graph(n, seed=seed, id_range=idr),
    "grid": lambda n, seed, idr: grid_graph(
        max(2, int(math.isqrt(n))), max(2, n // max(2, int(math.isqrt(n)))),
        seed=seed, id_range=idr,
    ),
    "gnp": lambda n, seed, idr: random_connected_graph(
        n, extra_edge_prob=0.1, seed=seed, id_range=idr
    ),
    "geometric": lambda n, seed, idr: random_geometric_graph(
        n, radius=0.35, seed=seed, id_range=idr
    ),
}


def _cmd_run(args: argparse.Namespace) -> int:
    graph = GRAPH_FAMILIES[args.graph](args.n, args.seed, args.id_range)
    sim_kwargs = {"trace": True} if args.save_trace else {}
    if args.algorithm == "randomized":
        result = run_randomized_mst(
            graph, seed=args.seed, termination=args.termination, **sim_kwargs
        )
    elif args.algorithm == "deterministic":
        result = run_deterministic_mst(
            graph, coloring=args.coloring, **sim_kwargs
        )
    elif args.algorithm == "traditional":
        result = run_traditional_ghs(graph, seed=args.seed, **sim_kwargs)
    else:
        result = run_sleeping_spanning_tree(graph, seed=args.seed, **sim_kwargs)

    if args.save_trace:
        from repro.sim import save_trace

        events = save_trace(result.simulation, args.save_trace)
        print(f"trace            : {events} events -> {args.save_trace}")

    metrics = result.metrics
    print(f"algorithm        : {result.algorithm}")
    print(f"graph            : {args.graph} n={graph.n} m={graph.m} N={graph.max_id}")
    print(f"phases           : {result.phases}")
    print(f"awake complexity : {metrics.max_awake} "
          f"({metrics.max_awake / math.log2(max(2, graph.n)):.1f} x log2 n)")
    print(f"mean awake       : {metrics.mean_awake:.1f}")
    print(f"round complexity : {metrics.rounds}")
    print(f"awake x rounds   : {metrics.awake_round_product}")
    print(f"messages         : {metrics.messages_delivered} delivered / "
          f"{metrics.messages_lost} lost")
    print(f"max message bits : {metrics.max_message_bits}")
    if args.algorithm in ("randomized", "deterministic", "traditional"):
        correct = result.is_correct_mst(graph)
        print(f"correct MST      : {correct}")
        return 0 if correct else 1
    from repro.graphs import is_spanning_tree

    ok = is_spanning_tree(graph, result.mst_weights)
    print(f"spanning tree    : {ok}")
    return 0 if ok else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis import generate_table1, render_table

    table = generate_table1(
        sizes=tuple(args.sizes),
        seeds=tuple(range(args.seeds)),
        algorithms=args.algorithms,
    )
    print(render_table(table))
    for name in args.algorithms or []:
        fit = table.awake_fit(name)
        print(f"{name}: awake = {fit.constant:.2f} x log2 n "
              f"(spread {fit.ratio_spread:.2f})")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import main as experiments_main

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    for name in args.only or []:
        forwarded.extend(["--only", name])
    experiments_main(forwarded)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import fit_sweep, run_sweep, to_csv, to_markdown

    points = run_sweep(
        algorithms=args.algorithms,
        families=args.families,
        sizes=args.sizes,
        seeds=list(range(args.seeds)),
        id_range_factor=args.id_range_factor,
    )
    rendered = to_csv(points) if args.format == "csv" else to_markdown(points)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered)
        print(f"wrote {len(points)} runs to {args.output}")
    else:
        print(rendered, end="")
    for key, fit in sorted(fit_sweep(points).items()):
        print(
            f"# {key}: max_awake = {fit.constant:.2f} x log2 n "
            f"(spread {fit.ratio_spread:.2f})"
        )
    return 0


def _cmd_walkthrough(_args: argparse.Namespace) -> int:
    from repro.analysis import run_merging_walkthrough

    walkthrough = run_merging_walkthrough()
    print("Figure 2 (before):")
    for node, snapshot in sorted(walkthrough.before.items()):
        print(f"  node {node:>2}: fragment={snapshot.fragment_id} "
              f"level={snapshot.level} parent={snapshot.parent}")
    print("Figure 5 (after):")
    for node, snapshot in sorted(walkthrough.after.items()):
        print(f"  node {node:>2}: fragment={snapshot.fragment_id} "
              f"level={snapshot.level} parent={snapshot.parent}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mst",
        description="Sleeping-model distributed MST (PODC 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one algorithm")
    run_parser.add_argument(
        "--algorithm",
        choices=("randomized", "deterministic", "traditional", "spanning-tree"),
        default="randomized",
    )
    run_parser.add_argument("--graph", choices=sorted(GRAPH_FAMILIES), default="gnp")
    run_parser.add_argument("--n", type=int, default=64)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--id-range", type=int, default=None)
    run_parser.add_argument(
        "--termination", choices=("adaptive", "fixed"), default="adaptive"
    )
    run_parser.add_argument(
        "--coloring", choices=("fast-awake", "log-star"), default="fast-awake"
    )
    run_parser.add_argument(
        "--save-trace",
        default=None,
        metavar="PATH",
        help="record the execution trace and save it as JSONL",
    )
    run_parser.set_defaults(func=_cmd_run)

    table_parser = subparsers.add_parser("table1", help="regenerate Table 1")
    table_parser.add_argument("--sizes", type=int, nargs="+", default=[16, 32, 64])
    table_parser.add_argument("--seeds", type=int, default=2)
    table_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["Randomized-MST", "Traditional-GHS"],
        choices=["Randomized-MST", "Deterministic-MST", "Traditional-GHS"],
    )
    table_parser.set_defaults(func=_cmd_table1)

    experiments_parser = subparsers.add_parser(
        "experiments", help="run the experiment suite"
    )
    experiments_parser.add_argument("--quick", action="store_true")
    experiments_parser.add_argument("--only", action="append")
    experiments_parser.set_defaults(func=_cmd_experiments)

    walkthrough_parser = subparsers.add_parser(
        "walkthrough", help="print the Figures 2-5 merge walk-through"
    )
    walkthrough_parser.set_defaults(func=_cmd_walkthrough)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run an (algorithm x family x n x seed) grid"
    )
    sweep_parser.add_argument(
        "--algorithms", nargs="+", default=["Randomized-MST"]
    )
    sweep_parser.add_argument("--families", nargs="+", default=["gnp"])
    sweep_parser.add_argument("--sizes", type=int, nargs="+", default=[16, 32, 64])
    sweep_parser.add_argument("--seeds", type=int, default=2)
    sweep_parser.add_argument("--id-range-factor", type=int, default=None)
    sweep_parser.add_argument(
        "--format", choices=("csv", "markdown"), default="csv"
    )
    sweep_parser.add_argument(
        "--output", default=None, help="write to a file instead of stdout"
    )
    sweep_parser.set_defaults(func=_cmd_sweep)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
