"""Core algorithms: LDT toolbox, Randomized-MST, Deterministic-MST."""

from .array_ops import run_randomized_mst_array
from .ldt import LDTState, check_fldt, fragment_tree_edges
from .logstar import cv_iterations, cv_step, logstar_coloring, logstar_total_blocks
from .merging import MERGE_BLOCKS, merging_fragments
from .mst_randomized import (
    MSTNodeOutput,
    PHASE_BLOCKS,
    randomized_mst_protocol,
    randomized_mst_session,
    randomized_phase_count,
)
from .runner import (
    MSTRunResult,
    RunResult,
    run_deterministic_mst,
    run_randomized_mst,
)
from .schedule import (
    Block,
    BlockClock,
    block_span,
    down_receive_offset,
    down_send_offset,
    side_offset,
    up_receive_offset,
    up_send_offset,
)
from .toolbox import (
    NOTHING,
    fragment_broadcast,
    local_moe,
    min_merge,
    neighbor_awareness,
    neighbor_refresh,
    transmit_adjacent,
    upcast_aggregate,
    upcast_min,
)

__all__ = [
    "Block",
    "BlockClock",
    "LDTState",
    "MERGE_BLOCKS",
    "MSTNodeOutput",
    "MSTRunResult",
    "NOTHING",
    "PHASE_BLOCKS",
    "RunResult",
    "block_span",
    "check_fldt",
    "cv_iterations",
    "cv_step",
    "down_receive_offset",
    "down_send_offset",
    "fragment_broadcast",
    "fragment_tree_edges",
    "local_moe",
    "logstar_coloring",
    "logstar_total_blocks",
    "merging_fragments",
    "min_merge",
    "neighbor_awareness",
    "neighbor_refresh",
    "randomized_mst_protocol",
    "randomized_mst_session",
    "randomized_phase_count",
    "run_deterministic_mst",
    "run_randomized_mst",
    "run_randomized_mst_array",
    "side_offset",
    "transmit_adjacent",
    "up_receive_offset",
    "up_send_offset",
    "upcast_aggregate",
    "upcast_min",
]
