"""Vectorized ``Randomized-MST`` over the array simulation backend.

This module re-executes the exact phase plan of
:mod:`repro.core.mst_randomized` — nine Transmission-Schedule blocks per
phase — but instead of advancing one coroutine per node it computes each
block's effect on *all* nodes with numpy kernels:

* fragment labels / levels / parent pointers are int arrays over the
  node index (sorted-ID order, matching the coroutine engine);
* ``Transmit-Adjacent`` blocks are a single gather over the CSR directed
  edge arrays of :class:`repro.sim.array_engine.ArrayGraph`;
* ``Upcast-Min`` is a level-ordered segmented minimum
  (:func:`subtree_min`) pushing subtree minima up parent pointers;
* MOE selection is an edge-mask + per-source scatter (:func:`owner_edges`);
* ``Merging-Fragments`` re-roots each tails fragment by walking the
  ``u_T`` → old-root chains upward and filling the off-path nodes in
  old-level order (:func:`reroot_merging_fragments`) — reproducing the
  up/down passes of :mod:`repro.core.merging` without per-node message
  flow.

Per-block awake rounds, message counts, and payload bits are charged to a
:class:`repro.sim.array_engine.BlockAccountant` using the closed-form
accounting the Transmission-Schedule guarantees (every receiver of every
block is provably awake in the sending round, so nothing is ever lost
under the perfect channel — the coroutine engine's metrics confirm 0
losses on every Randomized-MST run).  The result is **byte-identical**
per-node :class:`~repro.sim.metrics.NodeMetrics` and
:class:`~repro.sim.metrics.Metrics` summaries; the equivalence suite in
``tests/core/test_array_equivalence.py`` and
``tests/sim/test_array_engine.py`` pins this against the coroutine
engine over random seeds and graph families.

RNG parity: the coroutine engine gives node ``v`` the private generator
``Random(f"{seed}/{v}")`` and only fragment *roots* draw — one coin per
phase, in block 3, including the final halting phase.  The array backend
keeps the same per-node ``Random`` objects and draws for exactly the
current root set each phase, so coins (and therefore merges, phase
counts, and the final MST labels) match draw for draw.
"""

from __future__ import annotations

from random import Random
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.array_engine import (
    ArrayGraph,
    BlockAccountant,
    NONE_BITS,
    TUPLE_OVERHEAD,
    int_field_bits,
    require_numpy,
    validate_array_sim_kwargs,
)
from repro.sim.engine import SimulationResult

from .mst_randomized import HEADS, TAILS, MSTNodeOutput, randomized_phase_count
from .schedule import block_span

try:  # pragma: no cover - exercised implicitly by every array-engine test
    import numpy as np
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None

#: Sentinel for :data:`repro.core.toolbox.NOTHING` inside int64 arrays.
#: Minima ignore it naturally (it is the identity of ``min``), matching
#: ``min_merge``; payload sizing maps it back to ``None`` (3 bits).
INT_NOTHING = (1 << 62)


def level_groups(level: Any, mask: Any = None) -> List[Tuple[int, Any]]:
    """Group node indices by level, ascending; vectorized bodies per group.

    Fragment trees satisfy ``level[parent] == level[child] - 1``, so
    processing groups in (reverse) order makes one ``np.minimum.at`` /
    gather per level a correct convergecast (broadcast) step.
    """
    if mask is None:
        idx = np.arange(level.shape[0], dtype=np.int64)
    else:
        idx = np.nonzero(mask)[0]
    if idx.size == 0:
        return []
    order = np.argsort(level[idx], kind="stable")
    idx = idx[order]
    levels = level[idx]
    boundaries = np.nonzero(np.diff(levels))[0] + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [idx.size]))
    return [
        (int(levels[s]), idx[s:e]) for s, e in zip(starts, ends)
    ]


def subtree_min(
    parent: Any, groups: List[Tuple[int, Any]], values: Any
) -> Any:
    """Per-node minimum over its fragment subtree (``Upcast-Min`` result).

    ``groups`` is :func:`level_groups` of the current trees.  Children are
    folded into parents deepest level first, so ``combined[v]`` ends as
    the minimum of ``values`` over ``v``'s subtree — the value ``v`` sends
    up in the coroutine engine, and at roots the fragment aggregate.
    """
    combined = values.copy()
    for lev, nodes in reversed(groups):
        if lev == 0:
            continue
        np.minimum.at(combined, parent[nodes], combined[nodes])
    return combined


def owner_edges(g: ArrayGraph, frag: Any, moe_weight: Any, coin: Any):
    """Locate each fragment's MOE owner ``u_T`` and its validity bit.

    A node owns its fragment's MOE when one of its ports carries exactly
    the broadcast MOE weight *and* leads outside the fragment (weights
    are globally distinct, so at most one directed edge per fragment
    matches).  Validity follows the paper's star rule: tails here, heads
    there.  Returns ``(owner_edge, owner_valid)`` per node, ``-1`` /
    :data:`INT_NOTHING` for non-owners.
    """
    n = g.n
    own = (
        (moe_weight[g.src] != 0)
        & (g.weight == moe_weight[g.src])
        & (frag[g.dst] != frag[g.src])
    )
    owner_edge = np.full(n, -1, dtype=np.int64)
    owner_valid = np.full(n, INT_NOTHING, dtype=np.int64)
    edges = np.nonzero(own)[0]
    if edges.size:
        owners = g.src[edges]
        owner_edge[owners] = edges
        owner_valid[owners] = (
            (coin[owners] == TAILS) & (coin[g.dst[edges]] == HEADS)
        ).astype(np.int64)
    return owner_edge, owner_valid


def reroot_merging_fragments(
    g: ArrayGraph,
    parent: Any,
    parent_edge: Any,
    frag: Any,
    level: Any,
    groups: List[Tuple[int, Any]],
    merging: Any,
    merge_edge: Any,
):
    """Compute the post-merge labels of every merging node.

    Mirrors the up/down passes of :func:`repro.core.merging
    .merging_fragments`: each ``u_T`` (with ``merge_edge >= 0``) anchors
    at its heads neighbour; the old-tree ancestor chain up to the old
    root reverses its parent pointers (the block-8 path); every other
    merging node keeps its pointers and re-levels from its parent (the
    block-9 down pass, applied in old-level order).

    Returns ``(new_level, new_frag, new_parent, new_parent_edge,
    path_mask)`` — the ``new_*`` arrays are only meaningful at merging
    nodes.
    """
    n = g.n
    new_level = np.full(n, -1, dtype=np.int64)
    new_frag = np.full(n, -1, dtype=np.int64)
    new_parent = parent.copy()
    new_parent_edge = parent_edge.copy()
    path_mask = np.zeros(n, dtype=bool)

    u_t = np.nonzero(merge_edge >= 0)[0]
    if u_t.size:
        heads = g.dst[merge_edge[u_t]]
        new_frag[u_t] = frag[heads]
        new_level[u_t] = level[heads] + 1
        new_parent[u_t] = heads
        new_parent_edge[u_t] = merge_edge[u_t]
        path_mask[u_t] = True

        # Up pass: one u_T per fragment, so the ancestor chains are
        # disjoint and each hop is a clean vectorized assignment.
        current = u_t
        while current.size:
            parents = parent[current]
            alive = parents >= 0
            if not np.any(alive):
                break
            children = current[alive]
            parents = parents[alive]
            new_level[parents] = new_level[children] + 1
            new_frag[parents] = new_frag[children]
            new_parent[parents] = children
            new_parent_edge[parents] = g.rev[parent_edge[children]]
            path_mask[parents] = True
            current = parents

    # Down pass: off-path merging nodes adopt parent's values + 1, in old
    # level order (their parent is strictly shallower, hence already set).
    for _, nodes in groups:
        nodes = nodes[merging[nodes] & ~path_mask[nodes]]
        if nodes.size == 0:
            continue
        parents = parent[nodes]
        new_level[nodes] = new_level[parents] + 1
        new_frag[nodes] = new_frag[parents]
    return new_level, new_frag, new_parent, new_parent_edge, path_mask


def _scalar_bits(values: Any) -> Any:
    """Payload bits of a scalar upcast/broadcast value (None at NOTHING)."""
    return np.where(
        values == INT_NOTHING, NONE_BITS, int_field_bits(values)
    )


def run_randomized_mst_array(
    graph: Any,
    seed: int = 0,
    termination: str = "adaptive",
    max_phases: Optional[int] = None,
    **sim_kwargs: Any,
) -> SimulationResult:
    """Execute ``Randomized-MST`` on the vectorized array backend.

    Drop-in replacement for running
    :func:`repro.core.mst_randomized.randomized_mst_protocol` under
    :class:`repro.sim.SleepingSimulator` with the default perfect
    channel and no observers — same node outputs, same metrics, same
    rounds.  Unsupported simulator features raise
    :class:`repro.sim.errors.UnsupportedFeatureError` (see
    :func:`repro.sim.array_engine.validate_array_sim_kwargs`).
    """
    require_numpy()
    if termination not in ("adaptive", "fixed"):
        raise ValueError(f"unknown termination mode {termination!r}")
    adaptive = termination == "adaptive"
    supported = validate_array_sim_kwargs(sim_kwargs)

    g = ArrayGraph(graph)
    n = g.n
    acc = BlockAccountant(g, **supported)
    ids = g.ids

    phase_budget = (
        max_phases if max_phases is not None else randomized_phase_count(n)
    )
    phases_run = 0

    # State arrays (node index = rank of the node ID in sorted order).
    frag = ids.copy()
    level = np.zeros(n, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)

    # Per-node RNGs, seeded exactly like NodeContext.rng; only current
    # fragment roots draw (once per phase, in block 3).
    rngs = [Random(f"{seed}/{node_id}") for node_id in ids.tolist()]

    span = block_span(n) if n >= 1 else 0
    next_block_start = 1

    trivial = n == 1 or g.m_directed == 0
    while not trivial and phases_run < phase_budget:
        phases_run += 1
        starts = [next_block_start + b * span for b in range(9)]

        is_root = parent < 0
        nonroot = ~is_root
        child_count = np.bincount(
            parent[nonroot], minlength=n
        ).astype(np.int64)
        has_children = child_count > 0
        root_idx = np.searchsorted(ids, frag)
        groups = level_groups(level)
        up_receive_round = 2 * n - level  # + start - ... added per block
        down_receive_round = level - 1

        # ----- Block 1: neighbor_refresh — (fragment, level) on all ports.
        acc.charge_awake(None, starts[0] + n)
        pb1 = TUPLE_OVERHEAD + int_field_bits(frag) + int_field_bits(level)
        acc.charge_side_exchange(pb1)

        # Local MOE candidates: lightest incident edge leaving the fragment.
        outgoing = frag[g.dst] != frag[g.src]
        edge_weight = np.where(outgoing, g.weight, INT_NOTHING)
        candidate = np.minimum.reduceat(edge_weight, g.indptr[:-1])

        # ----- Block 2: Upcast-Min of the candidate weights.
        combined = subtree_min(parent, groups, candidate)
        acc.charge_awake(has_children, starts[1] + up_receive_round)
        acc.charge_awake(nonroot, starts[1] + up_receive_round + 1)
        acc.charge_up_messages(nonroot, parent, _scalar_bits(combined))

        # ----- Block 3: roots draw coins, broadcast (MOE|0, coin, halt).
        coin_draw = np.zeros(n, dtype=np.int64)
        for idx in np.nonzero(is_root)[0].tolist():
            coin_draw[idx] = HEADS if rngs[idx].random() < 0.5 else TAILS
        frag_moe = combined[root_idx]
        moe_weight = np.where(frag_moe == INT_NOTHING, 0, frag_moe)
        coin = coin_draw[root_idx]
        if adaptive:
            halt = frag_moe == INT_NOTHING
        else:
            halt = np.zeros(n, dtype=bool)
        # (moe|0, coin, halt): coin and halt are 0/1 ints, 4 bits each.
        pb3 = TUPLE_OVERHEAD + int_field_bits(moe_weight) + 8
        acc.charge_awake(nonroot, starts[2] + down_receive_round)
        acc.charge_awake(has_children, starts[2] + down_receive_round + 1)
        acc.charge_down_messages(has_children, child_count, nonroot, pb3)
        if bool(halt.all()):
            next_block_start = starts[3]
            break
        if bool(halt.any()):  # pragma: no cover - impossible when connected
            raise RuntimeError(
                "halt flag differs across fragments; graph is disconnected"
            )

        # ----- Block 4: announce (fragment, coin, MOE weight); find u_T.
        acc.charge_awake(None, starts[3] + n)
        pb4 = (
            TUPLE_OVERHEAD
            + int_field_bits(frag)
            + 4
            + int_field_bits(moe_weight)
        )
        acc.charge_side_exchange(pb4)
        owner_edge, owner_valid = owner_edges(g, frag, moe_weight, coin)

        # ----- Block 5: Upcast-Min of the validity bit.
        valid_combined = subtree_min(parent, groups, owner_valid)
        acc.charge_awake(has_children, starts[4] + up_receive_round)
        acc.charge_awake(nonroot, starts[4] + up_receive_round + 1)
        acc.charge_up_messages(nonroot, parent, _scalar_bits(valid_combined))

        # ----- Block 6: broadcast the validity bit back down.
        valid_bit = valid_combined[root_idx]
        pb6 = _scalar_bits(valid_bit)
        acc.charge_awake(nonroot, starts[5] + down_receive_round)
        acc.charge_awake(has_children, starts[5] + down_receive_round + 1)
        acc.charge_down_messages(has_children, child_count, nonroot, pb6)

        fragment_merging = (coin == TAILS) & (valid_bit == 1)
        merge_edge = np.where(
            fragment_merging & (owner_edge >= 0) & (owner_valid == 1),
            owner_edge,
            -1,
        )

        # ----- Block 7: merge announce (fragment, level, merging?).
        acc.charge_awake(None, starts[6] + n)
        pb7 = (
            TUPLE_OVERHEAD
            + int_field_bits(frag)
            + int_field_bits(level)
            + 4
        )
        acc.charge_side_exchange(pb7)

        # Re-rooted labels for all merging nodes (blocks 8-9 semantics).
        new_level, new_frag, new_parent, new_parent_edge, path_mask = (
            reroot_merging_fragments(
                g,
                parent,
                parent_edge,
                frag,
                level,
                groups,
                fragment_merging,
                merge_edge,
            )
        )

        # ----- Block 8: up pass — only merging nodes wake; path nodes
        # with an old parent send (NEW-LEVEL, NEW-FRAGMENT) upward.
        m_children = fragment_merging & has_children
        m_nonroot = fragment_merging & nonroot
        acc.charge_awake(m_children, starts[7] + up_receive_round)
        acc.charge_awake(m_nonroot, starts[7] + up_receive_round + 1)
        pb_merge = np.where(
            path_mask,
            TUPLE_OVERHEAD
            + int_field_bits(new_level)
            + int_field_bits(new_frag),
            0,
        )
        acc.charge_up_messages(path_mask & nonroot, parent, pb_merge)

        # ----- Block 9: down pass — every merging node with old children
        # forwards its (by now known) new labels to them.
        acc.charge_awake(m_nonroot, starts[8] + down_receive_round)
        acc.charge_awake(m_children, starts[8] + down_receive_round + 1)
        pb9 = np.where(
            fragment_merging,
            TUPLE_OVERHEAD
            + int_field_bits(new_level)
            + int_field_bits(new_frag),
            0,
        )
        heard9 = pb9[parent]
        acc.charge_down_messages(
            m_children, child_count, m_nonroot, pb9, receiver_bits=heard9
        )

        # Commit the merge.
        frag[fragment_merging] = new_frag[fragment_merging]
        level[fragment_merging] = new_level[fragment_merging]
        parent[fragment_merging] = new_parent[fragment_merging]
        parent_edge[fragment_merging] = new_parent_edge[fragment_merging]

        next_block_start = starts[8] + span
        acc.check_limits()

    # ------------------------------------------------------------------
    # Outputs: per-node MST edge sets + final LDT labels.
    # ------------------------------------------------------------------
    tree_weights: List[List[int]] = [[] for _ in range(n)]
    children_ports: List[List[int]] = [[] for _ in range(n)]
    parent_port: List[Optional[int]] = [None] * n
    for child in np.nonzero(parent >= 0)[0].tolist():
        up_edge = int(parent_edge[child])
        par = int(parent[child])
        w = int(g.weight[up_edge])
        parent_port[child] = int(g.port[up_edge])
        tree_weights[child].append(w)
        children_ports[par].append(int(g.port[g.rev[up_edge]]))
        tree_weights[par].append(w)

    node_results: Dict[int, MSTNodeOutput] = {}
    frag_list = frag.tolist()
    level_list = level.tolist()
    for idx, node_id in enumerate(ids.tolist()):
        node_results[node_id] = MSTNodeOutput(
            node_id=node_id,
            mst_weights=frozenset(tree_weights[idx]),
            fragment_id=frag_list[idx],
            level=level_list[idx],
            phases=phases_run,
            parent_port=parent_port[idx],
            children_ports=frozenset(children_ports[idx]),
        )

    acc.check_limits()
    return SimulationResult(node_results=node_results, metrics=acc.finalize())
