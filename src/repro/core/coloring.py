"""``Fast-Awake-Coloring`` — 5-colouring the fragment supergraph (§2.3).

After MOE sparsification the supergraph ``G'`` (fragments as nodes, valid
MOEs as edges) has maximum degree 4.  The paper colours it greedily in
fragment-ID order with the 5-colour priority palette

    **Blue > Red > Orange > Black > Green**

over ``N`` *stages* (``N`` = the globally known upper bound on IDs).  In
stage ``i`` only the fragment whose ID is ``i`` — plus its ``G'``
neighbours — are awake; everyone else sleeps, so each node participates in
at most 5 stages (its own fragment's stage and those of at most 4
neighbours) and the awake cost stays ``O(1)`` per phase, while the round
cost is ``Θ(nN)`` per phase (the price of determinism the paper pays and
Corollary 1 trades away).

Stage layout (5 blocks; every node's clock advances by exactly
``5 * N`` blocks across the whole procedure):

=====  ======================  ===========================================
Block  Who is awake            Purpose
=====  ======================  ===========================================
sA     fragment ``i``          ``Upcast-Min`` of the chosen colour (every
                               member computes the same choice; the
                               convergecast mirrors the paper)
sB     fragment ``i``          ``Fragment-Broadcast`` of the colour
sC     fragment ``i`` + nbrs   ``Transmit-Adjacent``: colour crosses the
                               valid-MOE edges (*Neighbor-Awareness* part 1)
sD     neighbours              ``Upcast-Min`` inside each neighbour
sE     neighbours              ``Fragment-Broadcast`` inside each neighbour
=====  ======================  ===========================================

The colour choice is the highest-priority colour not already taken by a
``G'`` neighbour — neighbours with smaller IDs coloured in earlier stages,
whose colours every member cached during those stages' sD/sE blocks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.sim import NodeContext

from .ldt import LDTState
from .schedule import BlockClock
from .toolbox import (
    NOTHING,
    fragment_broadcast,
    neighbor_awareness,
    upcast_min,
)

#: The palette, in decreasing priority.  Blue fragments merge away.
BLUE, RED, ORANGE, BLACK, GREEN = range(5)
PALETTE = (BLUE, RED, ORANGE, BLACK, GREEN)
COLOR_NAMES = {BLUE: "Blue", RED: "Red", ORANGE: "Orange", BLACK: "Black", GREEN: "Green"}

#: Blocks consumed per stage.
STAGE_BLOCKS = 5


def coloring_total_blocks(max_id: int) -> int:
    """Total blocks one Fast-Awake-Coloring instance consumes."""
    return STAGE_BLOCKS * max_id


def highest_priority_free_color(taken: Iterable[int]) -> int:
    """The paper's greedy rule: best colour not used by any neighbour."""
    taken_set = set(taken)
    for color in PALETTE:
        if color not in taken_set:
            return color
    raise RuntimeError(
        "no free colour — the supergraph degree exceeded 4, which the "
        "sparsification step is supposed to prevent"
    )


def fast_awake_coloring(
    ctx: NodeContext,
    ldt: LDTState,
    clock: BlockClock,
    neighbor_fragments: Set[int],
    gprime_ports: Set[int],
):
    """Run the colouring; returns ``(own colour, {nbr fragment: colour})``.

    Parameters
    ----------
    neighbor_fragments:
        Fragment IDs adjacent to this fragment in ``G'`` (from NBR-INFO —
        identical at every member of the fragment).
    gprime_ports:
        This node's ports that carry valid MOE edges (selected incoming
        ports, plus the outgoing MOE port if it was selected by its target).
    """
    nbr_colors: Dict[int, int] = {}
    own_color: Optional[int] = None

    stages = sorted(neighbor_fragments | {ldt.fragment_id})
    previous_stage = 0
    for stage in stages:
        clock.skip(STAGE_BLOCKS * (stage - previous_stage - 1))
        previous_stage = stage

        if stage == ldt.fragment_id:
            # sA + sB: agree on our colour (identical choice at every
            # member, convergecast + broadcast as in the paper).
            candidate = highest_priority_free_color(nbr_colors.values())
            agreed = yield from upcast_min(ctx, ldt, clock.take(), candidate)
            own_color = yield from fragment_broadcast(
                ctx, ldt, clock.take(), agreed if ldt.is_root else NOTHING
            )
            # sC-sE: Neighbor-Awareness — the colour crosses every valid
            # MOE edge and spreads inside each neighbouring fragment.
            yield from neighbor_awareness(
                ctx, ldt, clock, {port: own_color for port in gprime_ports}
            )
        else:
            # sA + sB happen inside the stage fragment.
            clock.skip(2)
            # sC-sE: learn the stage fragment's colour fragment-wide.
            color = yield from neighbor_awareness(ctx, ldt, clock)
            if color is NOTHING:
                raise RuntimeError(
                    f"node {ctx.node_id}: no colour heard from neighbour "
                    f"fragment {stage} — NBR-INFO and G' ports disagree"
                )
            nbr_colors[stage] = color

    clock.skip(STAGE_BLOCKS * (ctx.max_id - previous_stage))
    if own_color is None:  # pragma: no cover - stages always include our own
        raise RuntimeError(f"node {ctx.node_id} never coloured itself")
    return own_color, nbr_colors
