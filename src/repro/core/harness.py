"""Harness for exercising toolbox procedures on prebuilt FLDTs.

The MST algorithms build their Labeled Distance Trees on the fly, but unit
tests, the toolbox benchmarks, and the Figures 2–5 merging walk-through all
want to run a *single* procedure on a *chosen* forest.  This module lets
callers describe a forest by a parent map, start every node in that state,
run one procedure (a generator taking ``(ctx, ldt, clock, value)``), and
collect each node's return value plus its final LDT state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Mapping, Optional

from repro.graphs import WeightedGraph
from repro.sim import NodeContext, SimulationResult, simulate

from .ldt import LDTState
from .schedule import BlockClock

#: A procedure under test: generator of Awake actions returning a value.
Procedure = Callable[..., Any]


@dataclass(frozen=True)
class FLDTPlan:
    """A forest described centrally: node -> parent node (or ``None``)."""

    #: Parent node ID per node; roots map to ``None``.
    parents: Dict[int, Optional[int]]

    @staticmethod
    def singletons(graph: WeightedGraph) -> "FLDTPlan":
        """Every node its own fragment (the algorithms' initial state)."""
        return FLDTPlan({node: None for node in graph.node_ids})

    @staticmethod
    def single_tree(graph: WeightedGraph, root: int) -> "FLDTPlan":
        """One fragment spanning the whole graph: a BFS tree from ``root``."""
        parents: Dict[int, Optional[int]] = {root: None}
        frontier = [root]
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbour in graph.neighbors(node):
                    if neighbour not in parents:
                        parents[neighbour] = node
                        next_frontier.append(neighbour)
            frontier = next_frontier
        if len(parents) != graph.n:
            raise ValueError("graph is disconnected; BFS tree is partial")
        return FLDTPlan(parents)

    def build_states(self, graph: WeightedGraph) -> Dict[int, LDTState]:
        """Materialise per-node :class:`LDTState` records from the plan."""
        roots = [node for node, parent in self.parents.items() if parent is None]
        # Depths per tree (validates acyclicity per root's component).
        depths: Dict[int, int] = {}
        fragment_of: Dict[int, int] = {}
        children_of: Dict[int, Set[int]] = {node: set() for node in self.parents}
        for node, parent in self.parents.items():
            if parent is not None:
                children_of[parent].add(node)
        for root in roots:
            stack = [(root, 0)]
            while stack:
                node, depth = stack.pop()
                depths[node] = depth
                fragment_of[node] = root
                for child in children_of[node]:
                    stack.append((child, depth + 1))
        missing = set(self.parents) - set(depths)
        if missing:
            raise ValueError(
                f"nodes {sorted(missing)[:5]} unreachable from any root — "
                "the parent map has a cycle"
            )

        states: Dict[int, LDTState] = {}
        for node in graph.node_ids:
            ports = graph.ports_of(node)
            port_of = {neighbour: port for port, (neighbour, _, _) in ports.items()}
            parent = self.parents[node]
            if parent is not None and parent not in port_of:
                raise ValueError(f"{parent} is not adjacent to {node}")
            for child in children_of[node]:
                if child not in port_of:
                    raise ValueError(f"{child} is not adjacent to {node}")
            states[node] = LDTState(
                node_id=node,
                fragment_id=fragment_of[node],
                level=depths[node],
                parent_port=None if parent is None else port_of[parent],
                children_ports={
                    port_of[child] for child in children_of[node]
                },
            )
        return states


@dataclass
class ProcedureRun:
    """Outcome of :func:`run_procedure`."""

    #: Each node's procedure return value.
    returns: Dict[int, Any]
    #: Each node's LDT state after the procedure.
    states: Dict[int, LDTState]
    #: The underlying simulation (metrics, optional trace).
    simulation: SimulationResult


def run_procedure(
    graph: WeightedGraph,
    plan: FLDTPlan,
    procedure: Procedure,
    inputs: Optional[Mapping[int, Any]] = None,
    refresh_neighbors: bool = True,
    repeat: int = 1,
    **sim_kwargs: Any,
) -> ProcedureRun:
    """Run ``procedure`` once (or ``repeat`` times) on the planned forest.

    ``procedure(ctx, ldt, clock, value)`` must be a generator; ``value`` is
    taken from ``inputs`` (default ``None``).  When ``refresh_neighbors``
    is set, a ``neighbor_refresh`` block runs first so procedures that
    consult the neighbour cache (e.g. ``local_moe``) work standalone.
    Returns per-node return values (a list when ``repeat > 1``) and final
    states.
    """
    from .toolbox import neighbor_refresh  # local import avoids cycles

    initial_states = plan.build_states(graph)
    given = dict(inputs or {})

    def factory(ctx: NodeContext):
        return _procedure_protocol(
            ctx,
            initial_states[ctx.node_id],
            procedure,
            given.get(ctx.node_id),
            refresh_neighbors,
            repeat,
            neighbor_refresh,
        )

    simulation = simulate(graph, factory, **sim_kwargs)
    returns = {
        node: payload[0] for node, payload in simulation.node_results.items()
    }
    states = {
        node: payload[1] for node, payload in simulation.node_results.items()
    }
    return ProcedureRun(returns=returns, states=states, simulation=simulation)


def _procedure_protocol(
    ctx: NodeContext,
    initial: LDTState,
    procedure: Procedure,
    value: Any,
    refresh_neighbors: bool,
    repeat: int,
    neighbor_refresh,
):
    ldt = replace(
        initial,
        children_ports=set(initial.children_ports),
        neighbor_fragment=dict(initial.neighbor_fragment),
        neighbor_level=dict(initial.neighbor_level),
    )
    clock = BlockClock(ctx.n)
    if refresh_neighbors:
        yield from neighbor_refresh(ctx, ldt, clock.take())
    outcomes = []
    for _ in range(repeat):
        outcome = yield from procedure(ctx, ldt, clock, value)
        outcomes.append(outcome)
    result = outcomes[0] if repeat == 1 else outcomes
    return (result, ldt)
