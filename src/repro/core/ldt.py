"""Labeled Distance Trees (LDT) and forests thereof (FLDT).

The paper's central structure (Section 2.1): at every phase boundary the
graph is partitioned into a forest of disjoint trees where each node knows

* the ID of its tree's root (the **fragment ID**),
* its parent and children within the tree (as local ports), and
* its hop distance from the root (its **level**).

:class:`LDTState` is the per-node record of exactly that knowledge, plus the
per-port cache of neighbouring nodes' ``(fragment ID, level)`` pairs that
``Transmit-Adjacent`` refreshes each phase.

:func:`check_fldt` is a *global* invariant checker used by the test suite:
given every node's state it verifies that the states jointly describe a
valid FLDT over the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.graphs import WeightedGraph


@dataclass
class LDTState:
    """One node's view of its Labeled Distance Tree."""

    #: ID of this node (never changes).
    node_id: int
    #: ID of the fragment root (initially the node itself).
    fragment_id: int
    #: Hop distance from the fragment root (0 at the root).
    level: int = 0
    #: Port towards the parent; ``None`` at the root.
    parent_port: Optional[int] = None
    #: Ports towards children.
    children_ports: Set[int] = field(default_factory=set)
    #: Last-heard fragment ID of the neighbour on each port.
    neighbor_fragment: Dict[int, int] = field(default_factory=dict)
    #: Last-heard level of the neighbour on each port.
    neighbor_level: Dict[int, int] = field(default_factory=dict)

    @staticmethod
    def singleton(node_id: int) -> "LDTState":
        """Initial state: every node is the root of its own fragment."""
        return LDTState(node_id=node_id, fragment_id=node_id)

    @property
    def is_root(self) -> bool:
        return self.parent_port is None

    def tree_ports(self) -> Set[int]:
        """Ports carrying tree (i.e. MST) edges at this node."""
        ports = set(self.children_ports)
        if self.parent_port is not None:
            ports.add(self.parent_port)
        return ports

    def outgoing_ports(self, all_ports: Tuple[int, ...]) -> List[int]:
        """Ports whose neighbour is (last heard) in a different fragment.

        Ports with no cached neighbour information are treated as outgoing —
        that only happens before the first ``Transmit-Adjacent`` of a phase,
        and callers always refresh first.
        """
        return [
            port
            for port in all_ports
            if self.neighbor_fragment.get(port) != self.fragment_id
        ]

    def record_neighbor(self, port: int, fragment_id: int, level: int) -> None:
        self.neighbor_fragment[port] = fragment_id
        self.neighbor_level[port] = level


def check_fldt(
    graph: WeightedGraph, states: Mapping[int, LDTState]
) -> Dict[int, Set[int]]:
    """Verify that per-node states form a valid FLDT; return the fragments.

    Checks, for every fragment (group of nodes sharing a fragment ID):

    * exactly one root, whose ID equals the fragment ID and whose level is 0;
    * parent/child pointers are symmetric (``v`` is a child of ``u`` on port
      ``p`` iff ``u`` is ``v``'s parent via the matching port);
    * every non-root's level is its parent's level plus one (hence levels
      are exact hop distances from the root and the structure is acyclic);
    * fragments are connected.

    Returns ``{fragment_id: set of member node IDs}``.  Raises
    ``AssertionError`` with a diagnostic message on any violation.
    """
    # Pass 1: pointer symmetry and level arithmetic.
    for node_id, state in states.items():
        if state.node_id != node_id:
            raise AssertionError(f"state of node {node_id} claims ID {state.node_id}")
        ports = graph.ports_of(node_id)
        if state.is_root:
            if state.level != 0:
                raise AssertionError(
                    f"root {node_id} has level {state.level} (must be 0)"
                )
            if state.fragment_id != node_id:
                raise AssertionError(
                    f"root {node_id} has fragment ID {state.fragment_id}"
                )
        else:
            if state.parent_port not in ports:
                raise AssertionError(
                    f"node {node_id} has invalid parent port {state.parent_port}"
                )
            parent_id, parent_port, _ = ports[state.parent_port]
            parent_state = states[parent_id]
            if parent_port not in parent_state.children_ports:
                raise AssertionError(
                    f"node {node_id} claims parent {parent_id}, but the parent "
                    f"does not list it as a child"
                )
            if parent_state.fragment_id != state.fragment_id:
                raise AssertionError(
                    f"node {node_id} (fragment {state.fragment_id}) has parent "
                    f"{parent_id} in fragment {parent_state.fragment_id}"
                )
            if state.level != parent_state.level + 1:
                raise AssertionError(
                    f"node {node_id} has level {state.level} but its parent "
                    f"{parent_id} has level {parent_state.level}"
                )
        for child_port in state.children_ports:
            if child_port == state.parent_port:
                raise AssertionError(
                    f"node {node_id}: port {child_port} is both parent and child"
                )
            if child_port not in ports:
                raise AssertionError(
                    f"node {node_id} has invalid child port {child_port}"
                )
            child_id, its_port, _ = ports[child_port]
            child_state = states[child_id]
            if child_state.parent_port != its_port:
                raise AssertionError(
                    f"node {node_id} lists {child_id} as child, but {child_id}'s "
                    f"parent port is {child_state.parent_port} (expected {its_port})"
                )

    # Pass 2: group into fragments, check unique roots and connectivity.
    fragments: Dict[int, Set[int]] = {}
    for node_id, state in states.items():
        fragments.setdefault(state.fragment_id, set()).add(node_id)
    for fragment_id, members in fragments.items():
        roots = [m for m in members if states[m].is_root]
        if len(roots) != 1:
            raise AssertionError(
                f"fragment {fragment_id} has {len(roots)} roots: {sorted(roots)}"
            )
        if roots[0] != fragment_id:
            raise AssertionError(
                f"fragment {fragment_id} is rooted at {roots[0]}"
            )
        # Connectivity: walk down from the root over child ports.
        seen = {roots[0]}
        stack = [roots[0]]
        while stack:
            node = stack.pop()
            ports = graph.ports_of(node)
            for child_port in states[node].children_ports:
                child_id = ports[child_port][0]
                if child_id not in seen:
                    seen.add(child_id)
                    stack.append(child_id)
        if seen != members:
            raise AssertionError(
                f"fragment {fragment_id}: root reaches {len(seen)} nodes but the "
                f"fragment has {len(members)}"
            )
    return fragments


def fragment_tree_edges(
    graph: WeightedGraph, states: Mapping[int, LDTState]
) -> Set[int]:
    """Return the weights of every tree edge across all fragments."""
    weights: Set[int] = set()
    for node_id, state in states.items():
        ports = graph.ports_of(node_id)
        for port in state.tree_ports():
            weights.add(ports[port][2])
    return weights
