"""``Log-Star-Coloring`` — the Corollary 1 alternative to ``Fast-Awake-Coloring``.

The paper's remark after Theorem 2: the ``N``-stage colouring is the only
reason for the ``O(nN log n)`` round complexity; replacing it with a
classical ``O(log* n)`` distributed colouring yields ``O(log n log* n)``
awake time and ``O(n log n log* n)`` run time (Corollary 1).

This module implements that replacement on the valid-MOE supergraph ``G'``:

**Structure of G'.**  Every ``G'`` edge is the (valid) outgoing MOE of its
source fragment, so orienting each edge along its source's MOE gives every
fragment out-degree ≤ 1 — exactly the shape Cole–Vishkin's deterministic
coin tossing needs.  (As an undirected graph ``G'`` is in fact a forest:
MOE edges can only close mutual 2-cycles, which collapse to single
undirected edges.)

**Phase 1 — Cole–Vishkin reduction** (``cv_iterations(N)`` iterations, each
3 blocks): starting from the distinct fragment IDs, every fragment
repeatedly recolours to ``2i + bit_i(own)`` where ``i`` is the lowest bit
position in which its colour differs from its out-neighbour's (fragments
with no valid outgoing MOE use the virtual neighbour ``own XOR 1``).  Each
iteration shrinks ``b``-bit colours to ``O(log b)``-bit colours while
preserving properness along every out-edge — hence along every ``G'`` edge
— reaching the fixed point ``{0..5}`` after ``log* N + O(1)`` iterations.

**Phase 2 — greedy relabelling to the 5-colour priority palette** (6
stages of 5 blocks): colour classes ``0..5`` relabel in order; a fragment
picks the highest-priority palette colour not taken by an
already-relabelled neighbour (degree ≤ 4, so 5 colours suffice).  The
first class to act in each component takes **Blue**, and a fragment can
only avoid a colour its neighbour already holds — so Lemma 4's counting
(``#Red ≤ 4·#Blue``, …) and therefore the whole Deterministic-MST progress
analysis carry over unchanged.

Costs per invocation: ``O(log* N)`` awake rounds per node and
``(3·cv_iterations(N) + 33)·(2n+2) = O(n log* N)`` rounds — independent of
``N`` up to the iterated logarithm, which is the entire point.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.sim import NodeContext

from .coloring import STAGE_BLOCKS, highest_priority_free_color
from .ldt import LDTState
from .schedule import BlockClock
from .toolbox import (
    NOTHING,
    fragment_broadcast,
    neighbor_awareness,
    transmit_adjacent,
    upcast_min,
)

#: CV colours converge into {0 .. CV_FIXPOINT - 1}.
CV_FIXPOINT = 6


def cv_step(own: int, out_neighbor: Optional[int]) -> int:
    """One Cole–Vishkin recolouring: ``2i + bit_i(own)``.

    ``i`` is the lowest bit position where ``own`` and the out-neighbour's
    colour differ; without an out-neighbour the virtual colour
    ``own XOR 1`` is used (they differ in bit 0).
    """
    other = (own ^ 1) if out_neighbor is None else out_neighbor
    if other == own:
        raise ValueError(
            f"CV invariant broken: colour {own} equals the out-neighbour's"
        )
    difference = own ^ other
    i = (difference & -difference).bit_length() - 1
    return 2 * i + (own >> i & 1)


def cv_iterations(max_id: int) -> int:
    """Iterations until colours drawn from ``[0, max_id]`` fit in {0..5}.

    Computable by every node from the globally known ``N``, so all clocks
    agree on the schedule.  Grows as ``log* N``: 2 iterations suffice for
    ``N < 2^6``, 3 for ``N < 2^64``, ...
    """
    bound = max(2, max_id + 1)  # colours start as IDs in [1, N]
    iterations = 0
    while bound > CV_FIXPOINT:
        bits = max(1, (bound - 1).bit_length())
        bound = 2 * bits
        iterations += 1
    # One extra settling iteration: the bound arithmetic above is on
    # magnitudes; properness needs every fragment to take the final step.
    return iterations + 1


def _merge_capped_pairs(a, b):
    """Union of ``(fragment, value)`` pair tuples, capped by G' degree."""
    if a is NOTHING:
        return b
    if b is NOTHING:
        return a
    union = tuple(sorted(set(a) | set(b)))
    if len(union) > 4:
        raise RuntimeError(f"more than 4 G' neighbours reported: {union}")
    return union


def _collect_pairs(inbox):
    """Inbox of ``(fragment, value)`` pairs -> this node's sorted tuple."""
    if not inbox:
        return NOTHING
    return tuple(sorted(set(inbox.values())))


def logstar_coloring(
    ctx: NodeContext,
    ldt: LDTState,
    clock: BlockClock,
    neighbor_fragments: Set[int],
    gprime_ports: Set[int],
    out_port: Optional[int],
):
    """Colour the supergraph with the 5-colour priority palette in
    ``O(log* N)`` awake rounds; returns ``(own colour, {nbr frag: colour})``.

    Parameters match :func:`repro.core.coloring.fast_awake_coloring`, plus
    ``out_port`` — set only at the node owning the fragment's *valid*
    outgoing MOE (``None`` everywhere else).
    """
    n, max_id = ctx.n, ctx.max_id

    # ------------------------------------------------------------------
    # Phase 1: Cole–Vishkin iterations on the MOE orientation.
    # ------------------------------------------------------------------
    color = ldt.fragment_id
    for _ in range(cv_iterations(max_id)):
        # Block A: colours cross every G' edge; the OUT owner keeps the
        # colour arriving on its out-port.
        inbox = yield from transmit_adjacent(
            ctx, ldt, clock.take(), {port: color for port in gprime_ports}
        )
        heard_out = NOTHING
        if out_port is not None and out_port in inbox:
            heard_out = inbox[out_port]
        # Blocks B + C: out-neighbour colour to the root, new colour back.
        out_color = yield from upcast_min(ctx, ldt, clock.take(), heard_out)
        if ldt.is_root:
            message = cv_step(color, out_color if out_color is not NOTHING else None)
        else:
            message = NOTHING
        color = yield from fragment_broadcast(ctx, ldt, clock.take(), message)

    if not 0 <= color < CV_FIXPOINT:  # pragma: no cover - CV guarantee
        raise RuntimeError(f"CV did not converge: colour {color}")

    # ------------------------------------------------------------------
    # Interlude: learn every G' neighbour's CV class (one
    # Neighbor-Awareness), so each fragment knows which relabelling
    # stages to attend.
    # ------------------------------------------------------------------
    nbr_classes_list = yield from neighbor_awareness(
        ctx,
        ldt,
        clock,
        {port: (ldt.fragment_id, color) for port in gprime_ports},
        merge=_merge_capped_pairs,
        collect=_collect_pairs,
    )
    if nbr_classes_list is NOTHING:
        nbr_classes_list = ()
    nbr_class: Dict[int, int] = {frag: cls for frag, cls in nbr_classes_list}
    if set(nbr_class) != set(neighbor_fragments):
        raise RuntimeError(
            f"node {ctx.node_id}: CV class exchange saw {sorted(nbr_class)} "
            f"but NBR-INFO says {sorted(neighbor_fragments)}"
        )

    # ------------------------------------------------------------------
    # Phase 2: greedy relabelling, one stage per CV class.
    # ------------------------------------------------------------------
    own_final: Optional[int] = None
    nbr_final: Dict[int, int] = {}
    for stage in range(CV_FIXPOINT):
        attends = color == stage or stage in nbr_class.values()
        if not attends:
            clock.skip(STAGE_BLOCKS)
            continue
        if color == stage:
            candidate = highest_priority_free_color(nbr_final.values())
            agreed = yield from upcast_min(ctx, ldt, clock.take(), candidate)
            own_final = yield from fragment_broadcast(
                ctx, ldt, clock.take(), agreed if ldt.is_root else NOTHING
            )
            yield from neighbor_awareness(
                ctx,
                ldt,
                clock,
                {port: (ldt.fragment_id, own_final) for port in gprime_ports},
                merge=_merge_capped_pairs,
                collect=_collect_pairs,
            )
        else:
            clock.skip(2)
            stage_results = yield from neighbor_awareness(
                ctx,
                ldt,
                clock,
                merge=_merge_capped_pairs,
                collect=_collect_pairs,
            )
            for fragment, final in stage_results or ():
                nbr_final[fragment] = final

    if own_final is None:  # pragma: no cover - every fragment has a class
        raise RuntimeError(f"node {ctx.node_id} never relabelled")
    return own_final, nbr_final


def logstar_total_blocks(max_id: int) -> int:
    """Blocks one Log-Star-Coloring invocation consumes."""
    return 3 * cv_iterations(max_id) + 3 + STAGE_BLOCKS * CV_FIXPOINT
