"""``Merging-Fragments`` — re-rooting and absorbing tails fragments.

Implements the three-block procedure of Section 2.2 (illustrated by the
paper's Figures 2–5): a *tails* fragment ``T`` with a merge edge
``(u_T, u_H)`` into a *heads* fragment ``H`` re-roots itself at ``u_T``,
adopts ``H``'s fragment ID, and recomputes every member's level as its
distance from ``H``'s root — all in ``O(1)`` awake rounds per node.

Block 1 — ``Transmit-Adjacent``:
    every node announces ``(fragment ID, level, merging?)``; ``u_T`` marks
    the merge port, so ``u_H`` learns it gains a child, and ``u_T`` learns
    ``H``'s fragment ID and ``u_H``'s level (hence its own new level).

Block 2 — first ``Transmission-Schedule`` instance (up pass in the *old*
    tree): the path from ``u_T`` to ``T``'s old root adopts
    ``NEW-LEVEL-NUM`` / ``NEW-FRAGMENT-ID`` hop by hop, reversing its parent
    pointers.

Block 3 — second instance (down pass in the old tree): all remaining nodes
    adopt the new values from their (unchanged) parents.

The paper's prose for the down pass says a node updates "if its
NEW-LEVEL-NUM is non-empty and it receives a non-empty value"; taken
literally that would re-update path nodes (whose values are already final)
and never update off-path nodes (whose values are empty).  We implement the
evidently intended rule — update exactly the nodes whose value is still
empty — which reproduces Figures 3–5 exactly.

Only nodes of a *merging* fragment wake during blocks 2–3 (the fragment
learned whether it merges in step (i)); everybody else sleeps through them,
keeping the per-phase awake cost at ``O(1)``.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.sim import Awake, NodeContext

from .ldt import LDTState
from .schedule import BlockClock
from .toolbox import transmit_adjacent

#: Number of blocks one Merging-Fragments instance consumes.
MERGE_BLOCKS = 3


def merging_fragments(
    ctx: NodeContext,
    ldt: LDTState,
    clock: BlockClock,
    merge_port: Optional[int] = None,
    fragment_merging: bool = False,
):
    """Run one ``Merging-Fragments`` instance; mutates ``ldt`` in place.

    Parameters
    ----------
    merge_port:
        Set only at ``u_T`` — the port of the merge edge along which this
        node's fragment is absorbed.  Implies ``fragment_merging``.
    fragment_merging:
        True at every node whose fragment merges away this instance (tails
        fragments).  Nodes of surviving fragments leave it False and skip
        the re-orientation blocks entirely.
    """
    if merge_port is not None and not fragment_merging:
        raise ValueError("merge_port given but fragment_merging is False")

    block_ta = clock.take()
    block_up = clock.take()
    block_down = clock.take()

    # ------------------------------------------------------------------
    # Block 1: announce (fragment, level, merging?) to all neighbours.
    # ------------------------------------------------------------------
    announcements = {
        port: (ldt.fragment_id, ldt.level, 1 if port == merge_port else 0)
        for port in ctx.ports
    }
    with ctx.span("block:merge_announce"):
        inbox = yield from transmit_adjacent(ctx, ldt, block_ta, announcements)

    pending_children: Set[int] = set()
    for port, (fragment, level, merging) in inbox.items():
        ldt.record_neighbor(port, fragment, level)
        if merging:
            pending_children.add(port)

    if merge_port is not None and pending_children:
        # Merge edges always point from a merging fragment into a surviving
        # one, so a node can never simultaneously leave and gain a subtree.
        raise RuntimeError(
            f"node {ctx.node_id} both merges away (port {merge_port}) and "
            f"receives merges on ports {sorted(pending_children)}"
        )

    new_level: Optional[int] = None
    new_fragment: Optional[int] = None
    new_parent_port: Optional[int] = None
    if merge_port is not None:
        if merge_port not in ldt.neighbor_fragment:
            raise RuntimeError(
                f"node {ctx.node_id}: no announcement heard on merge port "
                f"{merge_port}"
            )
        new_fragment = ldt.neighbor_fragment[merge_port]
        new_level = ldt.neighbor_level[merge_port] + 1
        new_parent_port = merge_port

    old_level = ldt.level
    old_parent = ldt.parent_port
    old_children = set(ldt.children_ports)

    if fragment_merging:
        # --------------------------------------------------------------
        # Block 2: up pass — re-level and reverse the u_T -> old-root path.
        # --------------------------------------------------------------
        with ctx.span("block:merge_up"):
            if old_children:
                up_inbox = yield Awake(block_up.up_receive(old_level))
                for port in old_children:
                    if port in up_inbox:
                        received_level, received_fragment = up_inbox[port]
                        if new_level is not None:
                            raise RuntimeError(
                                f"node {ctx.node_id} on two merge paths at once"
                            )
                        new_level = received_level + 1
                        new_fragment = received_fragment
                        new_parent_port = port
            if old_parent is not None:
                sends = {}
                if new_level is not None:
                    sends[old_parent] = (new_level, new_fragment)
                yield Awake(block_up.up_send(old_level), sends)

        # --------------------------------------------------------------
        # Block 3: down pass — all remaining nodes adopt from their parent.
        # --------------------------------------------------------------
        with ctx.span("block:merge_down"):
            if old_parent is not None:
                down_inbox = yield Awake(block_down.down_receive(old_level))
                if new_level is None and old_parent in down_inbox:
                    received_level, received_fragment = down_inbox[old_parent]
                    new_level = received_level + 1
                    new_fragment = received_fragment
                    # Off-path: parent and children pointers are unchanged.
            if old_children:
                sends = {}
                if new_level is not None:
                    sends = {
                        port: (new_level, new_fragment) for port in old_children
                    }
                yield Awake(block_down.down_send(old_level), sends)

        if new_level is None:
            raise RuntimeError(
                f"node {ctx.node_id}: fragment_merging was set but no new "
                "fragment values arrived — the fragment had no merge edge"
            )

    # ------------------------------------------------------------------
    # Commit: apply NEW-FRAGMENT-ID / NEW-LEVEL-NUM and re-orientation,
    # then absorb incoming subtrees announced in block 1.
    # ------------------------------------------------------------------
    if new_level is not None:
        ldt.level = new_level
        ldt.fragment_id = new_fragment
        if new_parent_port is not None:
            if merge_port is not None:
                # u_T: all old tree neighbours become children.
                children = set(old_children)
                if old_parent is not None:
                    children.add(old_parent)
            else:
                # Path node: the path child becomes the parent; the old
                # parent (if any) and remaining children become children.
                children = old_children - {new_parent_port}
                if old_parent is not None:
                    children.add(old_parent)
            ldt.parent_port = new_parent_port
            ldt.children_ports = children
    ldt.children_ports |= pending_children
