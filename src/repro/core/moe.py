"""MOE sparsification for ``Deterministic-MST`` (Section 2.3, step (i)).

The deterministic algorithm bounds the fragment supergraph's degree by 4 so
that a 5-colour palette suffices: each fragment keeps its (single) outgoing
MOE only if the *target* fragment selects it, and each fragment selects at
most 3 of its incoming MOEs as *valid*.

Selection is implemented with the paper's virtual tokens over one
``Transmission-Schedule`` up pass and one down pass:

* **up pass** — every node reports how many incoming-MOE edges live in its
  subtree (a node may host several: multiple fragments' MOEs may point at
  it, so we count *edges*, the natural generalisation of the paper's
  "incoming MOE nodes");
* **down pass** — the root mints ``min(3, total)`` tokens and pushes them
  down; each node first satisfies its own incoming-MOE edges (cheapest edge
  first — the paper says "arbitrarily"; we fix the canonical deterministic
  choice), then forwards leftovers to children in ascending port order.

Both passes cost ``O(1)`` awake rounds per node and one block each.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.sim import Awake, NodeContext

from .ldt import LDTState
from .schedule import BlockClock

#: Maximum number of incoming MOEs a fragment accepts as valid.
MAX_VALID_INCOMING = 3

#: Direction tags for NBR-INFO entries (who initiated the valid MOE).
DIR_IN, DIR_OUT = 0, 1

#: One NBR-INFO entry: (neighbour fragment ID, edge weight, direction).
NbrEntry = Tuple[int, int, int]


def incoming_moe_ports(
    ctx: NodeContext,
    ldt: LDTState,
    neighbor_moe: Dict[int, int],
) -> List[int]:
    """Ports of this node that carry an incoming MOE.

    ``neighbor_moe`` maps each port to the *fragment MOE weight* announced
    by the neighbour on that port.  The port's edge is an incoming MOE iff
    the neighbour is in another fragment and that fragment's MOE is exactly
    this edge (weights are distinct, so weight equality identifies it).
    """
    ports = []
    for port in ctx.ports:
        if ldt.neighbor_fragment.get(port) == ldt.fragment_id:
            continue
        if neighbor_moe.get(port) == ctx.port_weights[port]:
            ports.append(port)
    return ports


def select_incoming_moes(
    ctx: NodeContext,
    ldt: LDTState,
    clock: BlockClock,
    incoming_ports: Iterable[int],
):
    """Token-select at most :data:`MAX_VALID_INCOMING` incoming MOEs.

    Returns the set of this node's *selected* incoming-MOE ports.  Uses two
    blocks.  Nodes whose subtree contains no incoming MOE sleep through
    both (their parents send them no tokens and expect no counts).
    """
    block_up = clock.take()
    block_down = clock.take()

    own_ports = sorted(incoming_ports, key=lambda port: ctx.port_weights[port])
    child_counts: Dict[int, int] = {}
    total = len(own_ports)

    # Up pass: aggregate subtree counts of incoming-MOE edges.
    if ldt.children_ports:
        inbox = yield Awake(block_up.up_receive(ldt.level))
        for port in ldt.children_ports:
            count = inbox.get(port, 0)
            child_counts[port] = count
            total += count
    if not ldt.is_root and total > 0:
        yield Awake(block_up.up_send(ldt.level), {ldt.parent_port: total})

    if total == 0:
        # Nothing below us: no tokens will ever arrive.
        return set()

    # Down pass: receive tokens, keep some, forward the rest.
    if ldt.is_root:
        tokens = min(MAX_VALID_INCOMING, total)
    else:
        inbox = yield Awake(block_down.down_receive(ldt.level))
        tokens = inbox.get(ldt.parent_port, 0)

    keep = min(tokens, len(own_ports))
    selected: Set[int] = set(own_ports[:keep])
    tokens -= keep

    if ldt.children_ports:
        sends: Dict[int, int] = {}
        for port in sorted(child_counts):
            if tokens <= 0:
                break
            grant = min(tokens, child_counts[port])
            if grant > 0:
                sends[port] = grant
                tokens -= grant
        if sends:
            # Children with incoming MOEs below them wake to listen; an
            # empty inbox means zero tokens, so we only wake when we
            # actually grant some.
            yield Awake(block_down.down_send(ldt.level), sends)
    return selected


def merge_nbr_info(a: Tuple[NbrEntry, ...], b: Tuple[NbrEntry, ...]):
    """Associative merge for NBR-INFO convergecasts: sorted union.

    A fragment has at most 3 valid incoming MOEs and 1 valid outgoing MOE,
    so the union can never exceed 4 entries; exceeding it indicates a
    protocol bug and raises.
    """
    if a is None:
        return b
    if b is None:
        return a
    union = tuple(sorted(set(a) | set(b)))
    if len(union) > MAX_VALID_INCOMING + 1:
        raise RuntimeError(
            f"NBR-INFO overflow: {union} has more than "
            f"{MAX_VALID_INCOMING + 1} entries"
        )
    return union
