"""``Deterministic-MST`` — the paper's awake-optimal deterministic algorithm
(Section 2.3, Theorem 2).

Replaces ``Randomized-MST``'s coin-flip restriction with a deterministic
combination of (a) MOE sparsification — every fragment keeps at most 3
*valid* incoming MOEs (token selection, :mod:`repro.core.moe`) and keeps its
outgoing MOE only if the target selected it — and (b) a 5-colouring of the
resulting degree-≤4 fragment supergraph ``G'``
(:mod:`repro.core.coloring`).  Blue fragments merge into an arbitrary
(necessarily non-Blue) ``G'`` neighbour; Blue fragments isolated in ``G'``
("singletons") then merge along their original outgoing MOE in a second
merging pass.

Phase layout (every node advances its block clock identically):

=========  =============================================================
Blocks     Purpose
=========  =============================================================
1          ``neighbor_refresh`` — fragments/levels of all neighbours
2          ``upcast_min`` — fragment MOE weight to the root
3          ``fragment_broadcast`` — MOE weight (+ halt flag) to everyone
4          ``transmit_adjacent`` — announce ``(fragment, MOE weight)``;
           detects incoming-MOE edges and the outgoing-MOE owner
5–6        token selection of ≤3 valid incoming MOEs (up + down pass)
7          ``transmit_adjacent`` — selection verdicts back to MOE owners
8          ``upcast_aggregate`` — NBR-INFO (≤4 entries) to the root
           (replaces the paper's ∞/−∞ ``Upcast-Min`` encoding with a
           direct capped list — same bits, simpler bookkeeping)
9          ``fragment_broadcast`` — NBR-INFO to every member
10..9+5N   ``Fast-Awake-Coloring`` (N stages × 5 blocks)
+3         ``Merging-Fragments`` #1 — Blue non-singletons merge
+1         ``transmit_adjacent`` refresh (the paper's explicit update)
+3         ``Merging-Fragments`` #2 — Blue singletons merge via their MOE
=========  =============================================================

Per phase: ``O(1)`` awake rounds per node and ``(16 + 5N)(2n + 2) =
O(nN)`` rounds, matching Lemma 7.  The paper's fixed phase budget
``⌈log_{240000/239999} n⌉ + 240000`` is astronomically conservative (the
analysis guarantees only that ≥ 1/240000 of fragments disappear per
phase); with adaptive termination the algorithm stops as soon as one
fragment remains — at most ``n - 1`` phases, in practice ``O(log n)`` —
without changing any message or wake-up structure.
"""

from __future__ import annotations

import math
from typing import Optional, Set

from repro.sim import NodeContext

from .coloring import BLUE, fast_awake_coloring
from .logstar import logstar_coloring
from .ldt import LDTState
from .merging import merging_fragments
from .moe import DIR_IN, DIR_OUT, merge_nbr_info, select_incoming_moes
from .mst_randomized import _output, _probe_phase_end
from .schedule import BlockClock
from .toolbox import (
    NOTHING,
    fragment_broadcast,
    local_moe,
    neighbor_refresh,
    transmit_adjacent,
    upcast_aggregate,
    upcast_min,
)

#: Fixed (non-coloring) blocks consumed per phase.
PHASE_FIXED_BLOCKS = 16

#: The paper's pessimistic contraction base.
CONTRACTION_BASE = 240000 / 239999


def deterministic_phase_count(n: int) -> int:
    """The paper's fixed phase budget: ``⌈log_{240000/239999} n⌉ + 240000``.

    Provided for completeness/documentation; it is far too conservative to
    execute literally (millions of phases even for tiny ``n``), which is why
    the runner defaults to adaptive termination.
    """
    if n < 2:
        return 0
    return math.ceil(math.log(n) / math.log(CONTRACTION_BASE)) + 240000


def deterministic_blocks_per_phase(max_id: int) -> int:
    """Blocks per phase: 16 fixed + 5 per colouring stage."""
    return PHASE_FIXED_BLOCKS + 5 * max_id


def deterministic_mst_protocol(
    ctx: NodeContext,
    termination: str = "adaptive",
    max_phases: Optional[int] = None,
    coloring: str = "fast-awake",
):
    """Protocol generator for one node running ``Deterministic-MST``.

    ``termination="adaptive"`` (default) stops when the fragment spans the
    graph; the budget then defaults to ``n`` phases (each phase with ≥ 2
    fragments removes at least one Blue fragment, so ``n`` always
    suffices).  ``termination="fixed"`` uses the paper's literal budget —
    documented but impractical to run.
    """
    if termination not in ("adaptive", "fixed"):
        raise ValueError(f"unknown termination mode {termination!r}")
    if coloring not in ("fast-awake", "log-star"):
        raise ValueError(f"unknown coloring subroutine {coloring!r}")
    adaptive = termination == "adaptive"

    ldt = LDTState.singleton(ctx.node_id)
    if max_phases is not None:
        phase_budget = max_phases
    elif adaptive:
        phase_budget = max(1, ctx.n)
    else:
        phase_budget = deterministic_phase_count(ctx.n)
    phases_run = 0

    if ctx.n == 1 or not ctx.ports:
        return _output(ctx, ldt, phases_run)

    clock = BlockClock(ctx.n)
    while phases_run < phase_budget:
        phases_run += 1
        ctx.count("algo.phases", algorithm="deterministic")

        with ctx.span("phase", phases_run):
            # --------------------------------------------------------
            # Step (i): find MOEs and sparsify them.
            # --------------------------------------------------------

            # Block 1: refresh neighbour fragments/levels.
            with ctx.span("block:neighbor_refresh"):
                yield from neighbor_refresh(ctx, ldt, clock.take())
            candidate = local_moe(ctx, ldt)
            candidate_weight = candidate[0] if candidate is not NOTHING else NOTHING

            # Block 2: fragment MOE to the root.
            with ctx.span("block:upcast_moe"):
                fragment_moe = yield from upcast_min(
                    ctx, ldt, clock.take(), candidate_weight
                )

            # Block 3: broadcast MOE weight and (adaptive) halt flag.
            if ldt.is_root:
                halt = 1 if (adaptive and fragment_moe is NOTHING) else 0
                message = (
                    fragment_moe if fragment_moe is not NOTHING else 0,
                    halt,
                )
            else:
                message = NOTHING
            with ctx.span("block:broadcast_moe"):
                moe_weight, halt = yield from fragment_broadcast(
                    ctx, ldt, clock.take(), message
                )
            if halt:
                _probe_phase_end(ctx, ldt, phases_run)
                break

            # Block 4: announce (fragment, MOE weight); detect incoming MOEs
            # and whether we own our fragment's outgoing MOE.
            with ctx.span("block:announce_moe"):
                inbox = yield from transmit_adjacent(
                    ctx,
                    ldt,
                    clock.take(),
                    {port: (ldt.fragment_id, moe_weight) for port in ctx.ports},
                )
            owner_port: Optional[int] = None
            incoming_ports = []
            for port, (nbr_fragment, nbr_moe) in inbox.items():
                if nbr_fragment == ldt.fragment_id:
                    continue
                if nbr_moe == ctx.port_weights[port]:
                    incoming_ports.append(port)
                if moe_weight and ctx.port_weights[port] == moe_weight:
                    owner_port = port

            # Blocks 5-6: token-select at most 3 valid incoming MOEs.
            with ctx.span("block:select_moes"):
                selected = yield from select_incoming_moes(
                    ctx, ldt, clock, incoming_ports
                )

            # Block 7: tell each incoming MOE's owner whether it was selected.
            verdicts = {port: (1 if port in selected else 0) for port in incoming_ports}
            with ctx.span("block:moe_verdicts"):
                inbox = yield from transmit_adjacent(ctx, ldt, clock.take(), verdicts)
            valid_out = owner_port is not None and inbox.get(owner_port) == 1

            # Block 8: NBR-INFO — the ≤4 valid MOEs of this fragment — to the
            # root; Block 9: back to every member.
            entries = [
                (ldt.neighbor_fragment[port], ctx.port_weights[port], DIR_IN)
                for port in selected
            ]
            if valid_out:
                entries.append(
                    (ldt.neighbor_fragment[owner_port], moe_weight, DIR_OUT)
                )
            my_entries = tuple(sorted(entries)) if entries else NOTHING
            with ctx.span("block:upcast_nbr_info"):
                aggregated = yield from upcast_aggregate(
                    ctx, ldt, clock.take(), my_entries, merge_nbr_info
                )
            with ctx.span("block:broadcast_nbr_info"):
                nbr_info = yield from fragment_broadcast(
                    ctx,
                    ldt,
                    clock.take(),
                    (aggregated if aggregated is not NOTHING else ())
                    if ldt.is_root
                    else NOTHING,
                )

            # --------------------------------------------------------
            # Step (ii): colour the supergraph, then merge Blue fragments.
            # --------------------------------------------------------
            ctx.probe(
                "moe_sparsify",
                phase=phases_run,
                fragment=ldt.fragment_id,
                nbr_info=tuple(nbr_info),
                selected=tuple(
                    sorted(
                        (ldt.neighbor_fragment[port], ctx.port_weights[port])
                        for port in selected
                    )
                ),
            )
            neighbor_fragments = {entry[0] for entry in nbr_info}
            gprime_ports: Set[int] = set(selected)
            if valid_out:
                gprime_ports.add(owner_port)

            with ctx.span("block:coloring"):
                if coloring == "fast-awake":
                    own_color, _nbr_colors = yield from fast_awake_coloring(
                        ctx, ldt, clock, neighbor_fragments, gprime_ports
                    )
                else:
                    # Corollary 1: Cole–Vishkin colouring in O(log* N) awake
                    # rounds and O(n log* N) rounds per phase, independent
                    # of N.
                    own_color, _nbr_colors = yield from logstar_coloring(
                        ctx,
                        ldt,
                        clock,
                        neighbor_fragments,
                        gprime_ports,
                        out_port=owner_port if valid_out else None,
                    )

            ctx.probe(
                "coloring",
                phase=phases_run,
                fragment=ldt.fragment_id,
                color=own_color,
                nbr_colors=tuple(sorted(_nbr_colors.items())),
                nbr_fragments=tuple(sorted(neighbor_fragments)),
            )

            # Merge #1: Blue fragments with G' neighbours merge into the
            # neighbour on their lightest valid MOE (canonical "arbitrary"
            # choice; every neighbour of a Blue fragment is non-Blue).
            merging_now = own_color == BLUE and bool(nbr_info)
            merge_port: Optional[int] = None
            if merging_now:
                chosen_weight = min(entry[1] for entry in nbr_info)
                for port in gprime_ports:
                    if ctx.port_weights[port] == chosen_weight:
                        merge_port = port
            with ctx.span("merge", 1):
                yield from merging_fragments(
                    ctx, ldt, clock, merge_port=merge_port, fragment_merging=merging_now
                )

            # The paper's explicit Transmit-Adjacent so singleton fragments
            # see their neighbours' post-merge fragments/levels.
            with ctx.span("block:refresh_after_merge"):
                yield from neighbor_refresh(ctx, ldt, clock.take())

            # Merge #2: Blue singletons merge along their original outgoing
            # MOE into whichever fragment now contains its far endpoint.
            merging_singleton = own_color == BLUE and not nbr_info
            singleton_port = (
                owner_port if (merging_singleton and owner_port is not None) else None
            )
            with ctx.span("merge", 2):
                yield from merging_fragments(
                    ctx,
                    ldt,
                    clock,
                    merge_port=singleton_port,
                    fragment_merging=merging_singleton,
                )
            _probe_phase_end(ctx, ldt, phases_run)

    return _output(ctx, ldt, phases_run)
