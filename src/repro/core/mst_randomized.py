"""``Randomized-MST`` — the paper's awake-optimal randomized algorithm (§2.2).

A synchronous GHS/Borůvka variant in the sleeping model.  Each phase:

Step (i) — find and restrict MOEs:
    1. ``neighbor_refresh`` — every node learns its neighbours' current
       fragment IDs (and levels), so it can identify outgoing edges and its
       local MOE candidate.
    2. ``upcast_min`` — the fragment root learns the fragment's minimum
       outgoing edge (MOE) weight (weights are distinct, so the weight
       *is* the edge's identity).
    3. ``fragment_broadcast`` — the root flips an unbiased coin and
       broadcasts ``(MOE weight, coin, halt?)``.  A fragment with no
       outgoing edge spans the whole graph; under adaptive termination its
       root raises ``halt`` and everyone finishes this phase.
    4. ``transmit_adjacent`` — every node announces ``(fragment ID, coin,
       fragment MOE weight)``.  The node ``u_T`` owning the fragment's MOE
       now sees the target fragment's coin and decides validity: the MOE is
       *valid* iff its own fragment flipped tails and the target flipped
       heads.  (This restriction turns every merge component into a star of
       tails fragments around one heads fragment — constant supergraph
       diameter, hence ``O(1)``-awake merging.)
    5. ``upcast_min`` + 6. ``fragment_broadcast`` — the validity bit travels
       from ``u_T`` to the root and back to all members, so every node
       knows whether its fragment merges this phase.

Step (ii) — ``merging_fragments`` (blocks 7–9, see
    :mod:`repro.core.merging`).

Differences from the paper's prose (constant factors only, documented in
DESIGN.md): co-schedulable broadcasts are combined into a single block
(e.g. the MOE broadcast, the coin broadcast, and the halt flag share block
3), and the kick-off ``Fragment-Broadcast("find the MOE")`` is subsumed by
the globally known phase plan — every node already knows which block does
what.

Complexities (Theorem 1): ``O(log n)`` awake w.h.p. — 9 blocks/phase with
``O(1)`` awake rounds each over ``O(log n)`` phases — and ``O(n log n)``
round complexity — each block spans ``2n + 2`` rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.sim import NodeContext

from .ldt import LDTState
from .merging import merging_fragments
from .schedule import BlockClock
from .toolbox import (
    NOTHING,
    fragment_broadcast,
    local_moe,
    neighbor_refresh,
    transmit_adjacent,
    upcast_min,
)

#: Blocks consumed by one phase of Randomized-MST.
PHASE_BLOCKS = 9

#: Coin values (the root flips; tails fragments merge into heads fragments).
TAILS, HEADS = 0, 1


@dataclass(frozen=True)
class MSTNodeOutput:
    """What each node knows at termination (the paper's output convention).

    Besides the incident MST edges, the node retains its final LDT labels —
    the tree is immediately usable for follow-up applications (broadcast,
    convergecast) via the ``O(1)``-awake toolbox procedures.
    """

    node_id: int
    #: Weights of this node's incident MST edges.
    mst_weights: FrozenSet[int]
    #: Final fragment ID (equal across nodes iff a single fragment remains).
    fragment_id: int
    #: Final level (hop distance to the final root).
    level: int
    #: Number of phases this node executed.
    phases: int
    #: Port towards the final tree parent (``None`` at the root).
    parent_port: Optional[int] = None
    #: Ports towards the final tree children.
    children_ports: FrozenSet[int] = frozenset()


def randomized_phase_count(n: int) -> int:
    """The paper's fixed phase budget: ``4 * ceil(log_{4/3} n) + 1``."""
    if n < 2:
        return 0
    return 4 * math.ceil(math.log(n) / math.log(4.0 / 3.0)) + 1


def randomized_mst_protocol(
    ctx: NodeContext,
    termination: str = "adaptive",
    max_phases: Optional[int] = None,
):
    """Protocol generator for one node running ``Randomized-MST``.

    Parameters
    ----------
    termination:
        ``"adaptive"`` (default): stop as soon as the fragment has no
        outgoing edge — on a connected graph that fragment is the whole
        graph, so every node halts in the same phase.  ``"fixed"``: run the
        paper's exact phase budget :func:`randomized_phase_count` with no
        early exit (the w.h.p. analysis applies to this mode).
    max_phases:
        Optional hard cap overriding the default budget (useful in tests).
    """
    output, _, _ = yield from randomized_mst_session(
        ctx, termination=termination, max_phases=max_phases
    )
    return output


def randomized_mst_session(
    ctx: NodeContext,
    termination: str = "adaptive",
    max_phases: Optional[int] = None,
):
    """Like :func:`randomized_mst_protocol`, but built for composition.

    Returns ``(output, ldt, clock)``: the final LDT state and the node's
    block clock, still globally aligned (every node consumed the same
    number of blocks, under both termination modes).  Follow-up protocols —
    e.g. repeated ``O(1)``-awake broadcasts over the freshly built MST —
    can keep ``yield from``-composing toolbox procedures on them; see
    ``examples/broadcast_application.py``.
    """
    if termination not in ("adaptive", "fixed"):
        raise ValueError(f"unknown termination mode {termination!r}")
    adaptive = termination == "adaptive"

    ldt = LDTState.singleton(ctx.node_id)
    phase_budget = max_phases if max_phases is not None else randomized_phase_count(ctx.n)
    phases_run = 0
    clock = BlockClock(ctx.n)

    if ctx.n == 1 or not ctx.ports:
        return _output(ctx, ldt, phases_run), ldt, clock

    while phases_run < phase_budget:
        phases_run += 1
        ctx.count("algo.phases", algorithm="randomized")

        with ctx.span("phase", phases_run):
            # Block 1: learn neighbours' fragments; compute local MOE
            # candidate.
            with ctx.span("block:neighbor_refresh"):
                yield from neighbor_refresh(ctx, ldt, clock.take())
            candidate = local_moe(ctx, ldt)
            candidate_weight = candidate[0] if candidate is not NOTHING else NOTHING

            # Block 2: fragment MOE = min of candidates, known at the root.
            with ctx.span("block:upcast_moe"):
                fragment_moe = yield from upcast_min(
                    ctx, ldt, clock.take(), candidate_weight
                )

            # Block 3: root broadcasts (MOE weight | 0, coin, halt?).
            if ldt.is_root:
                halt = 1 if (adaptive and fragment_moe is NOTHING) else 0
                coin = HEADS if ctx.rng.random() < 0.5 else TAILS
                message = (fragment_moe if fragment_moe is not NOTHING else 0, coin, halt)
            else:
                message = NOTHING
            with ctx.span("block:broadcast_coin"):
                moe_weight, coin, halt = yield from fragment_broadcast(
                    ctx, ldt, clock.take(), message
                )
            if halt:
                _probe_phase_end(ctx, ldt, phases_run)
                break

            # Block 4: announce (fragment, coin, MOE weight); the MOE owner
            # learns the target fragment's coin and decides validity.
            with ctx.span("block:transmit_adjacent"):
                inbox = yield from transmit_adjacent(
                    ctx,
                    ldt,
                    clock.take(),
                    {port: (ldt.fragment_id, coin, moe_weight) for port in ctx.ports},
                )
            owner_port: Optional[int] = None
            owner_valid = NOTHING
            owner_target: Optional[int] = None
            if moe_weight:
                for port, (nbr_fragment, nbr_coin, _) in inbox.items():
                    if (
                        ctx.port_weights[port] == moe_weight
                        and nbr_fragment != ldt.fragment_id
                    ):
                        owner_port = port
                        owner_target = nbr_fragment
                        owner_valid = (
                            1 if (coin == TAILS and nbr_coin == HEADS) else 0
                        )

            # Blocks 5-6: validity bit up to the root and back to everyone.
            with ctx.span("block:upcast_valid"):
                valid_bit = yield from upcast_min(ctx, ldt, clock.take(), owner_valid)
            with ctx.span("block:broadcast_valid"):
                valid_bit = yield from fragment_broadcast(
                    ctx,
                    ldt,
                    clock.take(),
                    valid_bit if ldt.is_root else NOTHING,
                )

            fragment_merging = coin == TAILS and valid_bit == 1
            merge_port = owner_port if (fragment_merging and owner_port is not None and owner_valid == 1) else None

            ctx.probe(
                "merge_decision",
                phase=phases_run,
                fragment=ldt.fragment_id,
                coin=coin,
                moe=moe_weight,
                merging=1 if fragment_merging else 0,
                owner=1 if owner_port is not None else 0,
                valid=owner_valid if owner_port is not None else None,
                target=owner_target,
            )

            # Blocks 7-9: merge tails fragments into their heads fragments
            # (:func:`merging_fragments` opens one span per block).
            yield from merging_fragments(
                ctx,
                ldt,
                clock,
                merge_port=merge_port,
                fragment_merging=fragment_merging,
            )
            _probe_phase_end(ctx, ldt, phases_run)

    return _output(ctx, ldt, phases_run), ldt, clock


def _probe_phase_end(ctx: NodeContext, ldt: LDTState, phase: int) -> None:
    """Snapshot the node's LDT labels for phase-boundary invariant monitors.

    Shared by both MST algorithms.  A no-op unless the simulator was built
    with ``monitors=...`` (see :meth:`repro.sim.node.NodeContext.probe`).
    """
    ctx.probe(
        "phase_end",
        phase=phase,
        fragment=ldt.fragment_id,
        level=ldt.level,
        parent_port=ldt.parent_port,
        children_ports=tuple(sorted(ldt.children_ports)),
        tree_weights=tuple(
            sorted(ctx.port_weights[port] for port in ldt.tree_ports())
        ),
    )


def _output(ctx: NodeContext, ldt: LDTState, phases: int) -> MSTNodeOutput:
    weights = frozenset(ctx.port_weights[port] for port in ldt.tree_ports())
    return MSTNodeOutput(
        node_id=ctx.node_id,
        mst_weights=weights,
        fragment_id=ldt.fragment_id,
        level=ldt.level,
        phases=phases,
        parent_port=ldt.parent_port,
        children_ports=frozenset(ldt.children_ports),
    )
