"""High-level entry points: run an MST algorithm on a graph, get results.

This is the public API most users want:

.. code-block:: python

    from repro import run_randomized_mst
    from repro.graphs import random_connected_graph

    graph = random_connected_graph(64, seed=7)
    result = run_randomized_mst(graph, seed=7)
    print(result.mst_weights)          # the MST edge set (by weight)
    print(result.metrics.max_awake)    # awake complexity of this run
    print(result.metrics.rounds)       # round complexity of this run

Each runner executes the corresponding node protocol on every node under
:class:`repro.sim.SleepingSimulator`, validates the paper's output
convention (every node knows its incident MST edges and endpoint views
agree), and packages metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from repro.graphs import (
    WeightedGraph,
    check_local_mst_outputs,
    mst_weight_set,
    require_sleeping_model_inputs,
)
from repro.sim import Metrics, SimulationResult, SleepingSimulator
from repro.sim.array_engine import resolve_engine
from repro.sim.errors import UnsupportedFeatureError

from .mst_randomized import MSTNodeOutput, randomized_mst_protocol


class RunResult:
    """Problem-agnostic outcome of one sleeping-model execution.

    Concrete problems subclass this with their own output fields
    (:class:`MSTRunResult` here, ``MISRunResult`` in
    :mod:`repro.problems.mis.runner`) and must provide ``algorithm``,
    ``metrics``, ``phases``, and ``simulation`` attributes plus an
    :meth:`is_correct` check against the problem's reference output.
    Generic drivers — ``verify_or_diagnose``, ``execute_job``, the CLI —
    only touch this surface.
    """

    #: Which registered problem this result answers.
    problem: str = "generic"

    @property
    def max_awake(self) -> int:
        return self.metrics.max_awake

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    @property
    def spans(self):
        """Span-attributed awake accounting (:class:`repro.obs.SpanLog`).

        Populated when the run was executed with ``observe=True``;
        ``None`` otherwise.
        """
        return self.simulation.spans

    @property
    def monitors(self):
        """The attached :class:`repro.invariants.MonitorSet`, if any.

        Populated when the run was executed with ``monitors=...``
        (forwarded through ``sim_kwargs``); ``None`` otherwise.
        """
        return self.simulation.monitors

    @property
    def violations(self):
        """Invariant violations recorded by attached monitors (``[]``
        when none were attached)."""
        return self.simulation.violations

    def is_correct(self, graph: WeightedGraph) -> bool:
        """Check the output against the problem's reference solution."""
        raise NotImplementedError


@dataclass
class MSTRunResult(RunResult):
    """Outcome of one distributed-MST execution."""

    #: Which algorithm produced this result.
    algorithm: str
    #: Globally claimed MST edge set (union of per-node outputs, validated
    #: for endpoint agreement).
    mst_weights: Set[int]
    #: Per-node outputs keyed by node ID.
    node_outputs: Dict[int, MSTNodeOutput]
    #: Simulation metrics (awake complexity, round complexity, messages...).
    metrics: Metrics
    #: Maximum number of phases executed by any node.
    phases: int
    #: The raw simulation result (trace/knowledge when enabled).
    simulation: SimulationResult

    problem = "mst"

    def is_correct_mst(self, graph: WeightedGraph) -> bool:
        """Check against the (unique) reference MST."""
        return self.mst_weights == mst_weight_set(graph)

    def is_correct(self, graph: WeightedGraph) -> bool:
        """Problem-generic alias for :meth:`is_correct_mst`."""
        return self.is_correct_mst(graph)


def _package(
    graph: WeightedGraph,
    algorithm: str,
    simulation: SimulationResult,
    *,
    verify: bool,
) -> MSTRunResult:
    outputs: Dict[int, MSTNodeOutput] = dict(simulation.node_results)
    mst_weights = check_local_mst_outputs(
        graph, {node: out.mst_weights for node, out in outputs.items()}
    )
    result = MSTRunResult(
        algorithm=algorithm,
        mst_weights=mst_weights,
        node_outputs=outputs,
        metrics=simulation.metrics,
        phases=max((out.phases for out in outputs.values()), default=0),
        simulation=simulation,
    )
    if verify and not result.is_correct_mst(graph):
        raise AssertionError(
            f"{algorithm} produced a wrong edge set on n={graph.n}: "
            f"{sorted(mst_weights)[:10]}..."
        )
    return result


def _run(
    graph: WeightedGraph,
    algorithm: str,
    protocol_factory: Any,
    *,
    seed: int,
    verify: bool,
    **sim_kwargs: Any,
) -> MSTRunResult:
    require_sleeping_model_inputs(graph)
    simulator = SleepingSimulator(
        graph, protocol_factory, seed=seed, **sim_kwargs
    )
    return _package(graph, algorithm, simulator.run(), verify=verify)


def run_randomized_mst(
    graph: WeightedGraph,
    seed: int = 0,
    termination: str = "adaptive",
    max_phases: Optional[int] = None,
    verify: bool = False,
    engine: Optional[str] = None,
    **sim_kwargs: Any,
) -> MSTRunResult:
    """Run ``Randomized-MST`` (Section 2.2 / Theorem 1) on ``graph``.

    Parameters
    ----------
    seed:
        Master seed for all node coins; identical seeds reproduce identical
        executions.
    termination:
        ``"adaptive"`` (default) or ``"fixed"`` — see
        :func:`repro.core.mst_randomized.randomized_mst_protocol`.
    max_phases:
        Optional phase-budget override.
    verify:
        When true, assert the output equals the reference MST (the
        algorithm is Monte Carlo under ``"fixed"`` termination, so a
        negligible failure probability exists there).
    engine:
        Simulation backend: ``"coroutine"`` (default) runs one protocol
        generator per node under :class:`repro.sim.SleepingSimulator`;
        ``"array"`` runs the vectorized numpy backend
        (:mod:`repro.core.array_ops`), byte-identical in results and
        metrics on the supported perfect-channel configuration and ~20x+
        faster at n >= 4096 (see docs/performance.md).  Unsupported
        feature combinations raise
        :class:`repro.sim.errors.UnsupportedFeatureError`.
    sim_kwargs:
        Forwarded to :class:`repro.sim.SleepingSimulator` (e.g. ``trace=True``,
        ``observe=True`` for span-based awake accounting,
        ``strict_congest=False``).
    """
    if resolve_engine(engine) == "array":
        from .array_ops import run_randomized_mst_array

        require_sleeping_model_inputs(graph)
        simulation = run_randomized_mst_array(
            graph,
            seed=seed,
            termination=termination,
            max_phases=max_phases,
            **sim_kwargs,
        )
        return _package(graph, "Randomized-MST", simulation, verify=verify)

    def factory(ctx):
        return randomized_mst_protocol(
            ctx, termination=termination, max_phases=max_phases
        )

    return _run(
        graph,
        "Randomized-MST",
        factory,
        seed=seed,
        verify=verify,
        **sim_kwargs,
    )


def run_deterministic_mst(
    graph: WeightedGraph,
    seed: int = 0,
    termination: str = "adaptive",
    max_phases: Optional[int] = None,
    verify: bool = False,
    coloring: str = "fast-awake",
    engine: Optional[str] = None,
    **sim_kwargs: Any,
) -> MSTRunResult:
    """Run ``Deterministic-MST`` (Section 2.3 / Theorem 2) on ``graph``.

    ``seed`` only affects nothing algorithmic (the algorithm is
    deterministic); it is accepted for interface symmetry.  ``coloring``
    selects the fragment-colouring subroutine: ``"fast-awake"`` is the
    paper's ``Fast-Awake-Coloring`` (``O(1)`` awake, ``O(nN)`` rounds per
    phase).  Only the ``"coroutine"`` engine implements this algorithm;
    ``engine="array"`` raises
    :class:`repro.sim.errors.UnsupportedFeatureError`.
    """
    if resolve_engine(engine) == "array":
        raise UnsupportedFeatureError(
            "Deterministic-MST", "only Randomized-MST is vectorized"
        )
    from .mst_deterministic import deterministic_mst_protocol

    def factory(ctx):
        return deterministic_mst_protocol(
            ctx,
            termination=termination,
            max_phases=max_phases,
            coloring=coloring,
        )

    return _run(
        graph,
        "Deterministic-MST",
        factory,
        seed=seed,
        verify=verify,
        **sim_kwargs,
    )
