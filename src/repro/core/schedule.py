"""``Transmission-Schedule`` — the paper's wake-up timetable (Appendix B).

Every LDT procedure runs inside a *block* of ``2n + 2`` consecutive rounds.
Within a block starting at absolute round ``start``, a node whose distance
from its fragment root is ``level`` uses five named offsets (1-based within
the block; absolute round = ``start + offset - 1``):

=================  =====================  =============================
Name               Offset                 Purpose
=================  =====================  =============================
Down-Receive       ``level``              hear from parent
Down-Send          ``level + 1``          forward to children
Side-Send-Receive  ``n + 1``              talk to adjacent fragments
Up-Receive         ``2n - level + 1``     hear from children
Up-Send            ``2n - level + 2``     forward to parent
=================  =====================  =============================

The root (``level == 0``) uses Down-Send = 1, Side = ``n + 1`` and
Up-Receive = ``2n + 1`` — exactly the formulas above evaluated at level 0,
so a single set of functions serves every node.  Because a child at level
``i + 1`` has Down-Receive ``i + 1`` = its parent's Down-Send, information
flows one hop per round down the tree, and symmetrically up; and because
*every* node shares Side-Send-Receive = ``n + 1``, adjacent fragments are
awake simultaneously there — the property that makes ``Transmit-Adjacent``
possible in one awake round.

The paper's block occupies offsets ``1 .. 2n + 1``; we reserve one padding
round so that blocks have even length ``2n + 2`` and never abut.
"""

from __future__ import annotations

from dataclasses import dataclass


def block_span(n: int) -> int:
    """Number of rounds one Transmission-Schedule block occupies."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return 2 * n + 2


def down_receive_offset(level: int) -> int:
    """Offset in which a level-``level`` node hears from its parent."""
    if level < 1:
        raise ValueError("the root has no Down-Receive round")
    return level


def down_send_offset(level: int) -> int:
    """Offset in which a level-``level`` node forwards to its children."""
    if level < 0:
        raise ValueError("level must be >= 0")
    return level + 1


def side_offset(n: int) -> int:
    """The Side-Send-Receive offset, shared by every node in the network."""
    return n + 1


def up_receive_offset(n: int, level: int) -> int:
    """Offset in which a level-``level`` node hears from its children."""
    if level < 0:
        raise ValueError("level must be >= 0")
    return 2 * n - level + 1


def up_send_offset(n: int, level: int) -> int:
    """Offset in which a level-``level`` node forwards to its parent."""
    if level < 1:
        raise ValueError("the root has no Up-Send round")
    return 2 * n - level + 2


@dataclass(frozen=True)
class Block:
    """One scheduled block: absolute start round plus the network size.

    Provides absolute round numbers for each named offset of a node at a
    given level, so protocol code reads like the paper's prose.
    """

    start: int
    n: int

    def _absolute(self, offset: int) -> int:
        if not 1 <= offset <= 2 * self.n + 1:
            raise ValueError(
                f"offset {offset} outside block of span {block_span(self.n)}"
            )
        return self.start + offset - 1

    def down_receive(self, level: int) -> int:
        return self._absolute(down_receive_offset(level))

    def down_send(self, level: int) -> int:
        return self._absolute(down_send_offset(level))

    def side(self) -> int:
        return self._absolute(side_offset(self.n))

    def up_receive(self, level: int) -> int:
        return self._absolute(up_receive_offset(self.n, level))

    def up_send(self, level: int) -> int:
        return self._absolute(up_send_offset(self.n, level))

    @property
    def end(self) -> int:
        """Last round of the block (inclusive, counting the padding round)."""
        return self.start + block_span(self.n) - 1


class BlockClock:
    """A deterministic allocator of consecutive blocks.

    Every node constructs an identical clock (all nodes know ``n`` and the
    globally fixed phase plan), so the ``k``-th call to :meth:`take` returns
    the same block at every node — this is what keeps fragments aligned for
    ``Transmit-Adjacent`` without any coordination messages.
    """

    def __init__(self, n: int, start: int = 1) -> None:
        if start < 1:
            raise ValueError("start round must be >= 1")
        self.n = n
        self.span = block_span(n)
        self._next_start = start

    def take(self) -> Block:
        """Allocate and return the next block."""
        block = Block(start=self._next_start, n=self.n)
        self._next_start += self.span
        return block

    def skip(self, count: int = 1) -> None:
        """Advance past ``count`` blocks without using them.

        Used by nodes that do not participate in a stage (e.g. most stages
        of ``Fast-Awake-Coloring``): they stay asleep for the whole block
        but keep their clock aligned with everyone else's.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        self._next_start += count * self.span

    @property
    def next_start(self) -> int:
        return self._next_start
