"""The paper's toolbox of ``O(1)``-awake LDT procedures (Appendix B).

Each procedure is a *sub-protocol*: a generator designed to be composed into
a node's main protocol with ``yield from``.  A procedure occupies exactly one
Transmission-Schedule block (``2n + 2`` rounds, see
:mod:`repro.core.schedule`), wakes the node a constant number of times, and
returns its node-local result via the generator return value.

All nodes of the network must run the *same* procedure in the *same* block
(roots and leaves simply use fewer wake-ups); this is guaranteed by the
globally known phase plans of the algorithms.

Procedures
----------
``fragment_broadcast``
    Root-to-all dissemination inside one fragment (Observation 2).
``upcast_min`` / ``upcast_aggregate``
    All-to-root convergecast inside one fragment (Observation 3);
    ``upcast_aggregate`` generalises the min to any associative,
    commutative merge whose results stay ``O(log n)`` bits.
``transmit_adjacent``
    One simultaneous exchange between neighbouring nodes of *different*
    fragments (Observation 4) — possible because every node's
    Side-Send-Receive offset is the same round ``n + 1`` of the block.
``neighbor_refresh``
    The standard ``transmit_adjacent`` payload ``(fragment ID, level)``,
    cached into the node's :class:`~repro.core.ldt.LDTState`.

Observability: ``neighbor_awareness`` opens one :mod:`repro.obs` span per
block (``block:na_transmit`` / ``block:na_upcast`` / ``block:na_broadcast``)
so its ``O(1)``-awake budget is individually measurable wherever it is
composed; the single-block procedures are spanned by their callers, which
know the block's role in the phase plan.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Tuple

from repro.sim import Awake, Inbox, NodeContext

from .ldt import LDTState
from .schedule import Block

#: Sentinel for "this node holds no value" in convergecasts.  ``None`` is a
#: one-bit payload, so leaving it in messages keeps them CONGEST-small.
NOTHING = None


def min_merge(a: Any, b: Any) -> Any:
    """Merge for :func:`upcast_min`: minimum, ignoring :data:`NOTHING`."""
    if a is NOTHING:
        return b
    if b is NOTHING:
        return a
    return a if a <= b else b


def fragment_broadcast(
    ctx: NodeContext, ldt: LDTState, block: Block, payload: Any = NOTHING
):
    """Broadcast the root's ``payload`` to every node of its fragment.

    Every node returns the broadcast value (the root returns its own
    ``payload``; non-root callers' ``payload`` argument is ignored, mirroring
    the paper where only the root holds the message).

    Awake cost: root 1 round (0 if it has no children); non-root 2 rounds
    (1 if it is a leaf).  Run time: one block, i.e. ``O(n)`` rounds.
    """
    if ldt.is_root:
        if ldt.children_ports:
            yield Awake(
                block.down_send(0),
                {port: payload for port in ldt.children_ports},
            )
        return payload
    inbox: Inbox = yield Awake(block.down_receive(ldt.level))
    received = inbox.get(ldt.parent_port, NOTHING)
    if ldt.children_ports:
        yield Awake(
            block.down_send(ldt.level),
            {port: received for port in ldt.children_ports},
        )
    return received


def upcast_aggregate(
    ctx: NodeContext,
    ldt: LDTState,
    block: Block,
    value: Any,
    merge: Callable[[Any, Any], Any],
):
    """Convergecast: combine all nodes' values up to the fragment root.

    Each node returns the merge of the values in its own subtree; in
    particular the root returns the fragment-wide aggregate.  ``merge`` must
    be associative and commutative and must keep payloads ``O(log n)`` bits
    (e.g. min, sum of bounded counts, or a capped top-k list).

    Awake cost: at most 2 rounds per node.  Run time: one block.
    """
    combined = value
    if ldt.children_ports:
        inbox: Inbox = yield Awake(block.up_receive(ldt.level))
        for port in ldt.children_ports:
            if port in inbox:
                combined = merge(combined, inbox[port])
    if not ldt.is_root:
        yield Awake(block.up_send(ldt.level), {ldt.parent_port: combined})
    return combined


def upcast_min(ctx: NodeContext, ldt: LDTState, block: Block, value: Any):
    """``Upcast-Min`` of the paper: convergecast the minimum value.

    Nodes holding no value pass :data:`NOTHING`; if no node holds a value
    the root obtains :data:`NOTHING`.
    """
    result = yield from upcast_aggregate(ctx, ldt, block, value, min_merge)
    return result


def transmit_adjacent(
    ctx: NodeContext,
    ldt: LDTState,
    block: Block,
    sends: Optional[Mapping[int, Any]] = None,
):
    """One Side-Send-Receive exchange; returns the raw inbox.

    ``sends`` maps ports to payloads (default: send nothing, listen only).
    Every node of every fragment is awake in the same absolute round, so all
    messages between simultaneously-running fragments are delivered.

    Awake cost: exactly 1 round.  Run time: one block.
    """
    inbox: Inbox = yield Awake(block.side(), dict(sends or {}))
    return inbox


def neighbor_refresh(
    ctx: NodeContext, ldt: LDTState, block: Block, extra: Tuple[Any, ...] = ()
):
    """Exchange ``(fragment ID, level, *extra)`` with every neighbour.

    Sends on **all** ports (tree neighbours included — their cached entries
    must stay fresh too) and updates the LDT's per-port neighbour cache.
    Returns the raw inbox so callers can inspect the ``extra`` fields.
    """
    payload = (ldt.fragment_id, ldt.level) + tuple(extra)
    inbox = yield from transmit_adjacent(
        ctx, ldt, block, {port: payload for port in ctx.ports}
    )
    for port, received in inbox.items():
        ldt.record_neighbor(port, received[0], received[1])
    return inbox


def neighbor_awareness(
    ctx: NodeContext,
    ldt: LDTState,
    clock,
    sends: Optional[Mapping[int, Any]] = None,
    merge: Callable[[Any, Any], Any] = min_merge,
    collect: Optional[Callable[[Any], Any]] = None,
):
    """``Neighbor-Awareness`` (Section 2.3): fragment-wide cross-fragment news.

    Three blocks: (1) ``Transmit-Adjacent`` — nodes with something to tell
    adjacent fragments send it on the given ports; (2) ``upcast`` — each
    fragment aggregates whatever its members heard; (3)
    ``Fragment-Broadcast`` — the aggregate reaches every member.  Returns
    the fragment-wide aggregate (:data:`NOTHING` if nobody heard anything).

    ``merge`` combines heard values (default: min — right when a single
    value is in flight, as in the colouring stages); ``collect`` maps the
    raw inbox to this node's contribution (default: merge of the inbox
    values).  Announcing fragments run the same three blocks (their members
    hear nothing, so their aggregate is :data:`NOTHING`), which keeps every
    clock aligned.
    """
    with ctx.span("block:na_transmit"):
        inbox = yield from transmit_adjacent(ctx, ldt, clock.take(), sends or {})
    if collect is not None:
        heard = collect(inbox)
    else:
        heard = NOTHING
        for value in inbox.values():
            heard = merge(heard, value)
    with ctx.span("block:na_upcast"):
        aggregated = yield from upcast_aggregate(
            ctx, ldt, clock.take(), heard, merge
        )
    with ctx.span("block:na_broadcast"):
        result = yield from fragment_broadcast(
            ctx, ldt, clock.take(), aggregated if ldt.is_root else NOTHING
        )
    return result


def local_moe(ctx: NodeContext, ldt: LDTState) -> Any:
    """This node's candidate for the fragment MOE, or :data:`NOTHING`.

    Returns ``(weight, port)`` of the lightest incident edge whose other
    endpoint is (per the neighbour cache) in a different fragment.  Must be
    called after a :func:`neighbor_refresh` in the current phase.
    """
    best: Any = NOTHING
    for port in ctx.ports:
        if ldt.neighbor_fragment.get(port) == ldt.fragment_id:
            continue
        if port not in ldt.neighbor_fragment:
            # No information about this neighbour yet; callers refresh first,
            # so this indicates a phase-plan bug.
            raise RuntimeError(
                f"node {ctx.node_id}: neighbour cache empty on port {port}; "
                "run neighbor_refresh before local_moe"
            )
        candidate = (ctx.port_weights[port], port)
        if best is NOTHING or candidate < best:
            best = candidate
    return best
