"""Graph substrate: weighted graphs, generators, and reference MSTs."""

from .generators import (
    adversarial_moe_chain,
    caterpillar_graph,
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_geometric_graph,
    random_tree,
    ring_graph,
    star_graph,
)
from .mst_reference import (
    UnionFind,
    boruvka_mst,
    is_spanning_tree,
    kruskal_mst,
    mst_weight_set,
    prim_mst,
    verify_mst,
)
from .validation import (
    DIAGNOSIS_OUTCOMES,
    MSTDiagnosis,
    MSTOutputError,
    check_local_mst_outputs,
    require_connected,
    require_sleeping_model_inputs,
    tree_depths,
    verify_or_diagnose,
)
from .weighted_graph import Edge, WeightedGraph

__all__ = [
    "DIAGNOSIS_OUTCOMES",
    "Edge",
    "MSTDiagnosis",
    "MSTOutputError",
    "UnionFind",
    "WeightedGraph",
    "adversarial_moe_chain",
    "boruvka_mst",
    "caterpillar_graph",
    "check_local_mst_outputs",
    "complete_graph",
    "grid_graph",
    "is_spanning_tree",
    "kruskal_mst",
    "mst_weight_set",
    "path_graph",
    "prim_mst",
    "random_connected_graph",
    "random_geometric_graph",
    "random_tree",
    "require_connected",
    "require_sleeping_model_inputs",
    "ring_graph",
    "star_graph",
    "tree_depths",
    "verify_mst",
    "verify_or_diagnose",
]
