"""Graph families used by the experiments.

Every generator returns a connected :class:`~repro.graphs.weighted_graph.
WeightedGraph` with **distinct** positive integer weights (the paper's
assumption making the MST unique) and is fully deterministic given its seed.

ID assignment: by default nodes receive IDs ``1..n``.  Passing
``id_range=N > n`` draws ``n`` distinct random IDs from ``[1, N]`` and sets
the graph's ``max_id`` to ``N`` — exercising the deterministic algorithm's
dependence on the ID range (its round complexity is ``O(nN log n)``).
"""

from __future__ import annotations

from random import Random
from typing import List, Optional, Sequence, Tuple

from .weighted_graph import WeightedGraph

#: Weights are drawn from [1, WEIGHT_SPACE_FACTOR * m] so that they remain
#: O(log n)-bit values while being comfortably collision-free to sample.
WEIGHT_SPACE_FACTOR = 8


def _draw_ids(n: int, rng: Random, id_range: Optional[int]) -> Tuple[List[int], int]:
    """Return (node IDs, max_id bound N)."""
    if id_range is None:
        return list(range(1, n + 1)), n
    if id_range < n:
        raise ValueError(f"id_range={id_range} < n={n}")
    return sorted(rng.sample(range(1, id_range + 1), n)), id_range


def _draw_weights(m: int, rng: Random) -> List[int]:
    """Return ``m`` distinct positive weights in random order."""
    return rng.sample(range(1, WEIGHT_SPACE_FACTOR * m + 2), m)


def _assemble(
    n: int,
    pairs: Sequence[Tuple[int, int]],
    seed: int,
    id_range: Optional[int],
) -> WeightedGraph:
    """Attach random IDs and distinct random weights to index pairs.

    ``pairs`` are edges over node *indices* ``0..n-1``; indices are mapped to
    IDs so that the topology is independent of the ID draw.  IDs and weights
    come from independent streams, so changing ``id_range`` re-labels nodes
    without disturbing the weight assignment.
    """
    ids, max_id = _draw_ids(n, Random(f"{seed}/ids"), id_range)
    weights = _draw_weights(len(pairs), Random(f"{seed}/weights"))
    edges = [
        (ids[a], ids[b], weight) for (a, b), weight in zip(pairs, weights)
    ]
    return WeightedGraph(ids, edges, max_id=max_id)


# ----------------------------------------------------------------------
# Deterministic topologies
# ----------------------------------------------------------------------


def path_graph(n: int, seed: int = 0, id_range: Optional[int] = None) -> WeightedGraph:
    """A path on ``n`` nodes — worst case for fragment-tree depth."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return _assemble(n, [(i, i + 1) for i in range(n - 1)], seed, id_range)


def ring_graph(n: int, seed: int = 0, id_range: Optional[int] = None) -> WeightedGraph:
    """A cycle on ``n`` nodes — the Theorem 3 lower-bound topology."""
    if n < 3:
        raise ValueError("a ring needs n >= 3")
    pairs = [(i, (i + 1) % n) for i in range(n)]
    return _assemble(n, pairs, seed, id_range)


def star_graph(n: int, seed: int = 0, id_range: Optional[int] = None) -> WeightedGraph:
    """A star: node index 0 is the hub."""
    if n < 2:
        raise ValueError("a star needs n >= 2")
    return _assemble(n, [(0, i) for i in range(1, n)], seed, id_range)


def complete_graph(
    n: int, seed: int = 0, id_range: Optional[int] = None
) -> WeightedGraph:
    """The complete graph ``K_n``."""
    if n < 2:
        raise ValueError("K_n needs n >= 2")
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    return _assemble(n, pairs, seed, id_range)


def grid_graph(
    rows: int, cols: int, seed: int = 0, id_range: Optional[int] = None
) -> WeightedGraph:
    """A ``rows x cols`` grid (4-neighbour mesh)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be >= 1")
    if rows * cols < 2:
        raise ValueError("grid needs at least 2 nodes")

    def index(r: int, c: int) -> int:
        return r * cols + c

    pairs: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                pairs.append((index(r, c), index(r, c + 1)))
            if r + 1 < rows:
                pairs.append((index(r, c), index(r + 1, c)))
    return _assemble(rows * cols, pairs, seed, id_range)


def caterpillar_graph(
    spine: int, legs_per_node: int = 1, seed: int = 0, id_range: Optional[int] = None
) -> WeightedGraph:
    """A caterpillar: a path spine with pendant legs.

    Used by the coin-flip ablation: with increasing weights along the spine,
    every fragment's MOE points the same way and unrestricted merging builds
    a single long merge chain.
    """
    if spine < 2:
        raise ValueError("caterpillar needs spine >= 2")
    pairs = [(i, i + 1) for i in range(spine - 1)]
    next_index = spine
    for i in range(spine):
        for _ in range(legs_per_node):
            pairs.append((i, next_index))
            next_index += 1
    return _assemble(next_index, pairs, seed, id_range)


# ----------------------------------------------------------------------
# Random families
# ----------------------------------------------------------------------


def random_tree(n: int, seed: int = 0, id_range: Optional[int] = None) -> WeightedGraph:
    """A uniformly random labelled tree (random-attachment construction)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = Random(f"{seed}/tree")
    pairs = [(rng.randrange(i), i) for i in range(1, n)]
    return _assemble(n, pairs, seed, id_range)


def random_connected_graph(
    n: int,
    extra_edge_prob: float = 0.1,
    seed: int = 0,
    id_range: Optional[int] = None,
) -> WeightedGraph:
    """A connected Erdős–Rényi-style graph.

    Construction: a uniformly random spanning tree guarantees connectivity;
    every non-tree pair is then added independently with probability
    ``extra_edge_prob``.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    if not 0.0 <= extra_edge_prob <= 1.0:
        raise ValueError("extra_edge_prob must be in [0, 1]")
    rng = Random(f"{seed}/gnp")
    pairs = {(rng.randrange(i), i) for i in range(1, n)}
    for a in range(n):
        for b in range(a + 1, n):
            if (a, b) not in pairs and rng.random() < extra_edge_prob:
                pairs.add((a, b))
    return _assemble(n, sorted(pairs), seed, id_range)


def random_geometric_graph(
    n: int,
    radius: float = 0.35,
    seed: int = 0,
    id_range: Optional[int] = None,
) -> WeightedGraph:
    """A unit-square geometric graph, patched to be connected.

    Models the ad-hoc wireless / sensor networks that motivate the paper:
    nodes are random points, edges join points within ``radius``.  If the
    radius leaves the graph disconnected, the closest pair between
    components is linked (a standard patch-up, keeping the topology
    geometric in spirit).
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    rng = Random(f"{seed}/geo")
    points = [(rng.random(), rng.random()) for _ in range(n)]

    def dist2(a: int, b: int) -> float:
        dx = points[a][0] - points[b][0]
        dy = points[a][1] - points[b][1]
        return dx * dx + dy * dy

    pairs = {
        (a, b)
        for a in range(n)
        for b in range(a + 1, n)
        if dist2(a, b) <= radius * radius
    }

    # Patch connectivity: union-find over current components, linking the
    # geometrically closest inter-component pair until one component remains.
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in pairs:
        parent[find(a)] = find(b)
    while len({find(i) for i in range(n)}) > 1:
        roots = {find(i) for i in range(n)}
        representative = next(iter(roots))
        inside = [i for i in range(n) if find(i) == representative]
        outside = [i for i in range(n) if find(i) != representative]
        a, b = min(
            ((i, j) for i in inside for j in outside),
            key=lambda pair: dist2(*pair),
        )
        pairs.add((min(a, b), max(a, b)))
        parent[find(a)] = find(b)

    return _assemble(n, sorted(pairs), seed, id_range)


def adversarial_moe_chain(
    n: int, seed: int = 0, id_range: Optional[int] = None
) -> WeightedGraph:
    """A path whose weights strictly increase along the path.

    Every prefix fragment's minimum outgoing edge points right, so the
    supergraph of fragments-plus-MOEs is a single long chain — the worst
    case the coin-flip restriction (Section 2.2) exists to avoid.  Weights
    are assigned positionally, then IDs are randomised as usual.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    rng = Random(seed)
    ids, max_id = _draw_ids(n, rng, id_range)
    edges = [(ids[i], ids[i + 1], i + 1) for i in range(n - 1)]
    return WeightedGraph(ids, edges, max_id=max_id)
