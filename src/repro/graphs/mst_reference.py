"""Sequential reference MST algorithms and verifiers.

The distributed algorithms are tested against these centralised
implementations.  With distinct edge weights the MST is unique, so
correctness checks reduce to set equality of edge-weight sets.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Set, Tuple

from .weighted_graph import Edge, WeightedGraph


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, items: Iterable[int]) -> None:
        self._parent: Dict[int, int] = {item: item for item in items}
        self._size: Dict[int, int] = {item: 1 for item in self._parent}
        self.components = len(self._parent)

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; return False if already merged."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self.components -= 1
        return True

    def same(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)


def kruskal_mst(graph: WeightedGraph) -> List[Edge]:
    """Kruskal's algorithm; edges returned in increasing weight order."""
    union_find = UnionFind(graph.node_ids)
    tree: List[Edge] = []
    for edge in sorted(graph.edges()):
        if union_find.union(edge.u, edge.v):
            tree.append(edge)
    if union_find.components != 1:
        raise ValueError("graph is disconnected; no spanning tree exists")
    return tree


def prim_mst(graph: WeightedGraph) -> List[Edge]:
    """Prim's algorithm from the smallest node ID."""
    nodes = graph.node_ids
    if len(nodes) == 1:
        return []
    start = nodes[0]
    in_tree: Set[int] = {start}
    frontier: List[Tuple[int, int, int]] = []
    for neighbour, _, weight in graph.ports_of(start).values():
        heapq.heappush(frontier, (weight, start, neighbour))
    tree: List[Edge] = []
    while frontier and len(in_tree) < len(nodes):
        weight, u, v = heapq.heappop(frontier)
        if v in in_tree:
            continue
        in_tree.add(v)
        tree.append(Edge.make(u, v, weight))
        for neighbour, _, next_weight in graph.ports_of(v).values():
            if neighbour not in in_tree:
                heapq.heappush(frontier, (next_weight, v, neighbour))
    if len(in_tree) < len(nodes):
        raise ValueError("graph is disconnected; no spanning tree exists")
    return tree


def boruvka_mst(graph: WeightedGraph) -> List[Edge]:
    """Borůvka's algorithm — the sequential skeleton of GHS.

    Included both as a third correctness oracle and because its phase
    structure (every component picks its minimum outgoing edge, components
    merge) is exactly what the paper's algorithms implement distributively.
    """
    union_find = UnionFind(graph.node_ids)
    tree: List[Edge] = []
    edges = graph.edges()
    while union_find.components > 1:
        cheapest: Dict[int, Edge] = {}
        for edge in edges:
            ru, rv = union_find.find(edge.u), union_find.find(edge.v)
            if ru == rv:
                continue
            for root in (ru, rv):
                best = cheapest.get(root)
                if best is None or edge.weight < best.weight:
                    cheapest[root] = edge
        if not cheapest:
            raise ValueError("graph is disconnected; no spanning tree exists")
        for edge in cheapest.values():
            if union_find.union(edge.u, edge.v):
                tree.append(edge)
    return tree


def mst_weight_set(graph: WeightedGraph) -> Set[int]:
    """The unique MST as a set of edge weights (weights identify edges)."""
    return {edge.weight for edge in kruskal_mst(graph)}


def is_spanning_tree(graph: WeightedGraph, weights: Iterable[int]) -> bool:
    """Check that the edges with the given weights form a spanning tree."""
    chosen = set(weights)
    edges = [edge for edge in graph.edges() if edge.weight in chosen]
    if len(edges) != graph.n - 1 or len(chosen) != len(edges):
        return False
    union_find = UnionFind(graph.node_ids)
    for edge in edges:
        if not union_find.union(edge.u, edge.v):
            return False
    return union_find.components == 1


def verify_mst(graph: WeightedGraph, weights: Iterable[int]) -> None:
    """Raise ``AssertionError`` unless ``weights`` is exactly the unique MST."""
    claimed = set(weights)
    expected = mst_weight_set(graph)
    if claimed != expected:
        missing = sorted(expected - claimed)
        extra = sorted(claimed - expected)
        raise AssertionError(
            f"not the MST: missing weights {missing[:10]}, extra {extra[:10]} "
            f"(claimed {len(claimed)} edges, expected {len(expected)})"
        )
