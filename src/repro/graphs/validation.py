"""Structural validation helpers for graphs and distributed outputs.

These checks back the test-suite invariants and are also exported so users
can sanity-check their own graph inputs before running the algorithms.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set

from .weighted_graph import WeightedGraph


def require_connected(graph: WeightedGraph) -> None:
    """Raise ``ValueError`` if the graph is disconnected.

    The MST algorithms assume a connected input (Section 1.1); on a
    disconnected graph "the MST" does not exist.
    """
    if not graph.is_connected():
        raise ValueError("graph must be connected for MST computation")


def require_sleeping_model_inputs(graph: WeightedGraph) -> None:
    """Validate every assumption of the paper's input model at once."""
    require_connected(graph)
    # Distinct weights and positive IDs are enforced at construction time by
    # WeightedGraph; re-checking here keeps the contract explicit for graphs
    # constructed by external code paths.
    weights = [edge.weight for edge in graph.edges()]
    if len(weights) != len(set(weights)):
        raise ValueError("edge weights must be distinct")
    if any(node_id < 1 for node_id in graph.node_ids):
        raise ValueError("node IDs must be >= 1")
    if graph.max_id < max(graph.node_ids):
        raise ValueError("max_id must bound every node ID")


def check_local_mst_outputs(
    graph: WeightedGraph, node_outputs: Mapping[int, Iterable[int]]
) -> Set[int]:
    """Validate the paper's *output convention* and return the global edge set.

    "The goal ... is for every node to know which of its incident edges
    belong to the MST."  Each node therefore reports a set of incident edge
    weights.  This function checks:

    * every node reported;
    * every reported weight is an incident edge of that node;
    * the two endpoints of every edge agree (both report it or neither).

    Returns the union — the globally claimed MST edge set.
    """
    missing = [node for node in graph.node_ids if node not in node_outputs]
    if missing:
        raise AssertionError(f"nodes missing MST output: {missing[:10]}")

    incident: Dict[int, Set[int]] = {
        node: {weight for (_, _, weight) in graph.ports_of(node).values()}
        for node in graph.node_ids
    }
    reported: Dict[int, Set[int]] = {}
    for node, weights in node_outputs.items():
        weight_set = set(weights)
        foreign = weight_set - incident[node]
        if foreign:
            raise AssertionError(
                f"node {node} reported non-incident edge weights {sorted(foreign)[:10]}"
            )
        reported[node] = weight_set

    union: Set[int] = set()
    for node, weight_set in reported.items():
        union |= weight_set
    for weight in union:
        edge = graph.edge_by_weight(weight)
        u_has = weight in reported[edge.u]
        v_has = weight in reported[edge.v]
        if not (u_has and v_has):
            raise AssertionError(
                f"endpoints disagree on edge weight {weight}: "
                f"{edge.u} reported={u_has}, {edge.v} reported={v_has}"
            )
    return union


def tree_depths(
    parents: Mapping[int, int], root: int
) -> Dict[int, int]:
    """Compute depths from a parent map; raises on cycles or unreachable nodes.

    Utility shared by LDT invariant checks: ``parents`` maps each non-root
    node to its parent.
    """
    depths: Dict[int, int] = {root: 0}
    for start in parents:
        path: List[int] = []
        node = start
        while node not in depths:
            path.append(node)
            if node not in parents:
                raise AssertionError(f"node {node} has no parent and is not root")
            node = parents[node]
            if len(path) > len(parents) + 1:
                raise AssertionError("cycle detected in parent map")
        base = depths[node]
        for offset, member in enumerate(reversed(path), start=1):
            depths[member] = base + offset
    return depths
