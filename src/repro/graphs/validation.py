"""Structural validation helpers for graphs and distributed outputs.

These checks back the test-suite invariants and are also exported so users
can sanity-check their own graph inputs before running the algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .weighted_graph import WeightedGraph

#: The four ways a (possibly fault-injected) MST run can end.  ``correct``
#: and ``silent_wrong`` both passed the output convention; only comparison
#: against the reference MST separates them.  ``detected_wrong`` means the
#: run itself (or output validation) raised; ``hung`` means it exceeded a
#: simulation limit without terminating.
DIAGNOSIS_OUTCOMES = ("correct", "detected_wrong", "silent_wrong", "hung")


class MSTOutputError(AssertionError):
    """The paper's output convention failed.

    ``missing`` names the nodes that produced no MST output at all — the
    *output hole* a crash-faulted run leaves behind.  It is empty for the
    other convention failures (non-incident edges, endpoint disagreement).
    """

    def __init__(self, message: str, missing: Sequence[int] = ()) -> None:
        super().__init__(message)
        self.missing: Tuple[int, ...] = tuple(missing)


def require_connected(graph: WeightedGraph) -> None:
    """Raise ``ValueError`` if the graph is disconnected.

    The MST algorithms assume a connected input (Section 1.1); on a
    disconnected graph "the MST" does not exist.
    """
    if not graph.is_connected():
        raise ValueError("graph must be connected for MST computation")


def require_sleeping_model_inputs(graph: WeightedGraph) -> None:
    """Validate every assumption of the paper's input model at once."""
    require_connected(graph)
    # Distinct weights and positive IDs are enforced at construction time by
    # WeightedGraph; re-checking here keeps the contract explicit for graphs
    # constructed by external code paths.
    weights = [edge.weight for edge in graph.edges()]
    if len(weights) != len(set(weights)):
        raise ValueError("edge weights must be distinct")
    if any(node_id < 1 for node_id in graph.node_ids):
        raise ValueError("node IDs must be >= 1")
    if graph.max_id < max(graph.node_ids):
        raise ValueError("max_id must bound every node ID")


def check_local_mst_outputs(
    graph: WeightedGraph, node_outputs: Mapping[int, Iterable[int]]
) -> Set[int]:
    """Validate the paper's *output convention* and return the global edge set.

    "The goal ... is for every node to know which of its incident edges
    belong to the MST."  Each node therefore reports a set of incident edge
    weights.  This function checks:

    * every node reported;
    * every reported weight is an incident edge of that node;
    * the two endpoints of every edge agree (both report it or neither).

    Returns the union — the globally claimed MST edge set.
    """
    missing = sorted(node for node in graph.node_ids if node not in node_outputs)
    if missing:
        raise MSTOutputError(
            f"nodes missing MST output: {missing[:10]}", missing=missing
        )

    incident: Dict[int, Set[int]] = {
        node: {weight for (_, _, weight) in graph.ports_of(node).values()}
        for node in graph.node_ids
    }
    reported: Dict[int, Set[int]] = {}
    for node, weights in node_outputs.items():
        weight_set = set(weights)
        foreign = weight_set - incident[node]
        if foreign:
            raise AssertionError(
                f"node {node} reported non-incident edge weights {sorted(foreign)[:10]}"
            )
        reported[node] = weight_set

    union: Set[int] = set()
    for node, weight_set in reported.items():
        union |= weight_set
    for weight in union:
        edge = graph.edge_by_weight(weight)
        u_has = weight in reported[edge.u]
        v_has = weight in reported[edge.v]
        if not (u_has and v_has):
            raise AssertionError(
                f"endpoints disagree on edge weight {weight}: "
                f"{edge.u} reported={u_has}, {edge.v} reported={v_has}"
            )
    return union


@dataclass(frozen=True)
class MSTDiagnosis:
    """Outcome classification of one (possibly fault-injected) MST run.

    ``outcome`` is one of :data:`DIAGNOSIS_OUTCOMES`; ``result`` is
    whatever the runner returned (``None`` unless the run completed);
    ``error`` is the stringified failure for ``detected_wrong`` / ``hung``.

    The remaining fields refine the post-mortem: ``missing_nodes`` is the
    per-node *output hole* (nodes that produced no MST output, from
    :class:`MSTOutputError`); ``crashed_nodes`` names nodes known to have
    crashed (from the raising :class:`~repro.sim.errors.NodeCrashed` or
    the completed run's metrics); ``first_invariant`` / ``violations``
    come from an attached :class:`repro.invariants.MonitorSet` — the name
    of the first paper invariant that fired, and how many violations were
    recorded in total.  All default empty, so pre-monitor call sites and
    serialized records are unaffected.
    """

    outcome: str
    result: object = None
    error: Optional[str] = None
    missing_nodes: Tuple[int, ...] = ()
    crashed_nodes: Tuple[int, ...] = ()
    first_invariant: Optional[str] = None
    violations: int = 0

    @property
    def completed(self) -> bool:
        """True when the run terminated and passed output validation."""
        return self.outcome in ("correct", "silent_wrong")


def _monitor_fields(monitors: object) -> Dict[str, object]:
    """Finalize an attached monitor set (idempotent) and extract its verdict.

    A crashed/hung run never reached the engine's own finalize, so this is
    where its incomplete probe groups get filed; a clean run was already
    finalized by the engine and the second call is a no-op.
    """
    if monitors is None:
        return {}
    report = monitors.finalize()
    return {
        "first_invariant": report.first_invariant,
        "violations": len(report),
    }


def verify_or_diagnose(
    graph: WeightedGraph,
    run: Callable[[], object],
    monitors: object = None,
) -> MSTDiagnosis:
    """Execute ``run`` and classify its outcome against the reference MST.

    This is the fault-injection oracle: under a perfect channel every run
    is ``correct``; under drops/delays/crashes (see
    :mod:`repro.sim.transport`) an awake-optimal protocol may crash on a
    missing message (``detected_wrong`` — the failure was *detected*,
    either by the protocol itself or by the output-convention check), spin
    past a simulation limit (``hung``), or — worst — terminate cleanly
    with a tree that is not the MST (``silent_wrong``).

    ``run`` must return an object exposing ``is_correct(graph)`` (any
    :class:`repro.core.RunResult` — the problem-generic surface) or the
    legacy ``is_correct_mst(graph)``.  Exceptions raised by ``run`` are
    classified, not propagated — except for
    ``KeyboardInterrupt``/``SystemExit``.

    When the run was executed with an attached
    :class:`repro.invariants.MonitorSet`, pass it as ``monitors``: the
    diagnosis then names the first paper invariant that fired
    (``first_invariant``) and the total violation count, even for runs
    that crashed or hung before the engine could finalize the monitors.
    """
    # Imported lazily: the graphs layer must not depend on the simulator
    # at import time (layering), only on its error taxonomy at call time.
    from repro.sim.errors import SimulationError, SimulationLimitExceeded

    try:
        result = run()
    except SimulationLimitExceeded as error:
        return MSTDiagnosis(
            outcome="hung", error=str(error), **_monitor_fields(monitors)
        )
    except (SimulationError, AssertionError, ValueError) as error:
        missing: Tuple[int, ...] = ()
        crashed: Tuple[int, ...] = ()
        if isinstance(error, MSTOutputError):
            missing = error.missing
        node_id = getattr(error, "node_id", None)
        if node_id is not None:
            crashed = (node_id,)
        return MSTDiagnosis(
            outcome="detected_wrong",
            error=str(error),
            missing_nodes=missing,
            crashed_nodes=crashed,
            **_monitor_fields(monitors),
        )
    metrics = getattr(result, "metrics", None)
    crashed = tuple(sorted(getattr(metrics, "crashed_nodes", None) or {}))
    # Duck-typed so non-MST RunResults (e.g. MISRunResult) diagnose the
    # same way; every result since the problem registry exposes
    # ``is_correct``, with ``is_correct_mst`` kept as the legacy spelling.
    check = getattr(result, "is_correct", None)
    if check is None:
        check = result.is_correct_mst
    outcome = "correct" if check(graph) else "silent_wrong"
    return MSTDiagnosis(
        outcome=outcome,
        result=result,
        crashed_nodes=crashed,
        **_monitor_fields(monitors),
    )


def tree_depths(
    parents: Mapping[int, int], root: int
) -> Dict[int, int]:
    """Compute depths from a parent map; raises on cycles or unreachable nodes.

    Utility shared by LDT invariant checks: ``parents`` maps each non-root
    node to its parent.
    """
    depths: Dict[int, int] = {root: 0}
    for start in parents:
        path: List[int] = []
        node = start
        while node not in depths:
            path.append(node)
            if node not in parents:
                raise AssertionError(f"node {node} has no parent and is not root")
            node = parents[node]
            if len(path) > len(parents) + 1:
                raise AssertionError("cycle detected in parent map")
        base = depths[node]
        for offset, member in enumerate(reversed(path), start=1):
            depths[member] = base + offset
    return depths
