"""Structural validation helpers for graphs and distributed outputs.

These checks back the test-suite invariants and are also exported so users
can sanity-check their own graph inputs before running the algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set

from .weighted_graph import WeightedGraph

#: The four ways a (possibly fault-injected) MST run can end.  ``correct``
#: and ``silent_wrong`` both passed the output convention; only comparison
#: against the reference MST separates them.  ``detected_wrong`` means the
#: run itself (or output validation) raised; ``hung`` means it exceeded a
#: simulation limit without terminating.
DIAGNOSIS_OUTCOMES = ("correct", "detected_wrong", "silent_wrong", "hung")


def require_connected(graph: WeightedGraph) -> None:
    """Raise ``ValueError`` if the graph is disconnected.

    The MST algorithms assume a connected input (Section 1.1); on a
    disconnected graph "the MST" does not exist.
    """
    if not graph.is_connected():
        raise ValueError("graph must be connected for MST computation")


def require_sleeping_model_inputs(graph: WeightedGraph) -> None:
    """Validate every assumption of the paper's input model at once."""
    require_connected(graph)
    # Distinct weights and positive IDs are enforced at construction time by
    # WeightedGraph; re-checking here keeps the contract explicit for graphs
    # constructed by external code paths.
    weights = [edge.weight for edge in graph.edges()]
    if len(weights) != len(set(weights)):
        raise ValueError("edge weights must be distinct")
    if any(node_id < 1 for node_id in graph.node_ids):
        raise ValueError("node IDs must be >= 1")
    if graph.max_id < max(graph.node_ids):
        raise ValueError("max_id must bound every node ID")


def check_local_mst_outputs(
    graph: WeightedGraph, node_outputs: Mapping[int, Iterable[int]]
) -> Set[int]:
    """Validate the paper's *output convention* and return the global edge set.

    "The goal ... is for every node to know which of its incident edges
    belong to the MST."  Each node therefore reports a set of incident edge
    weights.  This function checks:

    * every node reported;
    * every reported weight is an incident edge of that node;
    * the two endpoints of every edge agree (both report it or neither).

    Returns the union — the globally claimed MST edge set.
    """
    missing = [node for node in graph.node_ids if node not in node_outputs]
    if missing:
        raise AssertionError(f"nodes missing MST output: {missing[:10]}")

    incident: Dict[int, Set[int]] = {
        node: {weight for (_, _, weight) in graph.ports_of(node).values()}
        for node in graph.node_ids
    }
    reported: Dict[int, Set[int]] = {}
    for node, weights in node_outputs.items():
        weight_set = set(weights)
        foreign = weight_set - incident[node]
        if foreign:
            raise AssertionError(
                f"node {node} reported non-incident edge weights {sorted(foreign)[:10]}"
            )
        reported[node] = weight_set

    union: Set[int] = set()
    for node, weight_set in reported.items():
        union |= weight_set
    for weight in union:
        edge = graph.edge_by_weight(weight)
        u_has = weight in reported[edge.u]
        v_has = weight in reported[edge.v]
        if not (u_has and v_has):
            raise AssertionError(
                f"endpoints disagree on edge weight {weight}: "
                f"{edge.u} reported={u_has}, {edge.v} reported={v_has}"
            )
    return union


@dataclass(frozen=True)
class MSTDiagnosis:
    """Outcome classification of one (possibly fault-injected) MST run.

    ``outcome`` is one of :data:`DIAGNOSIS_OUTCOMES`; ``result`` is
    whatever the runner returned (``None`` unless the run completed);
    ``error`` is the stringified failure for ``detected_wrong`` / ``hung``.
    """

    outcome: str
    result: object = None
    error: Optional[str] = None

    @property
    def completed(self) -> bool:
        """True when the run terminated and passed output validation."""
        return self.outcome in ("correct", "silent_wrong")


def verify_or_diagnose(
    graph: WeightedGraph, run: Callable[[], object]
) -> MSTDiagnosis:
    """Execute ``run`` and classify its outcome against the reference MST.

    This is the fault-injection oracle: under a perfect channel every run
    is ``correct``; under drops/delays/crashes (see
    :mod:`repro.sim.transport`) an awake-optimal protocol may crash on a
    missing message (``detected_wrong`` — the failure was *detected*,
    either by the protocol itself or by the output-convention check), spin
    past a simulation limit (``hung``), or — worst — terminate cleanly
    with a tree that is not the MST (``silent_wrong``).

    ``run`` must return an object exposing ``is_correct_mst(graph)``
    (e.g. :class:`repro.core.runner.MSTRunResult`).  Exceptions raised by
    ``run`` are classified, not propagated — except for
    ``KeyboardInterrupt``/``SystemExit``.
    """
    # Imported lazily: the graphs layer must not depend on the simulator
    # at import time (layering), only on its error taxonomy at call time.
    from repro.sim.errors import SimulationError, SimulationLimitExceeded

    try:
        result = run()
    except SimulationLimitExceeded as error:
        return MSTDiagnosis(outcome="hung", error=str(error))
    except (SimulationError, AssertionError, ValueError) as error:
        return MSTDiagnosis(outcome="detected_wrong", error=str(error))
    if result.is_correct_mst(graph):
        return MSTDiagnosis(outcome="correct", result=result)
    return MSTDiagnosis(outcome="silent_wrong", result=result)


def tree_depths(
    parents: Mapping[int, int], root: int
) -> Dict[int, int]:
    """Compute depths from a parent map; raises on cycles or unreachable nodes.

    Utility shared by LDT invariant checks: ``parents`` maps each non-root
    node to its parent.
    """
    depths: Dict[int, int] = {root: 0}
    for start in parents:
        path: List[int] = []
        node = start
        while node not in depths:
            path.append(node)
            if node not in parents:
                raise AssertionError(f"node {node} has no parent and is not root")
            node = parents[node]
            if len(path) > len(parents) + 1:
                raise AssertionError("cycle detected in parent map")
        base = depths[node]
        for offset, member in enumerate(reversed(path), start=1):
            depths[member] = base + offset
    return depths
