"""Weighted graph model with CONGEST-style ports.

The paper's input model (Section 1.1): an undirected connected weighted
graph ``G(V, E, w)`` with distinct edge weights; every node has locally
numbered ports, one per incident edge, and initially knows only its own ID,
``n``, ``N``, and the weights on its ports.

:class:`WeightedGraph` is the single graph type used across the library.  It
assigns each endpoint of each edge a local port number and exposes the
``node_ids`` / ``ports_of`` interface consumed by
:class:`repro.sim.SleepingSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple


@dataclass(frozen=True, order=True)
class Edge:
    """An undirected weighted edge; ``u < v`` is normalised at construction."""

    weight: int
    u: int
    v: int

    @staticmethod
    def make(u: int, v: int, weight: int) -> "Edge":
        if u == v:
            raise ValueError(f"self-loop at node {u} is not allowed")
        if u > v:
            u, v = v, u
        return Edge(weight=int(weight), u=u, v=v)

    @property
    def endpoints(self) -> Tuple[int, int]:
        return (self.u, self.v)

    def other(self, node_id: int) -> int:
        """Return the endpoint that is not ``node_id``."""
        if node_id == self.u:
            return self.v
        if node_id == self.v:
            return self.u
        raise ValueError(f"node {node_id} is not an endpoint of {self}")


class WeightedGraph:
    """An undirected weighted graph with per-node port numbering.

    Parameters
    ----------
    node_ids:
        Distinct positive integer IDs.  IDs need not be contiguous; the
        deterministic algorithm's ``N`` is ``max(node_ids)`` unless
        overridden via ``max_id``.
    edges:
        ``(u, v, weight)`` triples.  Weights must be distinct positive
        integers (distinctness makes the MST unique, as the paper assumes).
    max_id:
        Optional explicit ``N >= max(node_ids)``; lets experiments vary the
        ID range independently of ``n``.
    """

    def __init__(
        self,
        node_ids: Iterable[int],
        edges: Iterable[Tuple[int, int, int]],
        max_id: Optional[int] = None,
    ) -> None:
        self._node_ids: List[int] = sorted(set(int(x) for x in node_ids))
        if not self._node_ids:
            raise ValueError("graph must have at least one node")
        if self._node_ids[0] < 1:
            raise ValueError("node IDs must be positive integers")
        id_set = set(self._node_ids)

        self._edges: List[Edge] = []
        seen_pairs: Set[Tuple[int, int]] = set()
        seen_weights: Set[int] = set()
        for u, v, weight in edges:
            edge = Edge.make(int(u), int(v), int(weight))
            if edge.u not in id_set or edge.v not in id_set:
                raise ValueError(f"edge {edge} references unknown node")
            if edge.endpoints in seen_pairs:
                raise ValueError(f"duplicate edge between {edge.u} and {edge.v}")
            if edge.weight in seen_weights:
                raise ValueError(
                    f"duplicate edge weight {edge.weight}; the paper assumes "
                    "distinct weights (unique MST)"
                )
            if edge.weight < 1:
                raise ValueError("edge weights must be positive integers")
            seen_pairs.add(edge.endpoints)
            seen_weights.add(edge.weight)
            self._edges.append(edge)

        declared_max = max(self._node_ids)
        if max_id is not None and max_id < declared_max:
            raise ValueError(f"max_id={max_id} < largest node ID {declared_max}")
        self._max_id = max_id if max_id is not None else declared_max

        # Port assignment: each node numbers its incident edges 0..deg-1 in
        # edge-insertion order (an arbitrary but deterministic choice; the
        # algorithms never rely on port semantics).
        self._ports: Dict[int, Dict[int, Tuple[int, int, int]]] = {
            node_id: {} for node_id in self._node_ids
        }
        next_port: Dict[int, int] = {node_id: 0 for node_id in self._node_ids}
        self._edge_ports: Dict[FrozenSet[int], Tuple[int, int]] = {}
        self._by_weight: Dict[int, Edge] = {}
        for edge in self._edges:
            pu, pv = next_port[edge.u], next_port[edge.v]
            next_port[edge.u] += 1
            next_port[edge.v] += 1
            self._ports[edge.u][pu] = (edge.v, pv, edge.weight)
            self._ports[edge.v][pv] = (edge.u, pu, edge.weight)
            self._edge_ports[frozenset(edge.endpoints)] = (pu, pv)
            self._by_weight[edge.weight] = edge

    # ------------------------------------------------------------------
    # Simulator interface
    # ------------------------------------------------------------------

    @property
    def node_ids(self) -> List[int]:
        return list(self._node_ids)

    def ports_of(self, node_id: int) -> Dict[int, Tuple[int, int, int]]:
        """Return ``{port: (neighbour_id, neighbour_port, weight)}``."""
        return dict(self._ports[node_id])

    # ------------------------------------------------------------------
    # Graph queries
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self._node_ids)

    @property
    def m(self) -> int:
        return len(self._edges)

    @property
    def max_id(self) -> int:
        """The ID-range bound ``N`` known to deterministic algorithms."""
        return self._max_id

    @property
    def max_weight(self) -> int:
        return max((edge.weight for edge in self._edges), default=1)

    def edges(self) -> List[Edge]:
        return list(self._edges)

    def edge_weights(self) -> Set[int]:
        return set(self._by_weight)

    def edge_by_weight(self, weight: int) -> Edge:
        """Weights are distinct, so a weight is a global edge identifier."""
        return self._by_weight[weight]

    def has_edge(self, u: int, v: int) -> bool:
        return frozenset((u, v)) in self._edge_ports

    def weight(self, u: int, v: int) -> int:
        for neighbour, _, weight in self._ports[u].values():
            if neighbour == v:
                return weight
        raise KeyError(f"no edge between {u} and {v}")

    def neighbors(self, node_id: int) -> List[int]:
        return [entry[0] for entry in self._ports[node_id].values()]

    def degree(self, node_id: int) -> int:
        return len(self._ports[node_id])

    def total_weight(self) -> int:
        return sum(edge.weight for edge in self._edges)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        if self.n <= 1:
            return True
        seen = {self._node_ids[0]}
        stack = [self._node_ids[0]]
        while stack:
            node = stack.pop()
            for neighbour in self.neighbors(node):
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return len(seen) == self.n

    def bfs_distances(self, source: int) -> Dict[int, int]:
        """Hop distances from ``source`` (unweighted BFS)."""
        distances = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for neighbour in self.neighbors(node):
                    if neighbour not in distances:
                        distances[neighbour] = distances[node] + 1
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return distances

    def diameter(self) -> int:
        """Exact hop diameter (O(n·m); fine at experiment scales)."""
        best = 0
        for node in self._node_ids:
            distances = self.bfs_distances(node)
            if len(distances) < self.n:
                raise ValueError("diameter undefined: graph is disconnected")
            best = max(best, max(distances.values()))
        return best

    def subgraph_weights(self, weights: Iterable[int]) -> "WeightedGraph":
        """Return the subgraph induced by the edges with the given weights."""
        chosen = set(weights)
        return WeightedGraph(
            self._node_ids,
            [
                (edge.u, edge.v, edge.weight)
                for edge in self._edges
                if edge.weight in chosen
            ],
            max_id=self._max_id,
        )

    def to_networkx(self):  # pragma: no cover - convenience for notebooks
        """Return a ``networkx.Graph`` copy (weights as edge attributes)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self._node_ids)
        graph.add_weighted_edges_from(
            (edge.u, edge.v, edge.weight) for edge in self._edges
        )
        return graph

    def __iter__(self) -> Iterator[int]:
        return iter(self._node_ids)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._ports

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedGraph(n={self.n}, m={self.m}, N={self._max_id})"
