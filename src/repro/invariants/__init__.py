"""Runtime protocol-invariant monitors (the paper's lemmas, checked live).

The correctness argument of the paper is a stack of structural invariants
that hold at every phase boundary — FLDT well-formedness (Section 2.1),
star-shaped merge components (Section 2.2), <=3 valid incoming MOEs after
token sparsification and a legal 5-coloring of the fragment supergraph
(Section 2.3), O(1) awake rounds per Transmission-Schedule block and
O(log n)-bit messages (Theorem 1).  This package turns each of them into
an attachable runtime monitor::

    from repro.core import run_randomized_mst
    from repro.invariants import build_monitor_set

    monitors = build_monitor_set("all")
    result = run_randomized_mst(graph, seed=0, monitors=monitors)
    assert monitors.report.ok()

Under fault injection (``repro.sim.transport``) the report's *first*
violation names the invariant closest to the root cause — which is what
``repro.graphs.verify_or_diagnose`` and the ``repro check`` CLI surface.
Detached (the default), the engine is byte-identical to an unmonitored
run.
"""

from .checks import (
    BLOCK_AWAKE_BUDGETS,
    DEFAULT_BLOCK_AWAKE_BUDGET,
    check_block_awake,
    check_coloring_legal,
    check_congest_budget,
    check_fldt_wellformed,
    check_mis_independence,
    check_mis_maximality,
    check_moe_sparsification,
    check_mst_subforest,
    check_star_merge,
)
from .monitors import (
    MONITOR_NAMES,
    MONITOR_REGISTRY,
    PROBLEM_MONITORS,
    AwakeBudgetMonitor,
    ColoringMonitor,
    CongestBudgetMonitor,
    FLDTMonitor,
    FinalizeContext,
    FragmentCountMonitor,
    InvariantMonitor,
    MISIndependenceMonitor,
    MISMaximalityMonitor,
    MonitorSet,
    MonitorView,
    MOESparsificationMonitor,
    MSTSubforestMonitor,
    StarMergeMonitor,
    build_monitor_set,
    resolve_monitor_spec,
)
from .report import (
    InvariantViolation,
    Violation,
    ViolationReport,
    snapshot_states,
)

__all__ = [
    "BLOCK_AWAKE_BUDGETS",
    "DEFAULT_BLOCK_AWAKE_BUDGET",
    "MONITOR_NAMES",
    "MONITOR_REGISTRY",
    "PROBLEM_MONITORS",
    "AwakeBudgetMonitor",
    "ColoringMonitor",
    "CongestBudgetMonitor",
    "FLDTMonitor",
    "FinalizeContext",
    "FragmentCountMonitor",
    "InvariantMonitor",
    "InvariantViolation",
    "MISIndependenceMonitor",
    "MISMaximalityMonitor",
    "MOESparsificationMonitor",
    "MSTSubforestMonitor",
    "MonitorSet",
    "MonitorView",
    "StarMergeMonitor",
    "Violation",
    "ViolationReport",
    "build_monitor_set",
    "check_block_awake",
    "check_coloring_legal",
    "check_congest_budget",
    "check_fldt_wellformed",
    "check_mis_independence",
    "check_mis_maximality",
    "check_moe_sparsification",
    "check_mst_subforest",
    "check_star_merge",
    "resolve_monitor_spec",
    "snapshot_states",
]
