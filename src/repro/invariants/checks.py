"""Pure checkers behind the runtime invariant monitors.

Each function inspects one *probe group* — the per-node state snapshots
that every node emitted at the same probe point of the same phase (see
``ctx.probe`` in :mod:`repro.sim.node` and the probe calls in
:mod:`repro.core.mst_randomized` / :mod:`repro.core.mst_deterministic`) —
and returns the list of :class:`~repro.invariants.report.Violation` it
finds.  They hold no state and never touch the simulation, so unit tests
can drive them directly with deliberately corrupted snapshots.

Snapshot shapes (all values are plain ints/tuples so snapshots serialize):

``phase_end`` (both MST algorithms, end of every phase)
    ``{"phase", "fragment", "level", "parent_port", "children_ports",
    "tree_weights"}``
``merge_decision`` (randomized, after the validity broadcast)
    ``{"phase", "fragment", "coin", "moe", "merging", "owner", "valid",
    "target"}``
``moe_sparsify`` (deterministic, after the NBR-INFO broadcast)
    ``{"phase", "fragment", "nbr_info", "selected"}``
``coloring`` (deterministic, after the 5-coloring subroutine)
    ``{"phase", "fragment", "color", "nbr_colors", "nbr_fragments"}``
``mis_decided`` (Sleeping-MIS, once per node at its in/out decision;
deliberately phase-free so the group completes when all ``n`` decide)
    ``{"in_mis", "decided_phase", "degree"}``
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.coloring import PALETTE
from repro.core.ldt import LDTState, check_fldt
from repro.core.moe import DIR_IN, DIR_OUT, MAX_VALID_INCOMING
from repro.core.mst_randomized import HEADS, TAILS

from .report import Violation, snapshot_states

#: Awake-round budgets per Transmission-Schedule block span (Theorem 1 /
#: Lemma 7: every block costs O(1) awake rounds per node).  The constants
#: are the *structural* worst cases of the toolbox procedures — e.g. an
#: up-cast wakes a node at most twice (receive from children, send to
#: parent) — with the composite spans (``block:select_moes`` spans two
#: blocks, ``block:coloring`` spans the whole 5N- or log*-stage coloring
#: schedule) getting correspondingly larger constants.  Empirical maxima
#: across the test grids sit well below these (see tests/invariants).
BLOCK_AWAKE_BUDGETS: Dict[str, int] = {
    "block:neighbor_refresh": 2,
    "block:upcast_moe": 2,
    "block:broadcast_coin": 2,
    "block:broadcast_moe": 2,
    "block:transmit_adjacent": 2,
    "block:announce_moe": 2,
    "block:upcast_valid": 2,
    "block:broadcast_valid": 2,
    "block:select_moes": 4,
    "block:moe_verdicts": 2,
    "block:upcast_nbr_info": 2,
    "block:broadcast_nbr_info": 2,
    "block:refresh_after_merge": 2,
    "block:merge_announce": 2,
    "block:merge_up": 2,
    "block:merge_down": 2,
    # Composite coloring span: Fast-Awake-Coloring runs 5 stages x (up to
    # 9 awake rounds: sA 2 + sB 2 + neighbor_awareness 5); the log-star
    # variant's Cole-Vishkin iterations + interlude + relabel stages stay
    # under the same roof for any feasible N.
    "block:coloring": 96,
    # Sleeping-MIS: each phase is one contend + one announce block, a
    # single transmit_adjacent awake round apiece.
    "block:mis_contend": 2,
    "block:mis_announce": 2,
}

#: Budget for block spans not named above (single toolbox procedures).
DEFAULT_BLOCK_AWAKE_BUDGET = 4


def _disagreement(
    name: str,
    lemma: str,
    point: str,
    phase: Optional[int],
    fragment: int,
    key: str,
    members: Dict[int, Any],
) -> Violation:
    values = {node: state.get(key) for node, state in members.items()}
    return Violation(
        invariant=name,
        lemma=lemma,
        message=(
            f"members of fragment {fragment} disagree on {key!r} at "
            f"{point}: {sorted(set(map(repr, values.values())))}"
        ),
        phase=phase,
        snapshot=snapshot_states(members),
    )


def group_by_fragment(
    snapshots: Dict[int, Dict[str, Any]]
) -> Dict[int, Dict[int, Dict[str, Any]]]:
    """Group a probe group's per-node snapshots by claimed fragment ID."""
    fragments: Dict[int, Dict[int, Dict[str, Any]]] = {}
    for node, state in snapshots.items():
        fragments.setdefault(state["fragment"], {})[node] = state
    return fragments


# ----------------------------------------------------------------------
# fldt-wellformed (Section 2.1)
# ----------------------------------------------------------------------

def check_fldt_wellformed(
    graph: Any, phase: Optional[int], snapshots: Dict[int, Dict[str, Any]]
) -> List[Violation]:
    """The per-node states form a valid FLDT (unique roots, symmetric
    parent/child pointers, exact levels, connected fragments)."""
    states = {
        node: LDTState(
            node_id=node,
            fragment_id=state["fragment"],
            level=state["level"],
            parent_port=state["parent_port"],
            children_ports=set(state["children_ports"]),
        )
        for node, state in snapshots.items()
    }
    try:
        check_fldt(graph, states)
    except AssertionError as error:
        return [
            Violation(
                invariant="fldt-wellformed",
                lemma="Section 2.1 (FLDT structure)",
                message=str(error),
                phase=phase,
                snapshot=snapshot_states(snapshots),
            )
        ]
    return []


# ----------------------------------------------------------------------
# mst-subforest (cut property; Lemma 2 context)
# ----------------------------------------------------------------------

def check_mst_subforest(
    reference_weights: Iterable[int],
    phase: Optional[int],
    snapshots: Dict[int, Dict[str, Any]],
) -> List[Violation]:
    """Every tree edge held at a phase boundary belongs to the real MST.

    This is the invariant whose breach *is* silent corruption: a faulted
    run that keeps passing it cannot terminate with a wrong tree.
    """
    reference = set(reference_weights)
    violations: List[Violation] = []
    for node in sorted(snapshots):
        state = snapshots[node]
        foreign = sorted(set(state["tree_weights"]) - reference)
        if foreign:
            violations.append(
                Violation(
                    invariant="mst-subforest",
                    lemma="Lemma 2 (merges along MOEs keep a subforest of the MST)",
                    message=(
                        f"node {node} holds tree edge weights {foreign[:10]} "
                        f"that are not in the MST"
                    ),
                    phase=phase,
                    node=node,
                    snapshot=snapshot_states(snapshots, nodes=(node,)),
                )
            )
    return violations


# ----------------------------------------------------------------------
# star-merge (Section 2.2, the coin-flip validity restriction)
# ----------------------------------------------------------------------

def check_star_merge(
    phase: Optional[int], snapshots: Dict[int, Dict[str, Any]]
) -> List[Violation]:
    """Merge components are stars: tails fragments around one heads fragment.

    Per fragment: members agree on (coin, moe, merging); at most one
    member owns the fragment MOE (weights are distinct) and a positive MOE
    has exactly one owner; a merging fragment flipped tails, its owner saw
    a valid MOE, and its target fragment flipped heads and is itself not
    merging; heads fragments never merge.
    """
    name, lemma = "star-merge", "Section 2.2 (tails->heads merge stars)"
    violations: List[Violation] = []
    fragments = group_by_fragment(snapshots)
    for fragment in sorted(fragments):
        members = fragments[fragment]
        for key in ("coin", "moe", "merging"):
            if len({repr(state.get(key)) for state in members.values()}) > 1:
                violations.append(
                    _disagreement(
                        name, lemma, "merge_decision", phase, fragment, key, members
                    )
                )
        sample = next(iter(members.values()))
        owners = sorted(
            node for node, state in members.items() if state.get("owner")
        )
        if len(owners) > 1:
            violations.append(
                Violation(
                    invariant=name,
                    lemma=lemma,
                    message=(
                        f"fragment {fragment} has {len(owners)} MOE owners "
                        f"{owners[:10]} (weights are distinct: at most one)"
                    ),
                    phase=phase,
                    snapshot=snapshot_states(members, nodes=tuple(owners)),
                )
            )
        if sample.get("moe") and not owners:
            violations.append(
                Violation(
                    invariant=name,
                    lemma=lemma,
                    message=(
                        f"fragment {fragment} announced MOE weight "
                        f"{sample['moe']} but no member owns that edge"
                    ),
                    phase=phase,
                    snapshot=snapshot_states(members),
                )
            )
        if not sample.get("merging"):
            continue
        # The fragment claims it merges this phase.
        if sample.get("coin") != TAILS:
            violations.append(
                Violation(
                    invariant=name,
                    lemma=lemma,
                    message=(
                        f"fragment {fragment} merges but flipped "
                        f"{sample.get('coin')!r} (only tails fragments merge)"
                    ),
                    phase=phase,
                    snapshot=snapshot_states(members),
                )
            )
        owner_states = [members[node] for node in owners]
        if owner_states and owner_states[0].get("valid") != 1:
            violations.append(
                Violation(
                    invariant=name,
                    lemma=lemma,
                    message=(
                        f"fragment {fragment} merges but its MOE owner "
                        f"saw valid={owner_states[0].get('valid')!r}"
                    ),
                    phase=phase,
                    node=owners[0],
                    snapshot=snapshot_states(members, nodes=tuple(owners)),
                )
            )
        target = owner_states[0].get("target") if owner_states else None
        if target is not None:
            target_members = fragments.get(target)
            if target_members is None:
                violations.append(
                    Violation(
                        invariant=name,
                        lemma=lemma,
                        message=(
                            f"fragment {fragment} merges into fragment "
                            f"{target}, which no node claims to be in"
                        ),
                        phase=phase,
                        snapshot=snapshot_states(members),
                    )
                )
            else:
                target_sample = next(iter(target_members.values()))
                if target_sample.get("coin") != HEADS:
                    violations.append(
                        Violation(
                            invariant=name,
                            lemma=lemma,
                            message=(
                                f"fragment {fragment} merges into fragment "
                                f"{target}, which flipped "
                                f"{target_sample.get('coin')!r} (must be heads)"
                            ),
                            phase=phase,
                            snapshot=snapshot_states(
                                {**members, **target_members}
                            ),
                        )
                    )
                if target_sample.get("merging"):
                    violations.append(
                        Violation(
                            invariant=name,
                            lemma=lemma,
                            message=(
                                f"merge target fragment {target} is itself "
                                f"merging: the component is not a star"
                            ),
                            phase=phase,
                            snapshot=snapshot_states(target_members),
                        )
                    )
    return violations


# ----------------------------------------------------------------------
# moe-sparsification (Section 2.3, step (i): token selection)
# ----------------------------------------------------------------------

def check_moe_sparsification(
    phase: Optional[int], snapshots: Dict[int, Dict[str, Any]]
) -> List[Violation]:
    """NBR-INFO keeps <=3 valid incoming MOEs (and <=1 outgoing, <=4 total),
    members agree on it, selections match it, and it is symmetric across
    fragments (A keeps an outgoing edge to B iff B selected it)."""
    name = "moe-sparsification"
    lemma = "Section 2.3 step (i) (<=3 valid incoming MOEs; supergraph degree <=4)"
    violations: List[Violation] = []
    fragments = group_by_fragment(snapshots)
    info_of: Dict[int, Tuple[Tuple[int, int, int], ...]] = {}
    for fragment in sorted(fragments):
        members = fragments[fragment]
        if len({repr(state.get("nbr_info")) for state in members.values()}) > 1:
            violations.append(
                _disagreement(
                    name, lemma, "moe_sparsify", phase, fragment, "nbr_info", members
                )
            )
            continue
        info = tuple(next(iter(members.values())).get("nbr_info") or ())
        info_of[fragment] = info
        incoming = [entry for entry in info if entry[2] == DIR_IN]
        outgoing = [entry for entry in info if entry[2] == DIR_OUT]
        if len(incoming) > MAX_VALID_INCOMING:
            violations.append(
                Violation(
                    invariant=name,
                    lemma=lemma,
                    message=(
                        f"fragment {fragment} kept {len(incoming)} incoming "
                        f"MOEs (limit {MAX_VALID_INCOMING}): {incoming}"
                    ),
                    phase=phase,
                    snapshot=snapshot_states(members),
                )
            )
        if len(outgoing) > 1:
            violations.append(
                Violation(
                    invariant=name,
                    lemma=lemma,
                    message=(
                        f"fragment {fragment} kept {len(outgoing)} outgoing "
                        f"MOEs (a fragment has one MOE): {outgoing}"
                    ),
                    phase=phase,
                    snapshot=snapshot_states(members),
                )
            )
        selected_pairs = sorted(
            pair for state in members.values() for pair in state.get("selected", ())
        )
        incoming_pairs = sorted((entry[0], entry[1]) for entry in incoming)
        if selected_pairs != incoming_pairs:
            violations.append(
                Violation(
                    invariant=name,
                    lemma=lemma,
                    message=(
                        f"fragment {fragment}: selected incoming MOEs "
                        f"{selected_pairs} do not match NBR-INFO incoming "
                        f"entries {incoming_pairs}"
                    ),
                    phase=phase,
                    snapshot=snapshot_states(members),
                )
            )
    for fragment in sorted(info_of):
        for nbr_fragment, weight, direction in info_of[fragment]:
            if direction != DIR_OUT:
                continue
            mirrored = info_of.get(nbr_fragment, ())
            if (fragment, weight, DIR_IN) not in mirrored:
                violations.append(
                    Violation(
                        invariant=name,
                        lemma=lemma,
                        message=(
                            f"fragment {fragment} kept outgoing MOE "
                            f"(weight {weight}) to fragment {nbr_fragment}, "
                            f"but the target did not select it"
                        ),
                        phase=phase,
                        snapshot=snapshot_states(fragments.get(nbr_fragment, {})),
                    )
                )
    return violations


# ----------------------------------------------------------------------
# coloring-legal (Section 2.3, Lemma 4)
# ----------------------------------------------------------------------

def check_coloring_legal(
    phase: Optional[int], snapshots: Dict[int, Dict[str, Any]]
) -> List[Violation]:
    """The fragment supergraph G' is legally 5-colored: every color is in
    the palette, fragment members agree, G'-adjacent fragments differ, and
    each fragment's view of its neighbours' colors matches their own."""
    name, lemma = "coloring-legal", "Lemma 4 (legal 5-coloring of G')"
    violations: List[Violation] = []
    fragments = group_by_fragment(snapshots)
    color_of: Dict[int, int] = {}
    for fragment in sorted(fragments):
        members = fragments[fragment]
        if len({state.get("color") for state in members.values()}) > 1:
            violations.append(
                _disagreement(
                    name, lemma, "coloring", phase, fragment, "color", members
                )
            )
            continue
        color = next(iter(members.values())).get("color")
        color_of[fragment] = color
        if color not in PALETTE:
            violations.append(
                Violation(
                    invariant=name,
                    lemma=lemma,
                    message=(
                        f"fragment {fragment} holds color {color!r}, outside "
                        f"the 5-color palette {tuple(PALETTE)}"
                    ),
                    phase=phase,
                    snapshot=snapshot_states(members),
                )
            )
    for fragment in sorted(fragments):
        members = fragments[fragment]
        sample = next(iter(members.values()))
        own_color = color_of.get(fragment)
        for nbr_fragment, claimed in sample.get("nbr_colors", ()):
            actual = color_of.get(nbr_fragment)
            if actual is not None and claimed != actual:
                violations.append(
                    Violation(
                        invariant=name,
                        lemma=lemma,
                        message=(
                            f"fragment {fragment} believes neighbour "
                            f"{nbr_fragment} has color {claimed}, but it "
                            f"has color {actual}"
                        ),
                        phase=phase,
                        snapshot=snapshot_states(members),
                    )
                )
            if claimed == own_color:
                violations.append(
                    Violation(
                        invariant=name,
                        lemma=lemma,
                        message=(
                            f"G' edge between fragments {fragment} and "
                            f"{nbr_fragment} is monochromatic (color "
                            f"{own_color})"
                        ),
                        phase=phase,
                        snapshot=snapshot_states(members),
                    )
                )
    return violations


# ----------------------------------------------------------------------
# block-awake-budget (Theorem 1 / Lemma 7: O(1) awake per block)
# ----------------------------------------------------------------------

def check_block_awake(
    record: Any, budgets: Optional[Dict[str, int]] = None
) -> List[Violation]:
    """One closed block span stays within its awake-round budget.

    ``record`` is a :class:`repro.obs.SpanRecord`; non-block spans are
    ignored.
    """
    path = record.path
    if not path:
        return []
    block = path[-1]
    if not block.startswith("block:"):
        return []
    table = budgets if budgets is not None else BLOCK_AWAKE_BUDGETS
    budget = table.get(block, DEFAULT_BLOCK_AWAKE_BUDGET)
    if record.awake <= budget:
        return []
    phase: Optional[int] = None
    for part in reversed(path[:-1]):
        if part.startswith("phase:"):
            phase = int(part.split(":", 1)[1])
            break
    return [
        Violation(
            invariant="block-awake-budget",
            lemma="Theorem 1 / Lemma 7 (O(1) awake rounds per block)",
            message=(
                f"node {record.node} spent {record.awake} awake rounds in "
                f"{block} (budget {budget})"
            ),
            phase=phase,
            block=block,
            node=record.node,
            snapshot={record.node: record.to_dict()},
        )
    ]


# ----------------------------------------------------------------------
# congest-bit-budget (Section 1.1, CONGEST model)
# ----------------------------------------------------------------------

def check_congest_budget(metrics: Any, budget: int) -> List[Violation]:
    """No message ever exceeded the O(log n)-bit CONGEST budget."""
    violations: List[Violation] = []
    if metrics.congest_violations:
        violations.append(
            Violation(
                invariant="congest-bit-budget",
                lemma="Section 1.1 (CONGEST: O(log n)-bit messages)",
                message=(
                    f"{metrics.congest_violations} message(s) exceeded the "
                    f"CONGEST budget of {budget} bits"
                ),
            )
        )
    elif metrics.max_message_bits > budget:
        violations.append(
            Violation(
                invariant="congest-bit-budget",
                lemma="Section 1.1 (CONGEST: O(log n)-bit messages)",
                message=(
                    f"largest message was {metrics.max_message_bits} bits, "
                    f"over the budget of {budget} bits"
                ),
            )
        )
    return violations


# ----------------------------------------------------------------------
# mis-independence / mis-no-uncovered-node (arXiv 2204.08359)
# ----------------------------------------------------------------------

def check_mis_independence(
    graph: Any, phase: Optional[int], snapshots: Dict[int, Dict[str, Any]]
) -> List[Violation]:
    """No two adjacent nodes both decided *in* (independence)."""
    if graph is None or not hasattr(graph, "edges"):
        return []
    in_mis = {
        node for node, state in snapshots.items() if state.get("in_mis")
    }
    violations: List[Violation] = []
    for edge in graph.edges():
        if edge.u in in_mis and edge.v in in_mis:
            violations.append(
                Violation(
                    invariant="mis-independence",
                    lemma="MIS independence (arXiv 2204.08359, Lemma 1)",
                    message=(
                        f"adjacent nodes {edge.u} and {edge.v} both "
                        f"decided to join the MIS"
                    ),
                    phase=phase,
                    snapshot=snapshot_states(
                        {
                            node: snapshots[node]
                            for node in (edge.u, edge.v)
                        }
                    ),
                )
            )
    return violations


def check_mis_maximality(
    graph: Any, phase: Optional[int], snapshots: Dict[int, Dict[str, Any]]
) -> List[Violation]:
    """Every *out* node has an *in* neighbour (no uncovered node)."""
    if graph is None or not hasattr(graph, "neighbors"):
        return []
    in_mis = {
        node for node, state in snapshots.items() if state.get("in_mis")
    }
    violations: List[Violation] = []
    for node, state in sorted(snapshots.items()):
        if state.get("in_mis"):
            continue
        if not any(nbr in in_mis for nbr in graph.neighbors(node)):
            violations.append(
                Violation(
                    invariant="mis-no-uncovered-node",
                    lemma="MIS maximality (arXiv 2204.08359, Lemma 2)",
                    message=(
                        f"node {node} decided out of the MIS but none of "
                        f"its neighbours joined"
                    ),
                    phase=phase,
                    node=node,
                    snapshot=snapshot_states({node: state}),
                )
            )
    return violations
