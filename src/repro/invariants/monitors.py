"""Runtime protocol-invariant monitors and their registry.

A :class:`MonitorSet` attaches to a simulation
(``SleepingSimulator(monitors=...)`` or any runner forwarding
``monitors=``) and checks the paper's per-phase lemmas *while the run
executes*:

* protocol code emits tiny state snapshots at named **probe points**
  (``ctx.probe("phase_end", ...)``); the set buffers them per
  ``(point, phase)`` and fires each global checker the moment all ``n``
  nodes have reported — the block-aligned schedules guarantee phase ``p``
  probes all precede phase ``p+1`` probes, so violations stream out in
  causal order and the *first* one survives even if the run later crashes
  or hangs;
* the obs layer forwards every **closed span** (per-block awake budgets)
  and the engine calls :meth:`MonitorSet.finalize` with the end-of-run
  metrics (CONGEST budget).

Monitors are observers in the strict sense: they never touch protocol
randomness, messages, or schedules, and a detached run
(``monitors=None``, the default) takes the engine fast path untouched —
byte-identical output, pinned by the golden transport tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .checks import (
    BLOCK_AWAKE_BUDGETS,
    check_block_awake,
    check_coloring_legal,
    check_congest_budget,
    check_fldt_wellformed,
    check_mis_independence,
    check_mis_maximality,
    check_moe_sparsification,
    check_mst_subforest,
    check_star_merge,
)
from .report import InvariantViolation, Violation, ViolationReport


class MonitorView:
    """What monitors may know about the run: the graph, nothing mutable."""

    def __init__(self, graph: Any, node_ids: Sequence[int], seed: int = 0):
        self.graph = graph
        self.node_ids = tuple(node_ids)
        self.n = len(self.node_ids)
        self.seed = seed
        self._reference_mst: Optional[frozenset] = None
        self._reference_tried = False

    @property
    def reference_mst(self) -> Optional[frozenset]:
        """MST edge weights of the underlying graph, or ``None`` when the
        graph object cannot provide them (computed lazily, once)."""
        if not self._reference_tried:
            self._reference_tried = True
            try:
                from repro.graphs import mst_weight_set

                self._reference_mst = frozenset(mst_weight_set(self.graph))
            except Exception:  # noqa: BLE001 - non-WeightedGraph duck types
                self._reference_mst = None
        return self._reference_mst


@dataclass
class FinalizeContext:
    """End-of-run evidence handed to :meth:`InvariantMonitor.finalize`."""

    view: MonitorView
    metrics: Any = None
    spans: Any = None
    results: Optional[Dict[int, Any]] = None
    congest_budget: int = 0
    #: Probe groups never completed (phase truncated by crash/hang).
    incomplete: Dict[Tuple[str, Optional[int]], Dict[int, Any]] = field(
        default_factory=dict
    )


class InvariantMonitor:
    """Base class: subscribe to probe points and/or span closures."""

    #: Registry name (kebab-case) — what reports and CLI flags use.
    name: str = ""
    #: Paper statement this monitor enforces.
    lemma: str = ""
    #: Probe points whose completed groups this monitor checks.
    points: Tuple[str, ...] = ()
    #: Whether :meth:`on_span_close` should be fed closed span records.
    wants_spans: bool = False

    def reset(self, view: MonitorView) -> None:
        """Called once per run before any probe arrives."""

    def check_group(
        self, point: str, phase: Optional[int], snapshots: Dict[int, Dict[str, Any]]
    ) -> Iterable[Violation]:
        return ()

    def on_span_close(self, record: Any) -> Iterable[Violation]:
        return ()

    def finalize(self, ctx: FinalizeContext) -> Iterable[Violation]:
        return ()


class FLDTMonitor(InvariantMonitor):
    name = "fldt-wellformed"
    lemma = "Section 2.1 (FLDT structure)"
    points = ("phase_end",)

    def reset(self, view: MonitorView) -> None:
        self._view = view

    def check_group(self, point, phase, snapshots):
        return check_fldt_wellformed(self._view.graph, phase, snapshots)


class MSTSubforestMonitor(InvariantMonitor):
    name = "mst-subforest"
    lemma = "Lemma 2 (phase-boundary forest is a subforest of the MST)"
    points = ("phase_end",)

    def reset(self, view: MonitorView) -> None:
        self._view = view

    def check_group(self, point, phase, snapshots):
        reference = self._view.reference_mst
        if reference is None:
            return ()
        return check_mst_subforest(reference, phase, snapshots)


class StarMergeMonitor(InvariantMonitor):
    name = "star-merge"
    lemma = "Section 2.2 (tails->heads merge stars)"
    points = ("merge_decision",)

    def check_group(self, point, phase, snapshots):
        return check_star_merge(phase, snapshots)


class MOESparsificationMonitor(InvariantMonitor):
    name = "moe-sparsification"
    lemma = "Section 2.3 step (i) (<=3 valid incoming MOEs)"
    points = ("moe_sparsify",)

    def check_group(self, point, phase, snapshots):
        return check_moe_sparsification(phase, snapshots)


class ColoringMonitor(InvariantMonitor):
    name = "coloring-legal"
    lemma = "Lemma 4 (legal 5-coloring of the degree-<=4 supergraph)"
    points = ("coloring",)

    def check_group(self, point, phase, snapshots):
        return check_coloring_legal(phase, snapshots)


class FragmentCountMonitor(InvariantMonitor):
    """Fragment-count contraction (Lemma 1 / the phase-budget arguments).

    The count never increases; in ``Randomized-MST`` it drops by exactly
    the number of merging (tails-and-valid) fragments; in
    ``Deterministic-MST`` every phase with >=2 fragments removes at least
    one Blue fragment.
    """

    name = "fragment-count-halving"
    lemma = "Lemma 1 (constant-factor fragment contraction per phase)"
    points = ("phase_end", "merge_decision", "coloring")

    def reset(self, view: MonitorView) -> None:
        self._last: Tuple[int, int] = (0, view.n)
        self._merged: Dict[Optional[int], int] = {}
        self._deterministic: set = set()

    def check_group(self, point, phase, snapshots):
        if point == "merge_decision":
            merging = {
                state["fragment"]
                for state in snapshots.values()
                if state.get("merging")
            }
            self._merged[phase] = len(merging)
            return ()
        if point == "coloring":
            self._deterministic.add(phase)
            return ()
        count = len({state["fragment"] for state in snapshots.values()})
        last_phase, last_count = self._last
        self._last = (phase if phase is not None else last_phase + 1, count)
        violations: List[Violation] = []
        if count > last_count:
            violations.append(
                Violation(
                    invariant=self.name,
                    lemma=self.lemma,
                    message=(
                        f"fragment count increased from {last_count} (phase "
                        f"{last_phase}) to {count}"
                    ),
                    phase=phase,
                )
            )
            return violations
        merged = self._merged.get(phase)
        if merged is not None and count != last_count - merged:
            violations.append(
                Violation(
                    invariant=self.name,
                    lemma=self.lemma,
                    message=(
                        f"{merged} fragment(s) merged but the count went "
                        f"{last_count} -> {count} (expected "
                        f"{last_count - merged})"
                    ),
                    phase=phase,
                )
            )
        if (
            phase in self._deterministic
            and last_count >= 2
            and count >= last_count
        ):
            violations.append(
                Violation(
                    invariant=self.name,
                    lemma=self.lemma,
                    message=(
                        f"deterministic phase with {last_count} fragments "
                        f"merged none (count still {count}); every phase "
                        f"with >=2 fragments removes a Blue fragment"
                    ),
                    phase=phase,
                )
            )
        return violations


class AwakeBudgetMonitor(InvariantMonitor):
    """Per-block awake budgets (Theorem 1 / Lemma 7: O(1) awake/block)."""

    name = "block-awake-budget"
    lemma = "Theorem 1 / Lemma 7 (O(1) awake rounds per block)"
    wants_spans = True

    def __init__(self, budgets: Optional[Dict[str, int]] = None):
        self.budgets = dict(BLOCK_AWAKE_BUDGETS if budgets is None else budgets)

    def on_span_close(self, record):
        return check_block_awake(record, self.budgets)


class CongestBudgetMonitor(InvariantMonitor):
    name = "congest-bit-budget"
    lemma = "Section 1.1 (CONGEST: O(log n)-bit messages)"

    def finalize(self, ctx: FinalizeContext):
        if ctx.metrics is None:
            return ()
        return check_congest_budget(ctx.metrics, ctx.congest_budget)


class MISIndependenceMonitor(InvariantMonitor):
    """No two adjacent nodes both join the MIS."""

    name = "mis-independence"
    lemma = "MIS independence (arXiv 2204.08359, Lemma 1)"
    points = ("mis_decided",)

    def reset(self, view: MonitorView) -> None:
        self._view = view

    def check_group(self, point, phase, snapshots):
        return check_mis_independence(self._view.graph, phase, snapshots)


class MISMaximalityMonitor(InvariantMonitor):
    """Every node out of the MIS is dominated by an MIS neighbour."""

    name = "mis-no-uncovered-node"
    lemma = "MIS maximality (arXiv 2204.08359, Lemma 2)"
    points = ("mis_decided",)

    def reset(self, view: MonitorView) -> None:
        self._view = view

    def check_group(self, point, phase, snapshots):
        return check_mis_maximality(self._view.graph, phase, snapshots)


#: Registry order is also the finalize/check ordering for same-instant hits.
MONITOR_REGISTRY: Dict[str, type] = {
    monitor.name: monitor
    for monitor in (
        FLDTMonitor,
        MSTSubforestMonitor,
        StarMergeMonitor,
        MOESparsificationMonitor,
        ColoringMonitor,
        FragmentCountMonitor,
        AwakeBudgetMonitor,
        CongestBudgetMonitor,
        MISIndependenceMonitor,
        MISMaximalityMonitor,
    )
}

#: The MST monitor names — the original, stable public tuple.  Kept as the
#: first eight registry entries (and the :class:`MonitorSet` default) for
#: backwards compatibility; per-problem expansion of ``--monitors all``
#: goes through :data:`PROBLEM_MONITORS` instead.
MONITOR_NAMES: Tuple[str, ...] = tuple(MONITOR_REGISTRY)[:8]

#: What ``--monitors all`` expands to, per problem.  Mirrored by each
#: :class:`repro.problems.ProblemBundle.monitors`; kept here (not in the
#: bundles) so :mod:`repro.invariants` stays import-independent of
#: :mod:`repro.problems`.
PROBLEM_MONITORS: Dict[str, Tuple[str, ...]] = {
    "mst": MONITOR_NAMES,
    "mis": (
        "mis-independence",
        "mis-no-uncovered-node",
        "block-awake-budget",
        "congest-bit-budget",
    ),
}

#: Spec values meaning "no monitors".
_OFF_SPECS = ("", "off", "none", "null")


def resolve_monitor_spec(spec: Optional[str]) -> Optional[str]:
    """Normalize a ``--monitors`` spec; raise ``ValueError`` on unknowns.

    ``None`` / ``"off"`` / ``"none"`` -> ``None`` (detached);
    ``"all"`` -> ``"all"``; otherwise a comma-separated list of registry
    names, canonicalized into registry order.
    """
    if spec is None:
        return None
    text = spec.strip().lower()
    if text in _OFF_SPECS:
        return None
    if text == "all":
        return "all"
    requested = [part.strip() for part in text.split(",") if part.strip()]
    unknown = [name for name in requested if name not in MONITOR_REGISTRY]
    if unknown:
        raise ValueError(
            f"unknown monitor(s) {unknown}; available: "
            f"{', '.join(MONITOR_REGISTRY)}"
        )
    ordered = [name for name in MONITOR_REGISTRY if name in set(requested)]
    return ",".join(ordered)


def build_monitor_set(
    spec: Optional[str] = "all", mode: str = "record", problem: str = "mst"
) -> Optional["MonitorSet"]:
    """Build a :class:`MonitorSet` from a spec string (``None`` when off).

    ``"all"`` expands per problem through :data:`PROBLEM_MONITORS` —
    deliberately at *build* time, not spec-resolution time, so grid spec
    strings (and therefore :class:`~repro.orchestrator.jobs.JobSpec`
    hashes) stay problem-independent.
    """
    canonical = resolve_monitor_spec(spec)
    if canonical is None:
        return None
    if canonical == "all":
        names: Iterable[str] = PROBLEM_MONITORS.get(problem, MONITOR_NAMES)
    else:
        names = canonical.split(",")
    return MonitorSet([MONITOR_REGISTRY[name]() for name in names], mode=mode)


class MonitorSet:
    """A group of monitors attached to one simulation run.

    The engine duck-types this interface (``attach`` / ``on_probe`` /
    ``on_span_close`` / ``finalize`` / ``__len__``), so
    :mod:`repro.sim` never imports this package.
    """

    def __init__(
        self,
        monitors: Optional[Iterable[InvariantMonitor]] = None,
        mode: str = "record",
    ):
        if mode not in ("record", "strict"):
            raise ValueError(f"unknown monitor mode {mode!r}")
        if monitors is None:
            monitors = [MONITOR_REGISTRY[name]() for name in MONITOR_NAMES]
        self.monitors: List[InvariantMonitor] = list(monitors)
        self.mode = mode
        self.report = ViolationReport()
        self.view: Optional[MonitorView] = None
        self._points: Dict[str, List[InvariantMonitor]] = {}
        self._span_monitors: List[InvariantMonitor] = []
        self._buffers: Dict[Tuple[str, Optional[int]], Dict[int, Dict[str, Any]]] = {}
        self._finalized = False
        self._n = 0
        for monitor in self.monitors:
            for point in monitor.points:
                self._points.setdefault(point, []).append(monitor)
            if monitor.wants_spans:
                self._span_monitors.append(monitor)

    def __len__(self) -> int:
        return len(self.monitors)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(monitor.name for monitor in self.monitors)

    @property
    def violations(self) -> List[Violation]:
        return self.report.violations

    # -- engine-facing hooks -------------------------------------------

    def attach(self, graph: Any, node_ids: Sequence[int], seed: int = 0) -> None:
        """(Re)initialize for a fresh run — called by the engine."""
        self.view = MonitorView(graph, node_ids, seed=seed)
        self.report = ViolationReport()
        self._buffers = {}
        self._finalized = False
        self._n = self.view.n
        for monitor in self.monitors:
            monitor.reset(self.view)

    def on_probe(
        self, node: int, round_number: int, point: str, payload: Dict[str, Any]
    ) -> None:
        """Buffer one node's snapshot; fire checkers on a complete group."""
        interested = self._points.get(point)
        if interested is None:
            return
        phase = payload.get("phase")
        key = (point, phase)
        buffer = self._buffers.setdefault(key, {})
        buffer[node] = payload
        if len(buffer) < self._n:
            return
        del self._buffers[key]
        for monitor in interested:
            self.report.checks_run += 1
            self._record(monitor.check_group(point, phase, buffer))

    def on_span_close(self, record: Any) -> None:
        for monitor in self._span_monitors:
            self._record(monitor.on_span_close(record))

    def finalize(
        self,
        metrics: Any = None,
        spans: Any = None,
        results: Optional[Dict[int, Any]] = None,
        congest_budget: int = 0,
    ) -> ViolationReport:
        """End-of-run checks; also files incomplete probe groups.

        Idempotent: a crashed run is finalized by
        :func:`repro.graphs.verify_or_diagnose` (the engine never got
        there), while a clean run is finalized by the engine — callers
        that do both must not double-count checks.
        """
        if self._finalized:
            return self.report
        self._finalized = True
        view = self.view if self.view is not None else MonitorView(None, ())
        for (point, phase), buffer in sorted(
            self._buffers.items(), key=lambda item: (str(item[0][0]), item[0][1] or 0)
        ):
            self.report.incomplete_groups.append(
                (point, phase, len(buffer), self._n)
            )
        ctx = FinalizeContext(
            view=view,
            metrics=metrics,
            spans=spans,
            results=results,
            congest_budget=congest_budget,
            incomplete=dict(self._buffers),
        )
        for monitor in self.monitors:
            self.report.checks_run += 1
            self._record(monitor.finalize(ctx))
        return self.report

    # -- internals -----------------------------------------------------

    def _record(self, violations: Iterable[Violation]) -> None:
        for violation in violations:
            self.report.add(violation)
            if self.mode == "strict":
                raise InvariantViolation(violation)
