"""Violation report model for runtime protocol-invariant monitors.

A :class:`Violation` is one observed breach of a paper invariant: which
monitor fired, in which phase (and block / node where that is meaningful),
a human-readable message, and a snapshot of the offending state so a
post-mortem does not have to re-run the simulation.

A :class:`ViolationReport` collects every violation of one run in firing
order.  The **first** entry is the diagnostic headline — under fault
injection the earliest broken invariant is the one closest to the root
cause, and it is what :func:`repro.graphs.verify_or_diagnose` surfaces as
``first_invariant``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Cap on the number of per-node entries embedded in a violation snapshot;
#: keeps reports readable (and JSON-serializable at sane sizes) on large
#: graphs while still naming the offending state for small ones.
SNAPSHOT_NODE_CAP = 32


def snapshot_states(
    snapshots: Dict[int, Any], nodes: Optional[Tuple[int, ...]] = None
) -> Dict[int, Any]:
    """Build a bounded state snapshot for a violation.

    ``nodes`` selects the offending subset when the checker knows it;
    otherwise the lowest-ID :data:`SNAPSHOT_NODE_CAP` nodes are kept.
    """
    if nodes:
        keys = [node for node in nodes if node in snapshots]
    else:
        keys = sorted(snapshots)
    return {node: snapshots[node] for node in keys[:SNAPSHOT_NODE_CAP]}


@dataclass(frozen=True)
class Violation:
    """One breach of one invariant.

    ``invariant`` is the monitor's registry name (e.g. ``star-merge``);
    ``lemma`` names the paper statement it checks.  ``phase`` / ``block`` /
    ``node`` are filled when the breach localizes that far (a global check
    such as FLDT well-formedness has a phase but no single node).
    """

    invariant: str
    lemma: str
    message: str
    phase: Optional[int] = None
    block: Optional[str] = None
    node: Optional[int] = None
    #: Offending state, keyed by node ID (bounded; see ``snapshot_states``).
    snapshot: Dict[int, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "lemma": self.lemma,
            "message": self.message,
            "phase": self.phase,
            "block": self.block,
            "node": self.node,
            "snapshot": {str(node): state for node, state in self.snapshot.items()},
        }

    def __str__(self) -> str:
        where = []
        if self.phase is not None:
            where.append(f"phase {self.phase}")
        if self.block is not None:
            where.append(f"block {self.block}")
        if self.node is not None:
            where.append(f"node {self.node}")
        location = f" [{', '.join(where)}]" if where else ""
        return f"{self.invariant}{location}: {self.message}"


class InvariantViolation(AssertionError):
    """Raised in strict mode the moment the first invariant breaks.

    Subclasses ``AssertionError`` so :func:`repro.graphs.verify_or_diagnose`
    classifies a strict-mode stop as ``detected_wrong``.  Note the raise
    happens inside the protocol step that completed the offending probe
    group, so the engine reports it wrapped in
    :class:`~repro.sim.errors.NodeCrashed` attributed to that node.
    """

    def __init__(self, violation: Violation):
        super().__init__(str(violation))
        self.violation = violation


class ViolationReport:
    """All violations of one run, in firing order, plus check bookkeeping."""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        #: Number of invariant group/finalize checks executed (``0`` means
        #: the run emitted no probes at all — e.g. an uninstrumented
        #: baseline protocol — which a sweep should treat as vacuous).
        self.checks_run: int = 0
        #: Probe groups still incomplete at finalize (phase truncated by a
        #: crash/hang); ``(point, phase, reported, expected)`` tuples.
        self.incomplete_groups: List[Tuple[str, Optional[int], int, int]] = []

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    @property
    def first(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None

    @property
    def first_invariant(self) -> Optional[str]:
        return self.violations[0].invariant if self.violations else None

    def ok(self) -> bool:
        return not self.violations

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self):
        return iter(self.violations)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "violations": [violation.to_dict() for violation in self.violations],
            "first_invariant": self.first_invariant,
            "checks_run": self.checks_run,
            "incomplete_groups": [
                {
                    "point": point,
                    "phase": phase,
                    "reported": reported,
                    "expected": expected,
                }
                for point, phase, reported, expected in self.incomplete_groups
            ],
        }

    def summary(self) -> str:
        if not self.violations:
            return f"ok ({self.checks_run} checks)"
        head = self.violations[0]
        extra = len(self.violations) - 1
        tail = f" (+{extra} more)" if extra else ""
        return f"{head}{tail}"
