"""Lower-bound constructions and empirical certificates (Section 3)."""

from .cuts import (
    awake_bound_from_congestion,
    cut_crossing_bits,
    middle_cut,
    r_j_cut,
    row_cut_bits,
)
from .dsd import (
    DSDNodeOutput,
    DSDRunResult,
    dsd_deadline,
    dsd_flooding_protocol,
    run_dsd_flooding,
)
from .grc import GrcEdge, GrcTopology, theorem4_regime
from .knowledge import (
    DecisionCertificate,
    RING_GROWTH_FACTOR,
    certify_ring_run,
    knowledge_growth_curve,
    max_growth_factor,
    minimum_awake_for_reach,
)
from .reductions import (
    ReductionOutcome,
    SDInstance,
    congestion_lower_bound_bits,
    css_is_connected_spanning,
    dsd_marked_edges,
    mst_uses_heavy_edge,
    random_sd_instance,
    solve_sd_via_mst,
)
from .ring import RingInstance, expected_omitted_weight, ring_family, theorem3_ring

__all__ = [
    "DSDNodeOutput",
    "DSDRunResult",
    "DecisionCertificate",
    "awake_bound_from_congestion",
    "cut_crossing_bits",
    "GrcEdge",
    "GrcTopology",
    "RING_GROWTH_FACTOR",
    "ReductionOutcome",
    "RingInstance",
    "SDInstance",
    "certify_ring_run",
    "congestion_lower_bound_bits",
    "css_is_connected_spanning",
    "dsd_deadline",
    "dsd_flooding_protocol",
    "dsd_marked_edges",
    "expected_omitted_weight",
    "knowledge_growth_curve",
    "max_growth_factor",
    "middle_cut",
    "minimum_awake_for_reach",
    "mst_uses_heavy_edge",
    "r_j_cut",
    "random_sd_instance",
    "row_cut_bits",
    "ring_family",
    "run_dsd_flooding",
    "solve_sd_via_mst",
    "theorem3_ring",
    "theorem4_regime",
]
