"""Cut-congestion accounting — the measurable core of Lemma 8.

Lemma 8 lower-bounds awake time by *congestion*: Alice can simulate the
regions ``R_j`` of ``G_rc`` on her own, except for the bits that protocol
messages carry **across the cut** into the internal tree nodes; solving
set disjointness forces ``Ω(r)`` such bits, and squeezing them through the
``O(log n)`` tree nodes makes some node awake for ``Ω(r / log² n)`` rounds.

The quantity the argument turns on — bits crossing a node cut during an
execution — is directly measurable from a traced run.  This module
provides:

* :func:`cut_crossing_bits` — total payload bits carried by messages whose
  endpoints lie on opposite sides of an arbitrary node partition;
* :func:`r_j_cut` — the paper's ``R_j`` regions of ``G_rc`` (the first
  ``j`` vertices of every row, plus the internal tree nodes ``I``);
* :func:`awake_bound_from_congestion` — Lemma 8's arithmetic: ``B`` bits
  through ``k`` constant-degree nodes under a ``w``-bit message budget
  force some node to be awake ``≥ B / (k · degree · w)`` rounds.
"""

from __future__ import annotations

import math
from typing import Iterable, Set

from repro.sim import EventTrace
from repro.sim.congest import payload_bits

from .grc import GrcTopology


def cut_crossing_bits(trace: EventTrace, left_nodes: Iterable[int]) -> int:
    """Total bits of *delivered* messages crossing the (left, right) cut.

    ``deliver`` events carry (receiver=node, sender=peer); a message
    crosses iff exactly one endpoint is in ``left_nodes``.
    """
    left = set(left_nodes)
    total = 0
    for event in trace.of_kind("deliver"):
        receiver, sender = event.node, event.peer
        if (receiver in left) != (sender in left):
            total += payload_bits(event.detail)
    return total


def r_j_cut(topology: GrcTopology, j: int) -> Set[int]:
    """The paper's region ``R_j``: first ``j`` columns of every row + ``I``."""
    if not 1 <= j <= topology.c:
        raise ValueError(f"j must be in [1, {topology.c}]")
    region = {
        topology.node_at(row, column)
        for row in range(1, topology.r + 1)
        for column in range(1, j + 1)
    }
    region.update(topology.internal_nodes)
    return region


def middle_cut(topology: GrcTopology) -> Set[int]:
    """``R_{c/2}`` — the canonical cut for congestion measurements."""
    return r_j_cut(topology, topology.c // 2)


def row_cut_bits(trace: EventTrace, topology: GrcTopology, j: int) -> int:
    """Bits crossing ``(R_j, complement)`` during a traced run."""
    return cut_crossing_bits(trace, r_j_cut(topology, j))


def awake_bound_from_congestion(
    bits: int, bottleneck_nodes: int, max_degree: int, message_bits: int
) -> int:
    """Lemma 8's pigeonhole: the awake rounds congestion forces.

    ``bits`` crossing into a set of ``bottleneck_nodes`` nodes, each of
    degree ≤ ``max_degree``, with at most ``message_bits`` per message,
    means some node in the set received ``≥ bits / bottleneck_nodes`` bits,
    which takes ``≥ bits / (bottleneck_nodes · max_degree · message_bits)``
    awake rounds (it can hear at most ``max_degree`` messages per round).
    """
    if bits <= 0:
        return 0
    per_node = bits / bottleneck_nodes
    return math.ceil(per_node / (max_degree * message_bits))
