"""Distributed Set Disjointness (DSD) solved directly — Observation 1.

Observation 1 notes that DSD (and CSS, and MST) *can* be computed on
``G_rc`` in ``O(D) = O(c / log n)`` rounds in the traditional model — the
point of Theorem 4 being that doing so forces high awake complexity.  This
module implements that protocol: a pipelined bit-flooding in which Alice
and Bob inject their input strings and every node forwards one not-yet-sent
item per port per round (CONGEST: each message carries one indexed bit,
far below the budget).

Every node eventually holds both strings and computes ``d(x, y)`` locally.
Two time measures matter:

* **completion round** — when a node first knows the answer: bounded by
  ``O(D + k)`` (the wave needs ``D`` hops and ``k`` items pipeline behind
  each other on a port);
* **termination round** — nodes cannot detect completion of *others*
  without more machinery, so everyone relays until the safe deadline
  ``n + 2k + 4`` and then stops.  In the traditional model the nodes are
  awake throughout — exactly the regime where the Theorem 4 trade-off
  bites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from repro.sim import Awake, NodeContext, SleepingSimulator

from .grc import GrcTopology
from .reductions import SDInstance

#: Item tags for Alice's and Bob's bits.
TAG_X, TAG_Y = 0, 1


@dataclass(frozen=True)
class DSDNodeOutput:
    """A node's result: the SD answer plus when it could first compute it."""

    node_id: int
    disjoint: bool
    #: Round in which the node first held both complete strings.
    completion_round: int


def dsd_deadline(n: int, k: int) -> int:
    """Safe relay deadline: every bit reaches every node well before this."""
    return n + 2 * k + 4


def dsd_flooding_protocol(
    ctx: NodeContext,
    k: int,
    alice_id: int,
    bob_id: int,
    bits_alice: Tuple[int, ...],
    bits_bob: Tuple[int, ...],
):
    """Pipelined flooding: one ``(tag, index, bit)`` item per port per round."""
    have: Dict[Tuple[int, int], int] = {}
    if ctx.node_id == alice_id:
        for index, bit in enumerate(bits_alice):
            have[(TAG_X, index)] = bit
    if ctx.node_id == bob_id:
        for index, bit in enumerate(bits_bob):
            have[(TAG_Y, index)] = bit

    queues: Dict[int, List[Tuple[int, int, int]]] = {
        port: [(tag, index, bit) for (tag, index), bit in sorted(have.items())]
        for port in ctx.ports
    }
    needed = 2 * k
    completion_round = 0
    deadline = dsd_deadline(ctx.n, k)

    for current_round in range(1, deadline + 1):
        sends: Dict[int, Any] = {}
        for port, queue in queues.items():
            if queue:
                sends[port] = queue.pop(0)
        inbox = yield Awake(current_round, sends)
        for port, (tag, index, bit) in inbox.items():
            if (tag, index) not in have:
                have[(tag, index)] = bit
                for other_port in ctx.ports:
                    if other_port != port:
                        queues[other_port].append((tag, index, bit))
        if completion_round == 0 and len(have) == needed:
            completion_round = current_round

    if len(have) != needed:
        raise RuntimeError(
            f"node {ctx.node_id} holds {len(have)}/{needed} items at the "
            "deadline — the deadline bound is wrong"
        )
    disjoint = not any(
        have[(TAG_X, index)] == 1 and have[(TAG_Y, index)] == 1
        for index in range(k)
    )
    return DSDNodeOutput(
        node_id=ctx.node_id,
        disjoint=disjoint,
        completion_round=completion_round,
    )


@dataclass
class DSDRunResult:
    """Outcome of one direct DSD execution on ``G_rc``."""

    #: The common answer (asserted identical across nodes).
    disjoint: bool
    #: Truth from the instance.
    truth: bool
    #: Max over nodes of the first round the answer was computable.
    completion_rounds: int
    #: Full-run round complexity (the relay deadline).
    rounds: int
    #: Awake complexity — equals rounds (traditional model).
    max_awake: int

    @property
    def correct(self) -> bool:
        return self.disjoint == self.truth


def run_dsd_flooding(
    topology: GrcTopology, instance: SDInstance, **sim_kwargs: Any
) -> DSDRunResult:
    """Solve the SD instance directly on ``G_rc`` by pipelined flooding."""
    if instance.k != topology.r - 1:
        raise ValueError(
            f"instance has {instance.k} bits; G_rc supports {topology.r - 1}"
        )
    graph, _ = topology.to_weighted_graph()

    def factory(ctx: NodeContext):
        return dsd_flooding_protocol(
            ctx,
            instance.k,
            topology.alice,
            topology.bob,
            instance.bits_alice,
            instance.bits_bob,
        )

    simulation = SleepingSimulator(graph, factory, **sim_kwargs).run()
    answers: Set[bool] = {
        output.disjoint for output in simulation.node_results.values()
    }
    if len(answers) != 1:
        raise AssertionError("nodes disagree on the DSD answer")
    completion = max(
        output.completion_round
        for output in simulation.node_results.values()
    )
    return DSDRunResult(
        disjoint=answers.pop(),
        truth=instance.disjoint,
        completion_rounds=completion,
        rounds=simulation.metrics.rounds,
        max_awake=simulation.metrics.max_awake,
    )
