"""The Theorem 4 lower-bound graph family ``G_rc`` (Figure 1).

``G_rc`` consists of:

* ``r`` parallel row paths ``p_1 .. p_r`` of ``c`` nodes each, with **Alice**
  the first node of ``p_1`` and **Bob** the last;
* Alice connected to the first node, and Bob to the last node, of every
  other row;
* a set ``X`` of ``Θ(log n)`` equally spaced columns of ``p_1`` (cardinality
  a power of two, containing Alice's and Bob's columns); each ``x ∈ X`` at
  column ``j`` has a *spoke* to the ``j``-th node of every other row;
* a balanced binary tree built over ``X`` as leaves, whose internal nodes
  ``I`` are fresh nodes.

Total size ``n = r·c + |X| - 1``; the interesting regime of Theorem 4 is
``c ∈ ω(√n · log² n)`` and ``r ∈ o(√n / log² n)``.  The spokes and tree
give the graph hop diameter ``Θ(c / log n)`` (Observation 1) while the
``r`` parallel paths form the communication bottleneck that forces either
many rounds or much congestion — hence the awake × rounds trade-off.

This module builds the topology and its derived weighted instances; the
SD → DSD → CSS → MST encodings live in
:mod:`repro.lower_bounds.reductions`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.graphs import WeightedGraph


@dataclass(frozen=True)
class GrcEdge:
    """One edge of ``G_rc`` with its structural role."""

    u: int
    v: int
    #: One of ``"row"``, ``"alice"``, ``"bob"``, ``"spoke"``, ``"tree"``.
    category: str
    #: The row this edge belongs to / attaches (``None`` for tree edges).
    row: Optional[int] = None

    @property
    def key(self) -> FrozenSet[int]:
        return frozenset((self.u, self.v))


class GrcTopology:
    """The unweighted structure of ``G_rc`` for given ``r`` rows, ``c`` columns.

    Node IDs: row ``ℓ`` (1-based), column ``j`` (1-based) is node
    ``(ℓ-1)·c + j``; the ``|X| - 1`` internal tree nodes follow.
    """

    def __init__(self, r: int, c: int) -> None:
        if r < 2:
            raise ValueError("G_rc needs r >= 2 rows")
        x_size = _x_cardinality(r * c)
        if c < x_size:
            raise ValueError(
                f"c={c} too small: need at least |X|={x_size} columns"
            )
        self.r = r
        self.c = c
        self.x_size = x_size

        self.alice = self.node_at(1, 1)
        self.bob = self.node_at(1, c)

        # Equally spaced X columns including the first and last.
        self.x_columns: List[int] = [
            1 + (t * (c - 1)) // (x_size - 1) for t in range(x_size)
        ]
        self.x_nodes: List[int] = [self.node_at(1, j) for j in self.x_columns]
        self.internal_nodes: List[int] = [
            r * c + i for i in range(1, x_size)
        ]

        self.edges: List[GrcEdge] = []
        self._build_edges()
        self._keys: Set[FrozenSet[int]] = {edge.key for edge in self.edges}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def node_at(self, row: int, column: int) -> int:
        """ID of the ``column``-th node of row path ``p_row`` (both 1-based)."""
        if not (1 <= row <= self.r and 1 <= column <= self.c):
            raise ValueError(f"({row}, {column}) outside {self.r}x{self.c}")
        return (row - 1) * self.c + column

    def _build_edges(self) -> None:
        # Row paths.
        for row in range(1, self.r + 1):
            for column in range(1, self.c):
                self.edges.append(
                    GrcEdge(
                        self.node_at(row, column),
                        self.node_at(row, column + 1),
                        "row",
                        row,
                    )
                )
        # Alice / Bob attachments to every other row.
        for row in range(2, self.r + 1):
            self.edges.append(
                GrcEdge(self.alice, self.node_at(row, 1), "alice", row)
            )
            self.edges.append(
                GrcEdge(self.bob, self.node_at(row, self.c), "bob", row)
            )
        # Spokes from interior X columns (Alice's and Bob's columns already
        # have their attachments above — the paper's spokes coincide there).
        for column, x_node in zip(self.x_columns, self.x_nodes):
            if column in (1, self.c):
                continue
            for row in range(2, self.r + 1):
                self.edges.append(
                    GrcEdge(x_node, self.node_at(row, column), "spoke", row)
                )
        # Balanced binary tree over X: heap layout, internal node with heap
        # index i (1-based, i < x_size) links to heap children 2i and 2i+1;
        # heap indices >= x_size are the leaves (the X nodes in order).
        base = self.r * self.c
        for heap_index in range(1, self.x_size):
            parent = base + heap_index
            for child_heap in (2 * heap_index, 2 * heap_index + 1):
                if child_heap < self.x_size:
                    child = base + child_heap
                else:
                    child = self.x_nodes[child_heap - self.x_size]
                self.edges.append(GrcEdge(parent, child, "tree"))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.r * self.c + self.x_size - 1

    @property
    def node_ids(self) -> List[int]:
        return list(range(1, self.n + 1))

    def edges_of_category(self, category: str) -> List[GrcEdge]:
        return [edge for edge in self.edges if edge.category == category]

    def has_edge(self, u: int, v: int) -> bool:
        return frozenset((u, v)) in self._keys

    def baseline_marked_keys(self) -> Set[FrozenSet[int]]:
        """Edges marked in every DSD instance: all row paths + all tree edges."""
        return {
            edge.key
            for edge in self.edges
            if edge.category in ("row", "tree")
        }

    # ------------------------------------------------------------------
    # Weighted instances
    # ------------------------------------------------------------------

    def to_weighted_graph(
        self, marked: Optional[Set[FrozenSet[int]]] = None
    ) -> Tuple[WeightedGraph, int]:
        """Build the CSS→MST weighted instance.

        Marked edges receive the light weights ``1..k`` and unmarked edges
        heavy weights above ``HEAVY = 2·m``; returns ``(graph, HEAVY)``.
        The paper's reduction (weight 1 vs ``n``) needs distinct weights in
        our model, so each class is spread over distinct values while
        preserving the invariant that *every* marked edge is lighter than
        *every* unmarked edge — which is all the reduction uses: the MST
        contains a heavy edge iff the marked subgraph is not a connected
        spanning subgraph.

        With ``marked=None`` every edge is light (weights ``1..m``).
        """
        marked_keys = marked if marked is not None else {e.key for e in self.edges}
        heavy_threshold = 2 * len(self.edges)
        light = 1
        heavy = heavy_threshold + 1
        triples: List[Tuple[int, int, int]] = []
        for edge in self.edges:
            if edge.key in marked_keys:
                triples.append((edge.u, edge.v, light))
                light += 1
            else:
                triples.append((edge.u, edge.v, heavy))
                heavy += 1
        graph = WeightedGraph(self.node_ids, triples)
        return graph, heavy_threshold

    # ------------------------------------------------------------------
    # Structural assertions (Observation 1)
    # ------------------------------------------------------------------

    def diameter_upper_bound(self) -> int:
        """Analytic bound: spacing along rows + across the X tree.

        Any node reaches an X column within ``⌈(c-1)/(|X|-1)⌉`` row hops
        (+1 spoke hop), any two X nodes are ``≤ 2 log2 |X|`` tree hops
        apart.
        """
        row_to_x = math.ceil((self.c - 1) / (self.x_size - 1)) + 1
        across_tree = 2 * max(1, int(math.log2(self.x_size)))
        return 2 * row_to_x + across_tree


def _x_cardinality(grid_size: int) -> int:
    """``|X|``: the smallest power of two >= max(2, log2(grid size))."""
    target = max(2, round(math.log2(max(2, grid_size))))
    return 1 << max(1, math.ceil(math.log2(target)))


def theorem4_regime(n_target: int) -> Tuple[int, int]:
    """Pick ``(r, c)`` near the Theorem 4 regime for a target size.

    Theorem 4 wants ``c ∈ ω(√n log² n)`` and ``r ∈ o(√n / log² n)``; at
    experiment scales we take ``r ≈ n^(1/3)`` and ``c = n_target // r``,
    which keeps ``r`` well below ``√n`` and ``c`` well above it while
    giving row paths long enough to expose the congestion bottleneck.
    """
    if n_target < 16:
        raise ValueError("n_target too small for a meaningful G_rc")
    r = max(2, round(n_target ** (1.0 / 3.0)))
    c = max(2, n_target // r)
    return r, c
