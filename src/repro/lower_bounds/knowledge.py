"""Empirical causal-knowledge analysis backing the Theorem 3 argument.

The ``Ω(log n)`` awake lower bound rests on an information-flow fact: a
node's state after ``a`` awake rounds is a function of the initial inputs
of a bounded set of nodes ``S(u, a)``, and that set can only grow
geometrically — each awake round merges in the (snapshot) knowledge of the
awake neighbours, at most tripling a contiguous segment on a ring.

:class:`repro.sim.KnowledgeTracker` records exactly these sets during real
executions.  This module turns a tracked run into the lower-bound
quantities:

* the growth curve ``a ↦ max_u |S(u, a)|`` and its per-round growth factor
  (which on a ring must stay ≤ 3);
* a *decision certificate* for MST on a ring: the endpoints of the omitted
  (heaviest) edge must have both heavy edges in their causal past, so their
  awake count is at least ``log_3`` of the heavy edges' separation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.sim import KnowledgeTracker, SimulationResult

from .ring import RingInstance

#: On a ring each awake round can merge at most the two neighbouring
#: segments into one's own: |S(u,a)| <= 3 * max_v |S(v,a-1)|.
RING_GROWTH_FACTOR = 3


def knowledge_growth_curve(tracker: KnowledgeTracker) -> List[Tuple[int, int]]:
    """Return ``(a, max_u |S(u, a)|)`` for every awake count ``a`` observed."""
    max_awake = max(
        (samples[-1][0] for samples in tracker.history.values()), default=0
    )
    return [
        (a, tracker.max_knowledge_after(a)) for a in range(max_awake + 1)
    ]


def max_growth_factor(curve: Sequence[Tuple[int, int]]) -> float:
    """Largest single-awake-round growth ratio ``M(a) / M(a-1)``."""
    worst = 1.0
    for (_, previous), (_, current) in zip(curve, curve[1:]):
        if previous > 0:
            worst = max(worst, current / previous)
    return worst


def minimum_awake_for_reach(reach: int, factor: int = RING_GROWTH_FACTOR) -> int:
    """Awake rounds needed before any knowledge set can reach size ``reach``.

    Starting from ``|S(u, 0)| = 1`` and growing by at most ``factor`` per
    awake round, reaching ``reach`` nodes requires at least
    ``ceil(log_factor(reach))`` awake rounds — the quantitative core of the
    ``Ω(log n)`` bound.
    """
    if reach <= 1:
        return 0
    return math.ceil(math.log(reach) / math.log(factor))


@dataclass(frozen=True)
class DecisionCertificate:
    """Evidence that an MST run on a ring respected the lower bound."""

    #: Hop separation of the two heaviest edges.
    separation: int
    #: Lower bound on awake rounds implied by the separation.
    required_awake: int
    #: Minimum awake rounds over nodes that causally knew both heavy edges.
    observed_awake: int
    #: Largest per-round knowledge growth factor observed in the run.
    observed_growth: float

    @property
    def holds(self) -> bool:
        """True iff the run's behaviour is consistent with Theorem 3."""
        return self.observed_awake >= self.required_awake


def certify_ring_run(
    instance: RingInstance, simulation: SimulationResult
) -> DecisionCertificate:
    """Build the Theorem 3 certificate for a knowledge-tracked ring run.

    The MST of a ring is every edge except the heaviest, so the endpoints
    of the heaviest edge must decide to *omit* it — a decision that (per
    the paper's argument) requires knowing the second-heaviest edge as
    well.  We locate every node whose final causal knowledge contains all
    four heavy-edge endpoints and report the minimum awake count among
    them; Theorem 3 says it cannot be below ``log_3(separation)``.
    """
    tracker = simulation.knowledge
    if tracker is None:
        raise ValueError("run the simulation with track_knowledge=True")

    heavy_nodes = {
        instance.heaviest.u,
        instance.heaviest.v,
        instance.second_heaviest.u,
        instance.second_heaviest.v,
    }
    observed = None
    for node_id in instance.graph.node_ids:
        if heavy_nodes <= tracker.known_nodes(node_id):
            awake = tracker.history[node_id][-1][0]
            if observed is None or awake < observed:
                observed = awake
    if observed is None:
        raise AssertionError(
            "no node causally knew both heavy edges, yet the run claimed to "
            "have computed the MST"
        )

    curve = knowledge_growth_curve(tracker)
    return DecisionCertificate(
        separation=instance.separation,
        required_awake=minimum_awake_for_reach(max(2, instance.separation)),
        observed_awake=observed,
        observed_growth=max_growth_factor(curve),
    )
