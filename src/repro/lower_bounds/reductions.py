"""The SD → DSD → CSS → MST reduction chain of Section 3.2.

* **SD** (set disjointness): Alice holds ``x``, Bob holds ``y``; decide
  whether some index has ``x_i = y_i = 1``.  Its ``Ω(k)`` randomized
  communication lower bound is the source of hardness.
* **DSD**: the same question asked inside the network ``G_rc``, with Alice
  and Bob being the designated corner nodes.
* **CSS** (connected spanning subgraph): mark all row and tree edges, plus
  Alice's edge to row ``ℓ`` iff ``x_ℓ = 0`` and Bob's iff ``y_ℓ = 0``.  Row
  ``ℓ`` is attached to the rest of the marked subgraph iff
  ``¬(x_ℓ ∧ y_ℓ)`` — so the marked edges form a connected spanning
  subgraph **iff** ``x`` and ``y`` are disjoint.
* **MST**: give marked edges lighter weights than every unmarked edge; the
  (unique) MST uses a heavy edge iff the marked subgraph was not a
  connected spanning subgraph.

Running any sleeping-model MST algorithm on the encoded instance therefore
*solves set disjointness*, which is what lets the paper translate the SD
communication bound into the awake × rounds product bound (Theorem 4).
This module provides the instance encodings, the ground-truth evaluators,
and an end-to-end driver that answers SD by running a distributed MST
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Callable, FrozenSet, Optional, Sequence, Set, Tuple

from repro.graphs import UnionFind, WeightedGraph, kruskal_mst

from .grc import GrcTopology


@dataclass(frozen=True)
class SDInstance:
    """A set-disjointness instance over rows ``2..r`` of a ``G_rc``.

    ``bits_alice[i]`` / ``bits_bob[i]`` correspond to row ``i + 2``.
    """

    bits_alice: Tuple[int, ...]
    bits_bob: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.bits_alice) != len(self.bits_bob):
            raise ValueError("input strings must have equal length")
        for bit in self.bits_alice + self.bits_bob:
            if bit not in (0, 1):
                raise ValueError("inputs must be 0/1 strings")

    @property
    def k(self) -> int:
        return len(self.bits_alice)

    @property
    def disjoint(self) -> bool:
        """The SD answer ``d(x, y)``: 1 iff no common 1-index."""
        return not any(
            a == 1 and b == 1
            for a, b in zip(self.bits_alice, self.bits_bob)
        )


def random_sd_instance(
    k: int, seed: int = 0, force_disjoint: Optional[bool] = None
) -> SDInstance:
    """Draw a random SD instance, optionally conditioned on the answer."""
    rng = Random(f"sd/{seed}/{k}/{force_disjoint}")
    while True:
        alice = tuple(rng.randrange(2) for _ in range(k))
        bob = tuple(rng.randrange(2) for _ in range(k))
        instance = SDInstance(alice, bob)
        if force_disjoint is None or instance.disjoint == force_disjoint:
            return instance


def dsd_marked_edges(
    topology: GrcTopology, instance: SDInstance
) -> Set[FrozenSet[int]]:
    """The CSS marking encoding an SD instance (Lemma 9's construction)."""
    if instance.k != topology.r - 1:
        raise ValueError(
            f"instance has {instance.k} bits but G_rc has {topology.r - 1} "
            "attachable rows"
        )
    marked = topology.baseline_marked_keys()
    for edge in topology.edges_of_category("alice"):
        if instance.bits_alice[edge.row - 2] == 0:
            marked.add(edge.key)
    for edge in topology.edges_of_category("bob"):
        if instance.bits_bob[edge.row - 2] == 0:
            marked.add(edge.key)
    return marked


def css_is_connected_spanning(
    topology: GrcTopology, marked: Set[FrozenSet[int]]
) -> bool:
    """Ground truth for CSS via union-find (centralised check)."""
    union_find = UnionFind(topology.node_ids)
    for edge in topology.edges:
        if edge.key in marked:
            union_find.union(edge.u, edge.v)
    return union_find.components == 1


def mst_uses_heavy_edge(
    graph: WeightedGraph, heavy_threshold: int, mst_weights: Set[int]
) -> bool:
    """Does the claimed MST contain any edge heavier than the threshold?"""
    return any(weight > heavy_threshold for weight in mst_weights)


@dataclass(frozen=True)
class ReductionOutcome:
    """End-to-end record of one SD-via-MST execution."""

    instance: SDInstance
    #: SD answer computed from the distributed MST output.
    answered_disjoint: bool
    #: Ground-truth SD answer.
    truth_disjoint: bool
    #: Ground-truth CSS answer (equals SD by Lemma 9's encoding).
    css_connected: bool
    #: Awake complexity of the distributed run (None for sequential oracle).
    max_awake: Optional[int]
    #: Round complexity of the distributed run (None for sequential oracle).
    rounds: Optional[int]

    @property
    def correct(self) -> bool:
        return self.answered_disjoint == self.truth_disjoint


def solve_sd_via_mst(
    topology: GrcTopology,
    instance: SDInstance,
    mst_runner: Optional[Callable[[WeightedGraph], Set[int]]] = None,
) -> ReductionOutcome:
    """Answer set disjointness by computing an MST of the encoded ``G_rc``.

    ``mst_runner`` maps the weighted graph to the set of MST edge weights;
    by default the sequential Kruskal oracle is used (fast ground-truth
    mode).  Pass e.g.
    ``lambda g: run_randomized_mst(g, seed=0).mst_weights`` to run the
    reduction through the actual sleeping-model algorithm; metrics are then
    reported by the caller from that run.
    """
    marked = dsd_marked_edges(topology, instance)
    graph, heavy_threshold = topology.to_weighted_graph(marked)
    if mst_runner is None:
        weights = {edge.weight for edge in kruskal_mst(graph)}
        max_awake = rounds = None
    else:
        weights = set(mst_runner(graph))
        max_awake = rounds = None
    uses_heavy = mst_uses_heavy_edge(graph, heavy_threshold, weights)
    return ReductionOutcome(
        instance=instance,
        answered_disjoint=not uses_heavy,
        truth_disjoint=instance.disjoint,
        css_connected=css_is_connected_spanning(topology, marked),
        max_awake=max_awake,
        rounds=rounds,
    )


def congestion_lower_bound_bits(
    simulation, internal_nodes: Sequence[int]
) -> int:
    """Total bits received by the binary tree's internal nodes ``I``.

    Lemma 8's accounting: if ``B`` bits must cross into ``I`` then some
    node of ``I`` was awake ``Ω(B / log² n)`` rounds (``|I| = O(log n)``
    nodes of constant degree, ``O(log n)``-bit messages).  Measuring the
    realised ``B`` for our algorithms quantifies where they sit against
    the trade-off.
    """
    total = 0
    for node_id in internal_nodes:
        node_metrics = simulation.metrics.per_node.get(node_id)
        if node_metrics is not None:
            total += node_metrics.bits_received
    return total
