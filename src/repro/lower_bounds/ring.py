"""The Theorem 3 lower-bound family: weighted rings with random inputs.

Theorem 3 proves that any algorithm solving MST with probability exceeding
1/8 on a ring needs ``Ω(log n)`` awake time, via a weighted ring of
``4n + 4`` nodes with IDs and weights drawn uniformly from a ``poly(n)``
space.  The two heaviest edges are ``Ω(n)`` apart (with constant
probability); the MST omits exactly the heavier of the two, so some node
must causally learn about *both* before deciding — and the knowledge a node
can gather grows only geometrically with its awake rounds.

This module builds the instances and extracts the quantities the argument
is about (heaviest edges, their hop separation, which edge the MST omits).
The companion :mod:`repro.lower_bounds.knowledge` measures the causal
knowledge sets during real executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List, Tuple

from repro.graphs import Edge, WeightedGraph


@dataclass(frozen=True)
class RingInstance:
    """One Theorem 3 instance plus its analysis-relevant facts."""

    graph: WeightedGraph
    #: The unique heaviest edge — the one the MST must omit.
    heaviest: Edge
    #: The second-heaviest edge.
    second_heaviest: Edge
    #: Hop distance between the two heavy edges around the ring (minimum of
    #: the two arc lengths between their nearer endpoints).
    separation: int
    #: Node IDs in cyclic order around the ring.
    order: Tuple[int, ...] = ()

    @property
    def ring_size(self) -> int:
        return self.graph.n

    def is_contiguous_segment(self, nodes) -> bool:
        """Is ``nodes`` a contiguous arc of the ring?

        Lemma 11 reasons about knowledge sets as *segments*; this check
        lets experiments verify that structure on real executions: a
        node's causal knowledge on a ring is always one contiguous arc.
        """
        members = set(nodes)
        if not members or not self.order:
            return False
        size = len(self.order)
        positions = sorted(
            index for index, node in enumerate(self.order) if node in members
        )
        if len(positions) != len(members):
            raise ValueError("nodes outside this ring")
        if len(positions) == size:
            return True
        # Contiguous on a cycle iff exactly one gap between consecutive
        # occupied positions (cyclically) exceeds 1.
        gaps = [
            (positions[(i + 1) % len(positions)] - positions[i]) % size
            for i in range(len(positions))
        ]
        return sum(1 for gap in gaps if gap != 1) == 1


def theorem3_ring(n: int, seed: int = 0) -> RingInstance:
    """Build the Theorem 3 ring of ``4n + 4`` nodes.

    IDs are drawn uniformly without replacement from ``[1, (4n+4)^2]`` and
    weights from ``[1, (4n+4)^3]`` — both ``poly(n)`` spaces, so IDs and
    weights stay ``O(log n)``-bit values, and all are distinct (the paper
    conditions on distinctness, which holds w.h.p.; sampling without
    replacement realises that conditioning exactly).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    size = 4 * n + 4
    rng = Random(f"thm3/{seed}/{n}")
    ids = sorted(rng.sample(range(1, size * size + 1), size))
    # Random placement around the ring so positions and IDs are independent.
    placed = list(ids)
    rng.shuffle(placed)
    weights = rng.sample(range(1, size ** 3 + 1), size)
    edges = [
        (placed[i], placed[(i + 1) % size], weights[i]) for i in range(size)
    ]
    graph = WeightedGraph(placed, edges, max_id=size * size)

    ordered = sorted(graph.edges())
    heaviest, second = ordered[-1], ordered[-2]
    separation = _edge_separation(placed, weights, size)
    return RingInstance(
        graph=graph,
        heaviest=heaviest,
        second_heaviest=second,
        separation=separation,
        order=tuple(placed),
    )


def _edge_separation(placed: List[int], weights: List[int], size: int) -> int:
    """Hop distance around the ring between the two heaviest edges."""
    order = sorted(range(size), key=lambda index: weights[index])
    first_position, second_position = order[-1], order[-2]
    around = abs(first_position - second_position)
    return min(around, size - around)


def expected_omitted_weight(instance: RingInstance) -> int:
    """The weight the MST must exclude: a ring's MST is all edges but the max."""
    return instance.heaviest.weight


def ring_family(
    sizes: Tuple[int, ...], seed: int = 0
) -> List[RingInstance]:
    """Instances across a range of ``n`` for the scaling experiments."""
    return [theorem3_ring(n, seed=seed + n) for n in sizes]
