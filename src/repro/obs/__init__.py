"""``repro.obs`` — the unified observability subsystem.

Three layers, all optional and all zero-cost when disabled:

* **Spans** (:mod:`repro.obs.spans`): protocol code opens named spans
  (``with ctx.span("phase", p): ... with ctx.span("block:upcast_moe")``)
  and the engine attributes every awake round, message, and bit to the
  innermost open span per node — making the paper's per-phase / per-block
  awake budgets (Theorem 1's "9 blocks × O(1) awake rounds") directly
  measurable.  Enable with ``SleepingSimulator(..., observe=True)`` or any
  runner's ``observe=True`` keyword.
* **Metrics registry** (:mod:`repro.obs.registry`): named counters,
  gauges, and histograms with labels, shared by the engine, algorithms
  (``ctx.count``), and the orchestrator pool; ``dump()`` renders a flat
  deterministic snapshot.
* **Exporters** (:mod:`repro.obs.export`): Chrome trace-event JSON for
  ``chrome://tracing`` / Perfetto, NDJSON structured logs, plus the schema
  validator CI runs against emitted traces.
  :mod:`repro.obs.report` renders the per-phase × per-block awake table
  and checks the span-sum == awake-rounds accounting identity.

See ``docs/observability.md`` for the full workflow.
"""

from .export import (
    chrome_trace,
    event_log_lines,
    span_log_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_ndjson,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from .report import (
    BlockBreakdown,
    BlockCell,
    block_breakdown,
    check_awake_identity,
    render_block_table,
    split_phase,
)
from .spans import (
    NodeObs,
    ObsRecorder,
    ROOT_PATH,
    SpanLog,
    SpanRecord,
    UNATTRIBUTED,
)

__all__ = [
    "BlockBreakdown",
    "BlockCell",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NodeObs",
    "NullRegistry",
    "ObsRecorder",
    "ROOT_PATH",
    "SpanLog",
    "SpanRecord",
    "UNATTRIBUTED",
    "block_breakdown",
    "check_awake_identity",
    "chrome_trace",
    "event_log_lines",
    "render_block_table",
    "span_log_lines",
    "split_phase",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_ndjson",
]
