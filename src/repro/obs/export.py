"""Exporters: Chrome trace-event JSON and NDJSON structured logs.

:func:`chrome_trace` converts a run's span log (and optionally its
:class:`~repro.sim.tracing.EventTrace`) into the Trace Event Format
consumed by ``chrome://tracing`` and https://ui.perfetto.dev — one track
(``tid``) per node, complete (``"X"``) events for spans, instant events
for wakes/sends/deliveries/losses.  Timestamps are **round numbers**
re-used as microseconds: the sleeping model has no wall clock, and rounds
are the time axis every claim in the paper is stated in.

:func:`validate_chrome_trace` is the schema check used by tests and CI:
required keys per event, non-negative durations, and a globally
monotonic ``ts`` order.

:func:`write_ndjson` emits one JSON object per line (span records or
trace events) for log pipelines and ad-hoc ``jq`` analysis.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from .spans import SpanLog


def _ambient_trace_id() -> Optional[str]:
    """The service-layer trace ID, when one is active.

    Imported lazily: :mod:`repro.telemetry` sits above the service stack
    and a module-level import from here would be circular.  Exports run
    outside any service context return ``None`` and stay byte-identical
    to pre-telemetry output.
    """
    try:
        from repro.telemetry.logs import current_trace_id
    except ImportError:  # pragma: no cover - partial install
        return None
    return current_trace_id()


#: Trace Event Format phase codes we emit.
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_METADATA = "M"

#: Instant-event categories per simulator event kind.  The ``fault``
#: category groups everything injected by a channel model
#: (:mod:`repro.sim.transport`) so fault events filter as one family in
#: the trace viewer.
EVENT_CATEGORIES = {
    "wake": "wake",
    "send": "message",
    "deliver": "message",
    "lose": "message",
    "terminate": "lifecycle",
    "drop": "fault",
    "delay": "fault",
    "duplicate": "fault",
    "crash": "fault",
}


def _span_events(spans: SpanLog, pid: int) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for record in spans:
        if record.extent_first is None:
            continue  # never charged: the span occupies no rounds
        events.append(
            {
                "name": record.name,
                "cat": "span",
                "ph": PH_COMPLETE,
                "ts": record.extent_first,
                "dur": record.extent_last - record.extent_first + 1,
                "pid": pid,
                "tid": record.node,
                "args": {
                    "path": record.label,
                    "awake": record.awake,
                    "messages": record.messages,
                    "bits": record.bits,
                },
            }
        )
    return events


def _instant_events(trace: Iterable[Any], pid: int) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for event in trace:
        args: Dict[str, Any] = {}
        if event.peer is not None:
            args["peer"] = event.peer
        if (
            event.kind in ("send", "deliver", "lose", "drop", "delay", "duplicate")
            and event.detail is not None
        ):
            args["payload"] = repr(event.detail)
        events.append(
            {
                "name": event.kind,
                "cat": EVENT_CATEGORIES.get(event.kind, "event"),
                "ph": PH_INSTANT,
                "s": "t",
                "ts": event.round,
                "pid": pid,
                "tid": event.node,
                "args": args,
            }
        )
    return events


def chrome_trace(
    spans: Optional[SpanLog] = None,
    trace: Optional[Iterable[Any]] = None,
    label: str = "simulation",
    metadata: Optional[Dict[str, Any]] = None,
    pid: int = 1,
) -> Dict[str, Any]:
    """Build a Trace Event Format payload from spans and/or an event trace.

    Returns the standard ``{"traceEvents": [...], ...}`` object; load it
    straight into ``chrome://tracing`` or Perfetto.  At least one of
    ``spans`` / ``trace`` must be given.
    """
    if spans is None and trace is None:
        raise ValueError("chrome_trace needs spans and/or a trace")
    body: List[Dict[str, Any]] = []
    if spans is not None:
        body.extend(_span_events(spans, pid))
    if trace is not None:
        body.extend(_instant_events(trace, pid))
    # Stable, viewer-friendly order: by time, then longest-first so parent
    # spans precede their children at equal start rounds.
    body.sort(key=lambda e: (e["ts"], -e.get("dur", 0), e["tid"]))

    nodes = sorted({event["tid"] for event in body})
    head: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": PH_METADATA,
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    for node in nodes:
        head.append(
            {
                "name": "thread_name",
                "ph": PH_METADATA,
                "ts": 0,
                "pid": pid,
                "tid": node,
                "args": {"name": f"node {node}"},
            }
        )
    meta = dict(metadata or {}, tsUnit="rounds")
    trace_id = _ambient_trace_id()
    if trace_id is not None and "trace_id" not in meta:
        meta["trace_id"] = trace_id
    return {
        "traceEvents": head + body,
        "displayTimeUnit": "ms",
        "metadata": meta,
    }


def write_chrome_trace(
    path: Union[str, Path],
    spans: Optional[SpanLog] = None,
    trace: Optional[Iterable[Any]] = None,
    label: str = "simulation",
    metadata: Optional[Dict[str, Any]] = None,
) -> int:
    """Write a Chrome trace JSON file; returns the number of trace events."""
    payload = chrome_trace(spans=spans, trace=trace, label=label, metadata=metadata)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    return len(payload["traceEvents"])


#: Keys every emitted trace event must carry.
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def validate_chrome_trace(payload: Dict[str, Any]) -> int:
    """Validate a Trace Event Format payload; returns the event count.

    Checks the shape this module promises (and CI enforces): a
    ``traceEvents`` list whose entries carry the required keys, complete
    events with non-negative durations, and timestamps that are
    non-decreasing after the leading metadata events.  Raises
    ``ValueError`` on the first violation.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("payload has no 'traceEvents' list")
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    last_ts: Optional[int] = None
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event #{position} is not an object")
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                raise ValueError(f"event #{position} is missing {key!r}")
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event #{position} has invalid ts {ts!r}")
        if event["ph"] == PH_COMPLETE:
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                raise ValueError(
                    f"event #{position} ({event['name']!r}) has invalid dur"
                )
        if event["ph"] == PH_METADATA:
            continue
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event #{position} breaks ts monotonicity ({ts} < {last_ts})"
            )
        last_ts = ts
    return len(events)


def write_ndjson(
    path: Union[str, Path], objects: Iterable[Dict[str, Any]]
) -> int:
    """Write one JSON object per line; returns the number of lines."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    written = 0
    with target.open("w", encoding="utf-8") as handle:
        for obj in objects:
            handle.write(json.dumps(obj, sort_keys=True))
            handle.write("\n")
            written += 1
    return written


def span_log_lines(spans: SpanLog) -> List[Dict[str, Any]]:
    """Span records as NDJSON-ready dictionaries (node/open order).

    When a service-layer trace ID is active (export running inside a
    daemon job), each line is stamped with it so span NDJSON joins
    against access logs and flight events; standalone exports are
    unchanged.
    """
    lines = spans.to_dicts()
    trace_id = _ambient_trace_id()
    if trace_id is not None:
        for line in lines:
            line.setdefault("trace_id", trace_id)
    return lines


def event_log_lines(trace: Iterable[Any]) -> List[Dict[str, Any]]:
    """Trace events as NDJSON-ready dictionaries (execution order)."""
    lines: List[Dict[str, Any]] = []
    for event in trace:
        lines.append(
            {
                "round": event.round,
                "kind": event.kind,
                "node": event.node,
                "peer": event.peer,
                "detail": None if event.detail is None else repr(event.detail),
            }
        )
    return lines
