"""Lightweight metrics registry: counters, gauges, and histograms.

One :class:`MetricsRegistry` is shared by whoever wants to emit telemetry —
the simulation engine (when observability is enabled), instrumented
algorithms (via ``ctx.count``), and the orchestrator pool.  It replaces the
ad-hoc telemetry dictionaries that used to be assembled by hand at each
call site.

Design constraints:

* **Zero-cost when disabled.**  :data:`NULL_REGISTRY` returns shared no-op
  instruments, so instrumented code can call ``registry.counter(...).inc()``
  unconditionally without branching.
* **Deterministic dumps.**  :meth:`MetricsRegistry.dump` renders a flat,
  sorted ``{"name{label=value}": number}`` dictionary — stable across runs
  of the same workload, convenient for JSON output and assertions.
* **Bounded label cardinality is the caller's job.**  Labels are intended
  for small enums (status, algorithm), never per-node or per-round values.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

LabelSet = Tuple[Tuple[str, Any], ...]


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    return tuple(sorted(labels.items()))


def _render_key(name: str, labels: LabelSet) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing count, optionally split by labels."""

    __slots__ = ("name", "_values")

    def __init__(self, name: str):
        self.name = name
        self._values: Dict[LabelSet, float] = {}

    def inc(self, value: float = 1, **labels: Any) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0) + value

    def value(self, **labels: Any) -> float:
        return self._values.get(_labelset(labels), 0)

    def total(self) -> float:
        """Sum across every label combination."""
        return sum(self._values.values())

    def items(self) -> Iterable[Tuple[LabelSet, float]]:
        return self._values.items()


class Gauge:
    """A point-in-time value (last write wins), optionally labelled."""

    __slots__ = ("name", "_values")

    def __init__(self, name: str):
        self.name = name
        self._values: Dict[LabelSet, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_labelset(labels)] = value

    def value(self, **labels: Any) -> Optional[float]:
        return self._values.get(_labelset(labels))

    def items(self) -> Iterable[Tuple[LabelSet, float]]:
        return self._values.items()


#: Default histogram bucket upper bounds (seconds-flavoured, like the
#: Prometheus client defaults).  Cumulative counts per bound are kept in
#: addition to the streaming summary so the Prometheus text renderer
#: (:mod:`repro.telemetry.promtext`) can emit real ``_bucket`` series;
#: :meth:`Histogram.summary` and :meth:`MetricsRegistry.dump` output are
#: unchanged, so existing pinned dumps stay byte-identical.
DEFAULT_BUCKET_BOUNDS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class _HistogramBucket:
    __slots__ = ("count", "sum", "min", "max", "bounds", "bucket_counts")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKET_BOUNDS):
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        # Cumulative ``le`` semantics: charge every bound >= value, so
        # bucket_counts[i] is directly the Prometheus cumulative count.
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ``+Inf`` excluded."""
        return list(zip(self.bounds, self.bucket_counts))

    def summary(self) -> Dict[str, float]:
        mean = self.sum / self.count if self.count else 0.0
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": round(mean, 6),
        }


class Histogram:
    """Streaming distribution summary (count/sum/min/max/mean) per labelset."""

    __slots__ = ("name", "_buckets")

    def __init__(self, name: str):
        self.name = name
        self._buckets: Dict[LabelSet, _HistogramBucket] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _labelset(labels)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _HistogramBucket()
            self._buckets[key] = bucket
        bucket.observe(float(value))

    def summary(self, **labels: Any) -> Dict[str, float]:
        bucket = self._buckets.get(_labelset(labels))
        return bucket.summary() if bucket else _HistogramBucket().summary()

    def buckets(self, **labels: Any) -> List[Tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs for one labelset (may be empty)."""
        bucket = self._buckets.get(_labelset(labels))
        return bucket.buckets() if bucket else []

    def items(self) -> Iterable[Tuple[LabelSet, _HistogramBucket]]:
        return self._buckets.items()


class MetricsRegistry:
    """Named home for instruments; instruments are created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    @property
    def enabled(self) -> bool:
        return True

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = Counter(name)
            self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = Gauge(name)
            self._gauges[name] = instrument
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = Histogram(name)
            self._histograms[name] = instrument
        return instrument

    def counters(self) -> Dict[str, Counter]:
        """Name → counter snapshot (a shallow copy, safe to iterate)."""
        return dict(self._counters)

    def gauges(self) -> Dict[str, Gauge]:
        """Name → gauge snapshot (a shallow copy, safe to iterate)."""
        return dict(self._gauges)

    def histograms(self) -> Dict[str, Histogram]:
        """Name → histogram snapshot (a shallow copy, safe to iterate)."""
        return dict(self._histograms)

    def dump(self) -> Dict[str, Any]:
        """Flat, sorted ``{"name{labels}": value}`` snapshot of everything."""
        flat: Dict[str, Any] = {}
        for name, counter in self._counters.items():
            for labels, value in counter.items():
                flat[_render_key(name, labels)] = value
        for name, gauge in self._gauges.items():
            for labels, value in gauge.items():
                flat[_render_key(name, labels)] = value
        for name, histogram in self._histograms.items():
            for labels, bucket in histogram.items():
                base = _render_key(name, labels)
                for stat, value in bucket.summary().items():
                    flat[f"{base}.{stat}"] = value
        return {key: flat[key] for key in sorted(flat)}


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled telemetry."""

    __slots__ = ()

    def inc(self, value: float = 1, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0

    def total(self) -> float:
        return 0

    def summary(self, **labels: Any) -> Dict[str, float]:
        return {}

    def items(self):
        return ()


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """A registry that records nothing; safe to share globally."""

    def __init__(self) -> None:  # no instrument maps at all
        pass

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str) -> Any:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> Any:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> Any:
        return _NULL_INSTRUMENT

    def counters(self) -> Dict[str, Counter]:
        return {}

    def gauges(self) -> Dict[str, Gauge]:
        return {}

    def histograms(self) -> Dict[str, Histogram]:
        return {}

    def dump(self) -> Dict[str, Any]:
        return {}


#: Shared no-op registry: instrument unconditionally, pay nothing.
NULL_REGISTRY = NullRegistry()
