"""Aggregation and rendering of span data.

Turns a :class:`~repro.obs.spans.SpanLog` into the per-phase × per-block
awake/message breakdown that checks the paper's accounting claims:
Theorem 1's ``Randomized-MST`` spends ``O(1)`` awake rounds in each of its
9 blocks per phase, and every toolbox procedure is individually
``O(1)``-awake.  The breakdown keys each (closed, non-root) span record by

* its **phase** — the number in the first ``phase:<p>`` segment of its
  path (``None`` for spans opened outside any phase), and
* its **block label** — the remaining path segments joined with ``/``
  (so the deterministic algorithm's two merge passes,
  ``merge:1/block:merge_up`` and ``merge:2/block:merge_up``, stay
  distinct).

Only *leaf charges* are aggregated (each record holds the rounds charged
to it directly, never to its children), so summing any partition of the
records reproduces exact totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .spans import SpanLog, UNATTRIBUTED

PHASE_PREFIX = "phase:"


def split_phase(path: Tuple[str, ...]) -> Tuple[Optional[int], str]:
    """Return ``(phase, block_label)`` for a span path."""
    if not path:
        return None, UNATTRIBUTED
    if path[0].startswith(PHASE_PREFIX):
        try:
            phase: Optional[int] = int(path[0][len(PHASE_PREFIX):])
        except ValueError:
            phase = None
        rest = path[1:]
        return phase, "/".join(rest) if rest else "(phase)"
    return None, "/".join(path)


@dataclass
class BlockCell:
    """Aggregate of one (phase, block) cell across all nodes."""

    #: Max over nodes of awake rounds charged to this cell.
    max_awake: int = 0
    #: Sum over nodes of awake rounds charged to this cell.
    total_awake: int = 0
    messages: int = 0
    bits: int = 0
    #: Nodes with at least one charge in this cell.
    active_nodes: int = 0
    #: Per-node awake totals (for bound assertions in tests).
    per_node: Dict[int, int] = field(default_factory=dict)


@dataclass
class BlockBreakdown:
    """The full per-phase × per-block matrix plus its axes."""

    #: Block labels in first-seen (execution) order.
    blocks: List[str]
    #: Sorted phase numbers (``None`` sorts first, shown as ``-``).
    phases: List[Optional[int]]
    #: ``cells[(block, phase)]`` — missing cells mean no charges.
    cells: Dict[Tuple[str, Optional[int]], BlockCell]

    def cell(self, block: str, phase: Optional[int]) -> Optional[BlockCell]:
        return self.cells.get((block, phase))

    def block_max_awake(self, block: str) -> int:
        """Max per-node awake in ``block`` over every phase."""
        return max(
            (cell.max_awake for (label, _), cell in self.cells.items() if label == block),
            default=0,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form: block -> phase -> cell summary."""
        payload: Dict[str, Any] = {}
        for (block, phase), cell in self.cells.items():
            per_block = payload.setdefault(block, {})
            per_block[str(phase) if phase is not None else "-"] = {
                "max_awake": cell.max_awake,
                "total_awake": cell.total_awake,
                "messages": cell.messages,
                "bits": cell.bits,
                "active_nodes": cell.active_nodes,
            }
        return payload


def block_breakdown(spans: SpanLog) -> BlockBreakdown:
    """Aggregate a span log into the per-phase × per-block matrix."""
    blocks: List[str] = []
    phase_set: set = set()
    cells: Dict[Tuple[str, Optional[int]], BlockCell] = {}
    for record in sorted(spans, key=lambda r: r.index):
        if not record.awake and not record.messages:
            continue  # empty instance (e.g. a non-merging node's merge span)
        phase, block = split_phase(record.path)
        if block not in blocks:
            blocks.append(block)
        phase_set.add(phase)
        cell = cells.get((block, phase))
        if cell is None:
            cell = BlockCell()
            cells[(block, phase)] = cell
        node_awake = cell.per_node.get(record.node, 0) + record.awake
        cell.per_node[record.node] = node_awake
        cell.max_awake = max(cell.max_awake, node_awake)
        cell.total_awake += record.awake
        cell.messages += record.messages
        cell.bits += record.bits
        cell.active_nodes = len(cell.per_node)
    phases = sorted(phase_set, key=lambda p: (p is not None, p))
    return BlockBreakdown(blocks=blocks, phases=phases, cells=cells)


def render_block_table(
    spans: SpanLog,
    value: str = "max_awake",
    max_phases: int = 12,
) -> str:
    """Render the breakdown as a fixed-width text table.

    Rows are blocks (execution order), columns are phases, cells show
    ``value`` (``max_awake`` — the per-block awake bound — by default;
    ``total_awake`` or ``messages`` also work).  A trailing ``max`` column
    gives the per-block maximum across phases.
    """
    breakdown = block_breakdown(spans)
    if not breakdown.cells:
        return "(no span data)"
    shown = breakdown.phases[:max_phases]
    elided = len(breakdown.phases) - len(shown)

    def cell_value(cell: Optional[BlockCell]) -> str:
        if cell is None:
            return "."
        return str(getattr(cell, value))

    width = max(len("block"), max(len(block) for block in breakdown.blocks))
    headers = ["-" if phase is None else f"p{phase}" for phase in shown]
    if elided > 0:
        headers.append("...")
    headers.append("max")
    col = max(4, max((len(h) for h in headers), default=4) + 1)
    lines = [
        f"{'block':<{width}}" + "".join(f"{h:>{col}}" for h in headers)
    ]
    for block in breakdown.blocks:
        row = [cell_value(breakdown.cell(block, phase)) for phase in shown]
        if elided > 0:
            row.append("...")
        row.append(str(breakdown.block_max_awake(block)))
        lines.append(
            f"{block:<{width}}" + "".join(f"{v:>{col}}" for v in row)
        )
    if elided > 0:
        lines.append(f"({elided} more phase(s) not shown)")
    return "\n".join(lines)


def check_awake_identity(spans: SpanLog, metrics: Any) -> Dict[int, Tuple[int, int]]:
    """Compare span-attributed awake rounds with the engine's counters.

    Returns ``{node: (span_sum, engine_awake)}`` for every node where the
    two disagree — an empty dict means the accounting identity holds
    exactly.  ``metrics`` is the run's :class:`repro.sim.Metrics`.
    """
    span_totals = spans.per_node_awake(include_root=True)
    mismatches: Dict[int, Tuple[int, int]] = {}
    for node_id, node_metrics in metrics.per_node.items():
        span_sum = span_totals.get(node_id, 0)
        if span_sum != node_metrics.awake_rounds:
            mismatches[node_id] = (span_sum, node_metrics.awake_rounds)
    for node_id, span_sum in span_totals.items():
        if node_id not in metrics.per_node and span_sum:
            mismatches[node_id] = (span_sum, 0)
    return mismatches
