"""Span-based awake accounting for sleeping-model simulations.

A *span* is a named interval of a node's protocol execution — a phase, a
Transmission-Schedule block, a toolbox procedure.  Protocol code opens
spans around its logical sections::

    with ctx.span("phase", phase_number):
        with ctx.span("block:upcast_moe"):
            fragment_moe = yield from upcast_min(ctx, ldt, clock.take(), w)

While a node's generator is suspended inside a span, the engine charges
every awake round, message, and payload bit of that node to the **innermost
open span** — so the per-span totals decompose a node's awake complexity
exactly: summed over all of a node's span records (including the implicit
per-node root span that collects anything outside user spans), the awake
counts equal ``Metrics.per_node[v].awake_rounds``.  That identity is what
makes the paper's "9 blocks × O(1) awake rounds per phase" claim (Theorem 1)
directly observable and testable.

Spans never touch the protocol's randomness, messages, or schedule, so a
run is byte-identical with instrumentation on or off; span data rides next
to the deterministic record, never inside it.

Nodes are instrumented through a tiny per-node handle
(:class:`NodeObs`) stored on :class:`repro.sim.node.NodeContext`; when
observability is off the context holds ``None`` and ``ctx.span`` returns a
shared no-op context manager, so disabled runs pay a single ``is None``
check per call site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .registry import MetricsRegistry

#: Path of the implicit per-node root span (charges outside any user span).
ROOT_PATH: Tuple[str, ...] = ()

#: Label under which root-span charges appear in reports.
UNATTRIBUTED = "(unattributed)"


@dataclass(frozen=True)
class SpanRecord:
    """One closed span instance of one node.

    ``awake`` / ``messages`` / ``bits`` count only charges attributed to
    this span *directly* (not to its children); ``first_round`` /
    ``last_round`` bound those direct charges.  ``extent_first`` /
    ``extent_last`` additionally cover every descendant span, which is what
    trace timelines want.  ``index`` is the global open order — a stable
    sort key.
    """

    node: int
    path: Tuple[str, ...]
    awake: int
    messages: int
    bits: int
    first_round: Optional[int]
    last_round: Optional[int]
    extent_first: Optional[int]
    extent_last: Optional[int]
    index: int

    @property
    def name(self) -> str:
        return self.path[-1] if self.path else UNATTRIBUTED

    @property
    def label(self) -> str:
        return "/".join(self.path) if self.path else UNATTRIBUTED

    @property
    def is_root(self) -> bool:
        return not self.path

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "path": self.label,
            "awake": self.awake,
            "messages": self.messages,
            "bits": self.bits,
            "first_round": self.first_round,
            "last_round": self.last_round,
            "extent_first": self.extent_first,
            "extent_last": self.extent_last,
        }


class _OpenSpan:
    """Mutable accumulator for a span that is still on some node's stack."""

    __slots__ = (
        "node",
        "path",
        "awake",
        "messages",
        "bits",
        "first_round",
        "last_round",
        "extent_first",
        "extent_last",
        "index",
    )

    def __init__(self, node: int, path: Tuple[str, ...], index: int):
        self.node = node
        self.path = path
        self.awake = 0
        self.messages = 0
        self.bits = 0
        self.first_round: Optional[int] = None
        self.last_round: Optional[int] = None
        self.extent_first: Optional[int] = None
        self.extent_last: Optional[int] = None
        self.index = index

    def record(self) -> SpanRecord:
        return SpanRecord(
            node=self.node,
            path=self.path,
            awake=self.awake,
            messages=self.messages,
            bits=self.bits,
            first_round=self.first_round,
            last_round=self.last_round,
            extent_first=self.extent_first,
            extent_last=self.extent_last,
            index=self.index,
        )


class _SpanContext:
    """The context manager handed out by :meth:`NodeObs.span`."""

    __slots__ = ("_obs", "_name")

    def __init__(self, obs: "NodeObs", name: str):
        self._obs = obs
        self._name = name

    def __enter__(self) -> "_SpanContext":
        self._obs._push(self._name)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # An exception unwinds every open span before the engine can ask
        # which one the node died in; remember the innermost label so
        # NodeCrashed can still name it.
        if exc_type is not None and self._obs._crash_label is None:
            self._obs._crash_label = self._obs.current_label()
        self._obs._pop()
        return False


class SpanLog:
    """All closed span records of one simulation, in close order."""

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []

    def add(self, record: SpanRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def for_node(self, node: int) -> List[SpanRecord]:
        return [record for record in self.records if record.node == node]

    def nodes(self) -> List[int]:
        return sorted({record.node for record in self.records})

    def per_node_awake(self, include_root: bool = True) -> Dict[int, int]:
        """Span-attributed awake rounds per node (the accounting identity)."""
        totals: Dict[int, int] = {}
        for record in self.records:
            if record.is_root and not include_root:
                continue
            totals[record.node] = totals.get(record.node, 0) + record.awake
        return totals

    def unattributed_awake(self) -> Dict[int, int]:
        """Awake rounds charged outside every user span, per node."""
        return {
            record.node: record.awake
            for record in self.records
            if record.is_root and record.awake
        }

    def to_dicts(self) -> List[Dict[str, Any]]:
        ordered = sorted(self.records, key=lambda r: (r.node, r.index))
        return [record.to_dict() for record in ordered]


class NodeObs:
    """Per-node observability handle: span stack + registry access.

    The engine charges through :meth:`charge_awake` / :meth:`charge_send`;
    protocol code opens spans through :meth:`span` (normally via
    ``ctx.span``) and bumps counters through :meth:`count`.
    """

    __slots__ = ("recorder", "node", "_stack", "_crash_label", "_last_round")

    def __init__(self, recorder: "ObsRecorder", node: int):
        self.recorder = recorder
        self.node = node
        self._crash_label: Optional[str] = None
        self._last_round: int = 0
        self._stack: List[_OpenSpan] = [
            _OpenSpan(node, ROOT_PATH, recorder._next_index())
        ]

    # -- protocol-facing API -------------------------------------------

    def span(self, parts: Tuple[Any, ...]) -> _SpanContext:
        name = ":".join(str(part) for part in parts)
        return _SpanContext(self, name)

    def count(self, name: str, value: float = 1, **labels: Any) -> None:
        self.recorder.registry.counter(name).inc(value, **labels)

    def probe(self, point: str, state: Dict[str, Any]) -> None:
        """Forward a protocol state snapshot to attached invariant monitors.

        A no-op (one attribute load) when the recorder carries no monitor
        set — observe-only runs pay nothing extra.
        """
        monitors = self.recorder.monitors
        if monitors is not None:
            monitors.on_probe(self.node, self._last_round, point, state)

    # -- engine-facing API ---------------------------------------------

    def charge_awake(self, round_number: int) -> None:
        self._crash_label = None  # a new step: any recorded unwind is stale
        self._last_round = round_number
        top = self._stack[-1]
        top.awake += 1
        if top.first_round is None:
            top.first_round = round_number
        top.last_round = round_number
        if top.extent_first is None:
            top.extent_first = round_number
        top.extent_last = round_number

    def charge_send(self, bits: int) -> None:
        top = self._stack[-1]
        top.messages += 1
        top.bits += bits

    def current_label(self) -> Optional[str]:
        """Label of the innermost open span, ``None`` when only the root
        is open.

        The engine attaches this to :class:`~repro.sim.errors.NodeCrashed`
        so a fault post-mortem names the phase/block the node died in.
        """
        top = self._stack[-1]
        if not top.path:
            return None
        return "/".join(top.path)

    def take_crash_label(self) -> Optional[str]:
        """The innermost span open when the last exception unwound, if any.

        Falls back to :meth:`current_label` (an exception raised outside
        every span leaves nothing recorded).  Clears the recorded label.
        """
        label, self._crash_label = self._crash_label, None
        return label or self.current_label()

    def close_all(self) -> None:
        """Close any spans left open (normally just the root) at run end."""
        while self._stack:
            self._pop_unchecked()

    # -- internals -----------------------------------------------------

    def _push(self, name: str) -> None:
        parent = self._stack[-1]
        self._stack.append(
            _OpenSpan(self.node, parent.path + (name,), self.recorder._next_index())
        )

    def _pop(self) -> None:
        if len(self._stack) <= 1:
            raise RuntimeError(
                f"node {self.node}: span stack underflow (unbalanced exit)"
            )
        self._pop_unchecked()

    def _pop_unchecked(self) -> None:
        span = self._stack.pop()
        if self._stack:
            parent = self._stack[-1]
            if span.extent_first is not None:
                if parent.extent_first is None:
                    parent.extent_first = span.extent_first
                else:
                    parent.extent_first = min(parent.extent_first, span.extent_first)
            if span.extent_last is not None:
                if parent.extent_last is None:
                    parent.extent_last = span.extent_last
                else:
                    parent.extent_last = max(parent.extent_last, span.extent_last)
        record = span.record()
        self.recorder.spans.add(record)
        monitors = self.recorder.monitors
        if monitors is not None:
            monitors.on_span_close(record)


class ObsRecorder:
    """Per-run observability state: one span log + one metrics registry.

    Construct one per simulation (``SleepingSimulator(..., observe=True)``
    does this) and read :attr:`spans` / :attr:`registry` afterwards.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        monitors: Optional[Any] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Attached invariant :class:`repro.invariants.MonitorSet` (duck-
        #: typed; ``None`` for observe-only runs).  Receives every probe
        #: snapshot and closed span record.
        self.monitors = monitors
        self.spans = SpanLog()
        self._index = 0
        self._handles: Dict[int, NodeObs] = {}

    def _next_index(self) -> int:
        index = self._index
        self._index += 1
        return index

    def node_handle(self, node_id: int) -> NodeObs:
        handle = NodeObs(self, node_id)
        self._handles[node_id] = handle
        return handle

    def close(self) -> None:
        """Close every node's remaining open spans, in node-ID order."""
        for node_id in sorted(self._handles):
            self._handles[node_id].close_all()

    def finalize(self, metrics: Any) -> None:
        """Close spans and snapshot engine counters into the registry."""
        self.close()
        registry = self.registry
        registry.counter("sim.awake_rounds").inc(metrics.total_awake_rounds)
        registry.counter("sim.messages").inc(
            metrics.messages_delivered, outcome="delivered"
        )
        registry.counter("sim.messages").inc(metrics.messages_lost, outcome="lost")
        # Fault counters only materialize when the channel model injected
        # something: fault-free dumps stay byte-identical to runs predating
        # the transport layer.
        if metrics.messages_dropped:
            registry.counter("sim.messages").inc(
                metrics.messages_dropped, outcome="dropped"
            )
        if metrics.messages_delayed:
            registry.counter("sim.messages").inc(
                metrics.messages_delayed, outcome="delayed"
            )
        if metrics.messages_duplicated:
            registry.counter("sim.messages").inc(
                metrics.messages_duplicated, outcome="duplicated"
            )
        if metrics.nodes_crashed:
            registry.counter("sim.nodes_crashed").inc(metrics.nodes_crashed)
        registry.counter("sim.bits").inc(metrics.total_bits)
        registry.gauge("sim.rounds").set(metrics.rounds)
        registry.gauge("sim.max_awake").set(metrics.max_awake)
        histogram = registry.histogram("sim.node_awake")
        for node in metrics.per_node.values():
            histogram.observe(node.awake_rounds)
