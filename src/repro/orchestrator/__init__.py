"""Parallel experiment orchestrator: jobs, cache, store, pool, progress.

The layer between the simulation engine and every driver above it.  A
grid of ``(algorithm × graph family × n × seed)`` cells becomes a list
of content-hashed :class:`JobSpec`; :func:`run_jobs` executes them with
crash isolation across a worker pool, serves repeats from the
content-addressed :class:`ResultCache`, journals every outcome to an
append-only JSONL :class:`RunStore`, and skips cells a ``resume`` store
already completed.

.. code-block:: python

    from repro.orchestrator import ResultCache, expand_grid, run_jobs

    specs = expand_grid(["randomized"], ["ring", "gnp"], [16, 32], range(3))
    report = run_jobs(specs, workers=4, cache=ResultCache(".repro-cache"),
                      store="runs.jsonl")
    assert report.failed == 0
"""

from .cache import ResultCache
from .jobs import (
    FAULT_MAX_AWAKE_EVENTS,
    GRID_PAYLOAD_KEYS,
    JobSpec,
    canonical_json,
    execute_job,
    expand_grid,
    grid_from_payload,
    grid_key,
)
from .pool import BatchReport, JobTimeout, execute_with_policy, run_jobs
from .progress import ProgressReporter
from .registry import (
    ALGORITHM_ALIASES,
    ALGORITHMS,
    DIAGNOSTIC_ALGORITHMS,
    GRAPH_FAMILIES,
    algorithm_runner,
    channel_from_spec,
    graph_factory,
    resolve_algorithm,
    resolve_channel_spec,
    resolve_family,
    resolve_problem,
)
from .store import (
    SCHEMA_VERSION,
    STATUS_FAILED,
    STATUS_OK,
    RunRecord,
    RunStore,
    load_records,
)

__all__ = [
    "ALGORITHM_ALIASES",
    "ALGORITHMS",
    "BatchReport",
    "DIAGNOSTIC_ALGORITHMS",
    "GRAPH_FAMILIES",
    "JobSpec",
    "JobTimeout",
    "ProgressReporter",
    "ResultCache",
    "RunRecord",
    "RunStore",
    "SCHEMA_VERSION",
    "STATUS_FAILED",
    "STATUS_OK",
    "algorithm_runner",
    "canonical_json",
    "channel_from_spec",
    "FAULT_MAX_AWAKE_EVENTS",
    "execute_job",
    "execute_with_policy",
    "expand_grid",
    "graph_factory",
    "GRID_PAYLOAD_KEYS",
    "grid_from_payload",
    "grid_key",
    "load_records",
    "resolve_algorithm",
    "resolve_channel_spec",
    "resolve_family",
    "resolve_problem",
    "run_jobs",
]
