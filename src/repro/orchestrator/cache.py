"""Content-addressed on-disk result cache.

Entries are keyed by job content hash *and* code version: the layout is
``root/<version>/<key[:2]>/<key>.json``, so bumping ``repro.__version__``
(or passing an explicit ``version``) invalidates every prior entry
without deleting anything.  Only successful records are cached, and only
their deterministic portion (spec + metrics) — telemetry never enters
the cache, which is what makes cache replays byte-identical to live runs.

Writes go through a temp file + ``os.replace`` so a crashed writer can
never leave a torn entry; unreadable entries degrade to cache misses.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

import repro

from .store import STATUS_OK, RunRecord


class ResultCache:
    """Content-addressed cache of successful job records."""

    def __init__(
        self,
        root: Union[str, Path],
        version: Optional[str] = None,
    ):
        self.root = Path(root)
        self.version = version or repro.__version__
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0

    def path_for(self, key: str) -> Path:
        return self.root / self.version / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunRecord]:
        """Return the cached record for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            record = RunRecord.from_dict(payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            self.corrupt += 1
            self.misses += 1
            return None
        if record.key != key or record.status != STATUS_OK:
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, record: RunRecord) -> bool:
        """Store a successful record; failed records are never cached."""
        if record.status != STATUS_OK:
            return False
        path = self.path_for(record.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = record.to_dict()
        payload["telemetry"] = {}
        descriptor, temp_path = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp_path, path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            return False
        self.writes += 1
        return True

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "hit_rate": round(self.hit_rate, 4),
            "version": self.version,
        }
