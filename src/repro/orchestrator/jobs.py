"""Declarative job specifications with stable content hashes.

A :class:`JobSpec` names one ``(algorithm, family, n, seed)`` cell of an
experiment grid (plus optional sparse-ID range and engine options).  Its
:attr:`JobSpec.key` is a SHA-256 over the canonical JSON payload, so the
same cell always hashes identically across processes and sessions — the
content address used by the result cache and the run store.

:func:`execute_job` is the single place a spec becomes a measurement: it
builds the graph, runs the algorithm, and returns the flat metrics record
every consumer (sweep CSVs, Table 1, the batch CLI) shares.  It is a
module-level function so worker processes can pickle it.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.array_engine import resolve_engine

from .registry import (
    algorithm_runner,
    channel_from_spec,
    graph_factory,
    resolve_algorithm,
    resolve_channel_spec,
    resolve_family,
    resolve_problem,
)

#: Awake-event cap applied to fault-injected jobs that don't set their own:
#: a protocol livelocked by message loss must terminate as ``hung`` instead
#: of spinning forever.  Far above any terminating run at orchestrator
#: scales (n=256 randomized MST uses ~6e4 awake events).
FAULT_MAX_AWAKE_EVENTS = 2_000_000


def canonical_json(payload: Any) -> str:
    """Serialise ``payload`` deterministically (sorted keys, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class JobSpec:
    """One (algorithm, family, n, seed) cell of an experiment grid."""

    algorithm: str
    family: str
    n: int
    seed: int
    id_range: Optional[int] = None
    #: Extra keyword arguments for the runner (e.g. ``termination``,
    #: ``coloring``), stored as a sorted tuple so the spec stays hashable.
    options: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    #: Which problem bundle resolves the algorithm (``repro.problems``).
    #: The default problem is omitted from :meth:`payload`, so MST-only
    #: specs hash identically to before the problem axis existed.
    problem: str = "mst"

    @classmethod
    def create(
        cls,
        algorithm: str,
        family: str,
        n: int,
        seed: int,
        id_range: Optional[int] = None,
        options: Optional[Mapping[str, Any]] = None,
        problem: Optional[str] = None,
    ) -> "JobSpec":
        """Build a validated spec; alias names resolve to canonical ones."""
        problem = resolve_problem(problem)
        return cls(
            algorithm=resolve_algorithm(algorithm, problem),
            family=resolve_family(family),
            n=int(n),
            seed=int(seed),
            id_range=None if id_range is None else int(id_range),
            options=tuple(sorted((options or {}).items())),
            problem=problem,
        )

    def payload(self) -> Dict[str, Any]:
        """The hashable content of this spec, as plain JSON types.

        The ``problem`` key appears only off the default, keeping MST
        hashes (and therefore caches and stores) byte-stable.
        """
        payload = {
            "algorithm": self.algorithm,
            "family": self.family,
            "n": self.n,
            "seed": self.seed,
            "id_range": self.id_range,
            "options": {key: value for key, value in self.options},
        }
        if self.problem != "mst":
            payload["problem"] = self.problem
        return payload

    @property
    def key(self) -> str:
        """Stable content hash identifying this job."""
        return hashlib.sha256(canonical_json(self.payload()).encode()).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return self.payload()

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobSpec":
        return cls.create(
            payload["algorithm"],
            payload["family"],
            payload["n"],
            payload["seed"],
            id_range=payload.get("id_range"),
            options=payload.get("options") or {},
            problem=payload.get("problem"),
        )

    def label(self) -> str:
        """Short human-readable identifier for progress lines."""
        return f"{self.algorithm}/{self.family}/n={self.n}/seed={self.seed}"


def expand_grid(
    algorithms: Sequence[str],
    families: Sequence[str],
    sizes: Sequence[int],
    seeds: Sequence[int],
    id_range_factor: Optional[int] = None,
    options: Optional[Mapping[str, Any]] = None,
    faults: Optional[Sequence[Optional[str]]] = None,
    monitors: Optional[str] = None,
    engine: Optional[str] = None,
    problem: Optional[str] = None,
) -> List[JobSpec]:
    """Expand a grid into one :class:`JobSpec` per cell.

    Iteration order matches the historical sweep loop — family, size,
    seed, algorithm — so exports stay row-compatible.  ``faults`` adds a
    channel-spec axis (innermost): each entry is a
    :func:`repro.sim.transport.parse_channel_spec` string; the perfect
    channel (``None``/``"perfect"``) stores no ``faults`` option, so
    fault-free specs hash identically to pre-transport grids and their
    cached results stay valid.  ``monitors`` attaches runtime invariant
    monitors (a :func:`repro.invariants.resolve_monitor_spec` string) to
    every cell; as with ``faults``, the detached default stores nothing,
    so unmonitored specs keep their historical hashes.  ``engine``
    selects the simulation backend for every cell (see
    :func:`repro.core.run_randomized_mst`); the default coroutine engine
    stores nothing — only ``engine="array"`` enters the options — so
    default grids keep their historical hashes and warm caches.
    ``problem`` selects the bundle every cell's algorithm resolves in
    (``"mst"`` when omitted, following the same stability convention).
    """
    for axis_name, axis in (
        ("algorithms", algorithms),
        ("families", families),
        ("sizes", sizes),
        ("seeds", seeds),
    ):
        if len(axis) == 0:
            raise ValueError(
                f"empty grid axis {axis_name!r}: every axis needs a "
                "non-empty list (an empty axis would silently expand to "
                "zero jobs)"
            )
    if faults is not None and len(faults) == 0:
        raise ValueError(
            "empty grid axis 'faults': pass None for the perfect channel "
            "or a non-empty list of channel specs"
        )
    problem = resolve_problem(problem)
    canonical = [resolve_algorithm(name, problem) for name in algorithms]
    resolved_families = [resolve_family(name) for name in families]
    fault_axis = [resolve_channel_spec(spec) for spec in (faults or [None])]
    engine = resolve_engine(engine)
    if monitors is not None:
        from repro.invariants import resolve_monitor_spec

        monitors = resolve_monitor_spec(monitors)
    specs: List[JobSpec] = []
    for family, n, seed in itertools.product(resolved_families, sizes, seeds):
        id_range = None if id_range_factor is None else id_range_factor * n
        for algorithm in canonical:
            for fault_spec in fault_axis:
                cell_options = dict(options or {})
                if fault_spec is not None:
                    cell_options["faults"] = fault_spec
                if monitors is not None:
                    cell_options["monitors"] = monitors
                if engine != "coroutine":
                    cell_options["engine"] = engine
                specs.append(
                    JobSpec.create(
                        algorithm,
                        family,
                        n,
                        seed,
                        id_range=id_range,
                        options=cell_options,
                        problem=problem,
                    )
                )
    return specs


#: Keys a JSON grid payload may carry.  ``batch --spec`` files and the
#: service layer's ``POST /jobs`` bodies share this schema, so a grid is
#: submittable identically from a file, the CLI, or over HTTP.
GRID_PAYLOAD_KEYS = (
    "algorithms",
    "families",
    "sizes",
    "seeds",
    "id_range_factor",
    "options",
    "faults",
    "monitors",
    "engine",
    "problem",
)


def grid_from_payload(payload: Mapping[str, Any]) -> List[JobSpec]:
    """Expand a JSON grid payload into specs (the ``batch --spec`` schema).

    ``seeds`` may be an integer N (meaning seeds ``0..N-1``) or an
    explicit list.  Unknown keys raise ``ValueError`` so a typo'd axis
    never silently shrinks a grid; so do empty required axes and
    malformed ``faults``/``monitors`` specs (via :func:`expand_grid`).
    """
    unknown = set(payload) - set(GRID_PAYLOAD_KEYS)
    if unknown:
        raise ValueError(f"unknown grid keys: {sorted(unknown)}")
    algorithms = list(payload.get("algorithms") or [])
    families = list(payload.get("families") or [])
    sizes = [int(n) for n in payload.get("sizes") or []]
    for axis_name, axis in (
        ("algorithms", algorithms), ("families", families), ("sizes", sizes)
    ):
        if not axis:
            raise ValueError(
                f"empty grid axis {axis_name!r}: the grid needs a "
                f"non-empty {axis_name} list"
            )
    seeds = payload.get("seeds", 1)
    if isinstance(seeds, bool):
        raise ValueError(f"seeds must be an int or a list, got {seeds!r}")
    if isinstance(seeds, int):
        seed_list = list(range(seeds))
    else:
        seed_list = [int(seed) for seed in seeds]
    if not seed_list:
        raise ValueError(
            "empty grid axis 'seeds': the grid needs at least one seed"
        )
    id_range_factor = payload.get("id_range_factor")
    return expand_grid(
        algorithms,
        families,
        sizes,
        seed_list,
        id_range_factor=(
            None if id_range_factor is None else int(id_range_factor)
        ),
        options=payload.get("options") or None,
        faults=payload.get("faults") or None,
        monitors=payload.get("monitors") or None,
        engine=payload.get("engine") or None,
        problem=payload.get("problem") or None,
    )


def grid_key(specs: Sequence[JobSpec]) -> str:
    """Content hash of a whole grid (used to name default store files)."""
    return hashlib.sha256(
        canonical_json([spec.key for spec in specs]).encode()
    ).hexdigest()


def execute_job(spec: JobSpec) -> Dict[str, Any]:
    """Run one job and return its flat, deterministic metrics record.

    The record's fields intentionally match
    :class:`repro.analysis.sweep.SweepPoint` so sweep exports, store
    records, and cache entries are interchangeable.

    When the spec carries a ``faults`` option (a channel spec string, see
    :mod:`repro.sim.transport`), the run is executed under that channel,
    classified by :func:`repro.graphs.verify_or_diagnose`, and the record
    additionally carries ``faults``/``outcome``/``error`` plus the fault
    counters; runs that crashed or hung keep the record shape with
    ``None`` metrics fields.  Fault-free specs produce records identical
    to before the transport layer existed.
    """
    graph = graph_factory(spec.family)(spec.n, spec.seed, spec.id_range)
    runner = algorithm_runner(spec.algorithm, spec.problem)
    options = dict(spec.options)
    faults = options.pop("faults", None)
    monitors_spec = options.pop("monitors", None)
    if options.get("engine") == "array" and (faults or monitors_spec):
        # Fail before running anything: a fault/monitor cell on the array
        # engine would otherwise be misdiagnosed as a protocol crash.
        from repro.sim.errors import UnsupportedFeatureError

        feature = "fault specs" if faults else "invariant monitors"
        raise UnsupportedFeatureError(feature)
    monitor_set = None
    if monitors_spec is not None:
        # Built fresh inside the worker — MonitorSet instances hold run
        # state and are not meant to cross process boundaries.
        from repro.invariants import build_monitor_set

        monitor_set = build_monitor_set(monitors_spec, problem=spec.problem)
        if monitor_set is not None:
            options["monitors"] = monitor_set

    def monitor_fields() -> Dict[str, Any]:
        if monitor_set is None:
            return {}
        report = monitor_set.finalize()
        return {
            "monitors": monitors_spec,
            "monitor_checks": report.checks_run,
            "violations": len(report),
            "first_invariant": report.first_invariant,
        }

    problem_fields = {} if spec.problem == "mst" else {"problem": spec.problem}
    if faults is None:
        result = runner(graph, spec.seed, **options)
        metrics = result.metrics
        record = {
            **problem_fields,
            "algorithm": spec.algorithm,
            "family": spec.family,
            "n": graph.n,
            "m": graph.m,
            "max_id": graph.max_id,
            "seed": spec.seed,
            "phases": result.phases,
            "max_awake": metrics.max_awake,
            "mean_awake": round(metrics.mean_awake, 3),
            "rounds": metrics.rounds,
            "awake_round_product": metrics.awake_round_product,
            "messages": metrics.messages_delivered,
            "bits": metrics.total_bits,
            "correct": result.is_correct(graph),
        }
        record.update(monitor_fields())
        return record

    from repro.graphs import verify_or_diagnose

    options.setdefault("max_awake_events", FAULT_MAX_AWAKE_EVENTS)
    diagnosis = verify_or_diagnose(
        graph,
        lambda: runner(
            graph, spec.seed, channel=channel_from_spec(faults), **options
        ),
        monitors=monitor_set,
    )
    record: Dict[str, Any] = {
        **problem_fields,
        "algorithm": spec.algorithm,
        "family": spec.family,
        "n": graph.n,
        "m": graph.m,
        "max_id": graph.max_id,
        "seed": spec.seed,
        "faults": faults,
        "outcome": diagnosis.outcome,
        "error": diagnosis.error,
        "correct": diagnosis.outcome == "correct",
    }
    if diagnosis.missing_nodes:
        record["missing_nodes"] = list(diagnosis.missing_nodes)
    if diagnosis.crashed_nodes:
        record["crashed_nodes"] = list(diagnosis.crashed_nodes)
    record.update(monitor_fields())
    if diagnosis.completed:
        result = diagnosis.result
        metrics = result.metrics
        record.update(
            {
                "phases": result.phases,
                "max_awake": metrics.max_awake,
                "mean_awake": round(metrics.mean_awake, 3),
                "rounds": metrics.rounds,
                "awake_round_product": metrics.awake_round_product,
                "messages": metrics.messages_delivered,
                "bits": metrics.total_bits,
            }
        )
        record.update(metrics.fault_summary())
    else:
        record.update(
            {
                "phases": None,
                "max_awake": None,
                "mean_awake": None,
                "rounds": None,
                "awake_round_product": None,
                "messages": None,
                "bits": None,
            }
        )
    return record
