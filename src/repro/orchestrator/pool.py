"""Worker-pool execution of job grids with crash isolation and retries.

:func:`run_jobs` is the orchestrator's engine room: it takes a list of
:class:`~repro.orchestrator.jobs.JobSpec`, consults the resume store and
the result cache, executes whatever remains (serially or across a
``multiprocessing`` pool), and returns a :class:`BatchReport` whose
records are in submission order.

Failure policy: a job whose protocol raises is retried up to ``retries``
times and then becomes a structured ``failed`` record — it never aborts
the batch.  Per-job timeouts use ``SIGALRM`` (each worker process runs
jobs on its own main thread); on platforms without ``SIGALRM`` the
timeout degrades to unenforced rather than erroring.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.telemetry.logs import current_trace_id, set_trace_id

from .cache import ResultCache
from .jobs import JobSpec, execute_job
from .progress import ProgressReporter
from .store import STATUS_OK, RunRecord, RunStore


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its time budget."""


@contextmanager
def _job_timeout(seconds: Optional[float]):
    """Enforce a wall-clock budget via ``SIGALRM`` where available."""
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise JobTimeout(f"job exceeded {seconds}s budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_with_policy(
    spec: JobSpec,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> RunRecord:
    """Execute one job under the failure policy; never raises."""
    attempts = 0
    last_error = "unknown error"
    started = time.perf_counter()
    for _ in range(max(0, retries) + 1):
        attempts += 1
        try:
            with _job_timeout(timeout):
                metrics = execute_job(spec)
        except Exception as exc:  # crash isolation: failures become records
            last_error = f"{type(exc).__name__}: {exc}"
            continue
        return RunRecord.ok(
            spec,
            metrics,
            telemetry={
                "source": "executed",
                "elapsed_s": round(time.perf_counter() - started, 4),
                "attempts": attempts,
                "pid": os.getpid(),
            },
        )
    return RunRecord.failed(
        spec,
        last_error,
        telemetry={
            "source": "executed",
            "elapsed_s": round(time.perf_counter() - started, 4),
            "attempts": attempts,
            "pid": os.getpid(),
        },
    )


def _pool_worker(
    payload: Tuple[Dict[str, Any], Optional[float], int]
) -> Dict[str, Any]:
    """Module-level (picklable) worker entry point."""
    spec_dict, timeout, retries = payload
    spec = JobSpec.from_dict(spec_dict)
    return execute_with_policy(spec, timeout=timeout, retries=retries).to_dict()


def _worker_init(trace_id: Optional[str]) -> None:
    """Pool initializer: seed the submission's trace ID into the worker.

    Runs once per worker process, so every log line a worker emits (and
    anything that reads ``current_trace_id()`` there) correlates back to
    the submission that spawned the batch.
    """
    if trace_id is not None:
        set_trace_id(trace_id)


@dataclass
class BatchReport:
    """Outcome of one :func:`run_jobs` call."""

    #: One record per submitted spec, in submission order.
    records: List[RunRecord] = field(default_factory=list)
    #: Jobs actually executed this call (cache/resume misses).
    executed: int = 0
    #: Jobs served from the result cache.
    cached: int = 0
    #: Jobs skipped because the resume store already has an ``ok`` record.
    resumed: int = 0
    #: Records with ``status == "failed"`` (after retries).
    failed: int = 0
    elapsed_s: float = 0.0
    cache_stats: Optional[Dict[str, Any]] = None
    progress: Optional[Dict[str, Any]] = None
    #: Flat :meth:`repro.obs.MetricsRegistry.dump` snapshot (when a registry
    #: was passed to :func:`run_jobs`).
    metrics: Optional[Dict[str, Any]] = None
    #: Torn/malformed lines the resume store skipped while loading — a
    #: nonzero value means a prior writer died mid-append (surfaced in
    #: ``/healthz`` by the service daemon).
    store_skipped_lines: int = 0

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def ok(self) -> int:
        return self.total - self.failed

    def failures(self) -> List[RunRecord]:
        return [record for record in self.records if record.status != STATUS_OK]

    def summary(self) -> Dict[str, Any]:
        payload = {
            "total": self.total,
            "ok": self.ok,
            "failed": self.failed,
            "executed": self.executed,
            "cached": self.cached,
            "resumed": self.resumed,
            "elapsed_s": round(self.elapsed_s, 3),
        }
        if self.cache_stats is not None:
            payload["cache"] = self.cache_stats
            payload["cache_hit_rate"] = self.cache_stats.get("hit_rate", 0.0)
        if self.progress is not None:
            payload["progress"] = self.progress
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        if self.store_skipped_lines:
            payload["store_skipped_lines"] = self.store_skipped_lines
        return payload


def run_jobs(
    specs: Sequence[JobSpec],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    store: Optional[Union[RunStore, str, Path]] = None,
    resume: Optional[Union[RunStore, str, Path]] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    progress: Optional[ProgressReporter] = None,
    registry: Optional[MetricsRegistry] = None,
    trace_id: Optional[str] = None,
    on_event: Optional[Callable[[str, Dict[str, Any]], None]] = None,
) -> BatchReport:
    """Run a grid of jobs; returns records in submission order.

    ``resume`` names a prior store: every spec whose latest record there
    is ``ok`` is skipped and its stored record reused.  ``cache`` serves
    previously computed cells across stores and sessions.  New records
    are appended to ``store`` as they finish, so an interrupted batch is
    resumable from exactly where it died.

    ``registry`` (a :class:`repro.obs.MetricsRegistry`) collects batch
    telemetry — ``orchestrator.jobs`` counters labelled by status and
    source, and an ``orchestrator.job_seconds`` histogram over executed
    jobs — and its flat dump lands in :attr:`BatchReport.metrics`.

    ``trace_id`` (default: the ambient :func:`current_trace_id`) is
    stamped on every record's volatile ``telemetry`` block and seeded
    into pool worker processes, correlating this batch's work with the
    submission that caused it.  ``on_event`` receives lifecycle events
    (``cell_dispatched`` / ``cell_finished`` / ``cell_retried`` /
    ``cell_crashed`` with a payload dict) — the service layer's flight
    recorder rides on it.  Neither affects the deterministic record
    content (``RunRecord.fingerprint``).
    """
    started = time.monotonic()
    active_trace = trace_id if trace_id is not None else current_trace_id()

    def _emit(event: str, payload: Dict[str, Any]) -> None:
        if on_event is not None:
            on_event(event, payload)
    run_store = store if isinstance(store, RunStore) else (
        RunStore(store) if store is not None else None
    )
    resume_store = resume if isinstance(resume, RunStore) else (
        RunStore(resume) if resume is not None else None
    )
    same_ledger = (
        run_store is not None
        and resume_store is not None
        and run_store.path.resolve() == resume_store.path.resolve()
    )
    if progress is None:
        progress = ProgressReporter(total=len(specs))
    metrics = registry if registry is not None else NULL_REGISTRY
    report = BatchReport()

    results: List[Optional[RunRecord]] = [None] * len(specs)
    pending: List[Tuple[int, JobSpec]] = []

    completed = resume_store.latest_by_key() if resume_store is not None else {}
    if resume_store is not None:
        report.store_skipped_lines = resume_store.skipped_lines
        if resume_store.skipped_lines:
            metrics.gauge("orchestrator.store_skipped_lines").set(
                resume_store.skipped_lines
            )

    def _finish(index: int, record: RunRecord, persist: bool) -> None:
        results[index] = record
        if active_trace is not None:
            record.telemetry["trace_id"] = active_trace
        if record.status != STATUS_OK:
            report.failed += 1
        if persist and run_store is not None:
            run_store.append(record)
        source = record.telemetry.get("source", "unknown")
        metrics.counter("orchestrator.jobs").inc(
            status=record.status, source=source
        )
        if source == "executed":
            elapsed = record.telemetry.get("elapsed_s")
            if isinstance(elapsed, (int, float)):
                metrics.histogram("orchestrator.job_seconds").observe(
                    float(elapsed), status=record.status
                )
        event_payload = {
            "key": record.key,
            "status": record.status,
            "source": source,
        }
        elapsed = record.telemetry.get("elapsed_s")
        if isinstance(elapsed, (int, float)):
            event_payload["elapsed_s"] = float(elapsed)
        _emit("cell_finished", event_payload)
        attempts = record.telemetry.get("attempts")
        if isinstance(attempts, int) and attempts > 1:
            _emit(
                "cell_retried", {"key": record.key, "attempts": attempts}
            )
        if record.status != STATUS_OK and record.error:
            if record.error.startswith("worker crashed"):
                _emit(
                    "cell_crashed",
                    {"key": record.key, "error": record.error},
                )
        progress.update(record)

    for index, spec in enumerate(specs):
        prior = completed.get(spec.key)
        if prior is not None and prior.status == STATUS_OK:
            record = RunRecord.from_dict(prior.to_dict())
            record.telemetry = {"source": "resume"}
            report.resumed += 1
            # Already present when resuming in place; re-append only when
            # writing a fresh ledger from an old one.
            _finish(index, record, persist=not same_ledger)
            continue
        if cache is not None:
            hit = cache.get(spec.key)
            if hit is not None:
                record = RunRecord.from_dict(hit.to_dict())
                record.telemetry = {"source": "cache"}
                report.cached += 1
                _finish(index, record, persist=True)
                continue
        pending.append((index, spec))

    def _absorb(index: int, spec: JobSpec, record: RunRecord) -> None:
        report.executed += 1
        if cache is not None and record.status == STATUS_OK:
            cache.put(record)
        _finish(index, record, persist=True)

    if pending and workers <= 1:
        for index, spec in pending:
            _emit("cell_dispatched", {"key": spec.key, "label": spec.label()})
            _absorb(index, spec, execute_with_policy(spec, timeout, retries))
    elif pending:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(active_trace,),
        ) as executor:
            futures = {}
            for index, spec in pending:
                _emit(
                    "cell_dispatched",
                    {"key": spec.key, "label": spec.label()},
                )
                futures[
                    executor.submit(
                        _pool_worker, (spec.to_dict(), timeout, retries)
                    )
                ] = (index, spec)
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    index, spec = futures[future]
                    try:
                        record = RunRecord.from_dict(future.result())
                    except Exception as exc:
                        # The worker process itself died (not the job):
                        # still a structured failure, never a suite abort.
                        record = RunRecord.failed(
                            spec,
                            f"worker crashed: {type(exc).__name__}: {exc}",
                            telemetry={"source": "executed"},
                        )
                    _absorb(index, spec, record)

    report.records = [record for record in results if record is not None]
    report.elapsed_s = time.monotonic() - started
    if cache is not None:
        report.cache_stats = cache.stats()
    report.progress = progress.summary()
    if registry is not None:
        registry.gauge("orchestrator.batch_elapsed_s").set(
            round(report.elapsed_s, 4)
        )
        report.metrics = registry.dump()
    return report
