"""Throughput/ETA reporting and per-job timing telemetry for batches.

:class:`ProgressReporter` is deliberately dumb: the pool calls
:meth:`ProgressReporter.update` once per finished record, and the
reporter keeps counters and wall-clock timings.  When constructed with a
``stream`` it emits one status line per update (rate-limited by
``min_interval_s``); without one it is a silent accumulator whose
:meth:`summary` feeds the batch report.

All mutation and reads go through one internal lock, so a reporter may
be polled from another thread while the pool is updating it — this is
what lets the service layer serve live job progress
(:meth:`ProgressReporter.snapshot`) while ``run_jobs`` is mid-batch.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, TextIO

from .store import STATUS_OK, RunRecord


class ProgressReporter:
    """Track batch completion, throughput, ETA, and per-job timings."""

    def __init__(
        self,
        total: int,
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.0,
    ):
        self.total = total
        self.stream = stream
        self.min_interval_s = min_interval_s
        self.done = 0
        self.ok = 0
        self.failed = 0
        self.cached = 0
        self.resumed = 0
        self.job_seconds: List[float] = []
        self._started = time.monotonic()
        self._last_emit = 0.0
        self._lock = threading.Lock()

    def update(self, record: RunRecord) -> None:
        """Record one finished job and maybe emit a status line."""
        with self._lock:
            self.done += 1
            if record.status == STATUS_OK:
                self.ok += 1
            else:
                self.failed += 1
            source = record.telemetry.get("source")
            if source == "cache":
                self.cached += 1
            elif source == "resume":
                self.resumed += 1
            elapsed = record.telemetry.get("elapsed_s")
            if isinstance(elapsed, (int, float)):
                self.job_seconds.append(float(elapsed))
        self._maybe_emit()

    @property
    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    @property
    def throughput(self) -> float:
        """Completed jobs per wall-clock second (0.0 until a job finishes).

        Guarded against zero/garbage elapsed clocks: with no completed
        jobs or a non-positive elapsed time there is no meaningful rate.
        """
        elapsed = self.elapsed_s
        if self.done == 0 or elapsed <= 0:
            return 0.0
        return self.done / elapsed

    @property
    def eta_s(self) -> Optional[float]:
        """Estimated seconds to completion, or ``None`` while unknown.

        Unknown means no job has finished yet (no rate to extrapolate
        from); callers must handle ``None`` rather than trusting a fake
        zero that reads as "done".
        """
        remaining = max(0, self.total - self.done)
        rate = self.throughput
        if rate <= 0:
            return None if remaining else 0.0
        return remaining / rate

    def line(self) -> str:
        parts = [
            f"[{self.done}/{self.total}]",
            f"ok={self.ok}",
            f"failed={self.failed}",
            f"cached={self.cached}",
            f"resumed={self.resumed}",
            f"{self.throughput:.1f} job/s",
        ]
        eta = self.eta_s
        parts.append("eta ?" if eta is None else f"eta {eta:.0f}s")
        return " ".join(parts)

    def _maybe_emit(self) -> None:
        if self.stream is None:
            return
        now = time.monotonic()
        final = self.done >= self.total
        if not final and now - self._last_emit < self.min_interval_s:
            return
        self._last_emit = now
        print(self.line(), file=self.stream)

    def snapshot(self) -> Dict[str, Any]:
        """Thread-safe point-in-time view of the same dict as :meth:`summary`.

        Safe to call from another thread while the pool is mid-batch —
        this is the poll payload the service layer returns for a running
        job, so callers never poke reporter attributes directly.
        """
        with self._lock:
            timings = sorted(self.job_seconds)
            eta = self.eta_s
            return {
                "eta_s": round(eta, 3) if eta is not None else None,
                "total": self.total,
                "done": self.done,
                "ok": self.ok,
                "failed": self.failed,
                "cached": self.cached,
                "resumed": self.resumed,
                "elapsed_s": round(self.elapsed_s, 3),
                "throughput_jobs_per_s": round(self.throughput, 3),
                "mean_job_s": (
                    round(sum(timings) / len(timings), 4) if timings else 0.0
                ),
                "max_job_s": round(timings[-1], 4) if timings else 0.0,
            }

    def summary(self) -> Dict[str, Any]:
        """Flat telemetry dictionary for reports and ``--json`` output."""
        return self.snapshot()
