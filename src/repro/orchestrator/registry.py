"""The single algorithm + graph-family registry.

Every driver that names an algorithm or a graph family — the CLI, the
sweep framework, Table 1, the batch orchestrator — resolves it here, so
the set of runnable things is defined exactly once.  Canonical algorithm
names are the Table 1 names (``Randomized-MST``, ...); lowercase CLI-style
aliases (``randomized``, ...) resolve to them.

Runners all share the signature ``runner(graph, seed, **options)`` and
return an :class:`repro.core.MSTRunResult`; graph factories share
``factory(n, seed, id_range)`` and return a connected
:class:`repro.graphs.WeightedGraph`.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Optional

from repro.baselines import run_pipelined_ghs, run_traditional_ghs
from repro.core import run_deterministic_mst, run_randomized_mst
from repro.sim.array_engine import resolve_engine
from repro.sim.transport import (
    CHANNEL_SPEC_EXAMPLES,
    parse_channel_spec,
    validate_channel_spec,
)
from repro.graphs import (
    WeightedGraph,
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_geometric_graph,
    ring_graph,
    star_graph,
)

GraphFactory = Callable[[int, int, Optional[int]], WeightedGraph]
AlgorithmRunner = Callable[..., Any]

#: Graph families available everywhere (CLI ``run``/``sweep``/``batch``,
#: :mod:`repro.analysis.sweep`, the orchestrator).
GRAPH_FAMILIES: Dict[str, GraphFactory] = {
    "ring": lambda n, seed, idr: ring_graph(n, seed=seed, id_range=idr),
    "path": lambda n, seed, idr: path_graph(n, seed=seed, id_range=idr),
    "star": lambda n, seed, idr: star_graph(n, seed=seed, id_range=idr),
    "complete": lambda n, seed, idr: complete_graph(n, seed=seed, id_range=idr),
    "grid": lambda n, seed, idr: grid_graph(
        max(2, int(math.isqrt(n))),
        max(2, n // max(2, int(math.isqrt(n)))),
        seed=seed,
        id_range=idr,
    ),
    "gnp": lambda n, seed, idr: random_connected_graph(
        n, extra_edge_prob=0.1, seed=seed, id_range=idr
    ),
    "geometric": lambda n, seed, idr: random_geometric_graph(
        n, radius=0.35, seed=seed, id_range=idr
    ),
}


def _run_randomized(graph: WeightedGraph, seed: int, **options: Any):
    return run_randomized_mst(graph, seed=seed, **options)


def _run_deterministic(graph: WeightedGraph, seed: int, **options: Any):
    return run_deterministic_mst(graph, seed=seed, **options)


def _run_logstar(graph: WeightedGraph, seed: int, **options: Any):
    options.setdefault("coloring", "log-star")
    return run_deterministic_mst(graph, seed=seed, **options)


def _reject_array_engine(algorithm: str, options: Dict[str, Any]) -> None:
    """Comparator runners have no vectorized implementation.

    The MST runners validate ``engine=`` themselves; here we strip the
    default value and fail loudly on ``"array"`` instead of letting an
    unknown keyword reach the traditional runners.
    """
    engine = options.pop("engine", None)
    if resolve_engine(engine) == "array":
        from repro.sim.errors import UnsupportedFeatureError

        raise UnsupportedFeatureError(
            algorithm, "only Randomized-MST is vectorized"
        )


def _run_traditional(graph: WeightedGraph, seed: int, **options: Any):
    _reject_array_engine("Traditional-GHS", options)
    return run_traditional_ghs(graph, seed=seed, **options)


def _run_pipelined(graph: WeightedGraph, seed: int, **options: Any):
    _reject_array_engine("Pipelined-GHS", options)
    return run_pipelined_ghs(graph, seed=seed, **options)


#: The runners behind each Table 1 row (+ the traditional comparators).
ALGORITHMS: Dict[str, AlgorithmRunner] = {
    "Randomized-MST": _run_randomized,
    "Deterministic-MST": _run_deterministic,
    "LogStar-MST": _run_logstar,
    "Traditional-GHS": _run_traditional,
    "Pipelined-GHS": _run_pipelined,
}


def _run_crashing(graph: WeightedGraph, seed: int, **options: Any):
    raise RuntimeError(
        f"Crashing-MST always fails (n={graph.n}, seed={seed})"
    )


#: Diagnostic runners resolvable by the orchestrator but deliberately not
#: part of :data:`ALGORITHMS` (so table/sweep consumers never iterate into
#: them).  ``Crashing-MST`` exercises crash isolation and resume paths.
DIAGNOSTIC_ALGORITHMS: Dict[str, AlgorithmRunner] = {
    "Crashing-MST": _run_crashing,
}

#: Lowercase CLI-style aliases for the canonical algorithm names.
ALGORITHM_ALIASES: Dict[str, str] = {
    "randomized": "Randomized-MST",
    "deterministic": "Deterministic-MST",
    "logstar": "LogStar-MST",
    "log-star": "LogStar-MST",
    "traditional": "Traditional-GHS",
    "pipelined": "Pipelined-GHS",
    "crashing": "Crashing-MST",
}


def resolve_algorithm(name: str) -> str:
    """Return the canonical name for ``name`` (alias or canonical)."""
    canonical = ALGORITHM_ALIASES.get(name.lower(), name)
    if canonical not in ALGORITHMS and canonical not in DIAGNOSTIC_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)} "
            f"or aliases {sorted(ALGORITHM_ALIASES)}"
        )
    return canonical


def algorithm_runner(name: str) -> AlgorithmRunner:
    """Return the runner for ``name`` (canonical or alias)."""
    canonical = resolve_algorithm(name)
    return ALGORITHMS.get(canonical) or DIAGNOSTIC_ALGORITHMS[canonical]


def resolve_family(name: str) -> str:
    """Validate a graph-family name and return it."""
    if name not in GRAPH_FAMILIES:
        raise ValueError(
            f"unknown family {name!r}; choose from {sorted(GRAPH_FAMILIES)}"
        )
    return name


def graph_factory(name: str) -> GraphFactory:
    """Return the graph factory for family ``name``."""
    return GRAPH_FAMILIES[resolve_family(name)]


def resolve_channel_spec(spec: Optional[str]) -> Optional[str]:
    """Validate a ``--faults`` channel spec and return its normalized form.

    ``None``, the empty string, and ``"perfect"`` normalize to ``None``
    (the default perfect channel — no fault axis recorded).  Unknown specs
    raise ``ValueError`` listing examples; see
    :func:`repro.sim.transport.parse_channel_spec` for the grammar.
    """
    try:
        return validate_channel_spec(spec)
    except ValueError as error:
        message = str(error)
        if "examples:" not in message:
            message = f"{message}; examples: {', '.join(CHANNEL_SPEC_EXAMPLES)}"
        raise ValueError(message) from None


def channel_from_spec(spec: Optional[str]):
    """Build the :class:`~repro.sim.transport.ChannelModel` for ``spec``."""
    return parse_channel_spec(spec)
