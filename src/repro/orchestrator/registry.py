"""The single algorithm + graph-family registry.

Every driver that names an algorithm or a graph family — the CLI, the
sweep framework, Table 1, the batch orchestrator — resolves it here, so
the set of runnable things is defined exactly once.  Canonical algorithm
names are the Table 1 names (``Randomized-MST``, ...); lowercase CLI-style
aliases (``randomized``, ...) resolve to them.

Since the problem-registry refactor the algorithm tables live in problem
bundles (:mod:`repro.problems`); this module re-exports the MST bundle's
tables (the *same* dict objects, so they cannot drift) and grows a
``problem=`` axis on :func:`resolve_algorithm` / :func:`algorithm_runner`.
Runners all share the signature ``runner(graph, seed, **options)`` and
return a :class:`repro.core.RunResult`; graph factories share
``factory(n, seed, id_range)`` and return a connected
:class:`repro.graphs.WeightedGraph`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from repro.problems import AlgorithmRunner, problem_bundle, resolve_problem
from repro.problems.mst import (
    ALGORITHM_ALIASES,
    ALGORITHMS,
    DIAGNOSTIC_ALGORITHMS,
)
from repro.sim.transport import (
    CHANNEL_SPEC_EXAMPLES,
    parse_channel_spec,
    validate_channel_spec,
)
from repro.graphs import (
    WeightedGraph,
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_geometric_graph,
    ring_graph,
    star_graph,
)

GraphFactory = Callable[[int, int, Optional[int]], WeightedGraph]

#: Graph families available everywhere (CLI ``run``/``sweep``/``batch``,
#: :mod:`repro.analysis.sweep`, the orchestrator).
GRAPH_FAMILIES: Dict[str, GraphFactory] = {
    "ring": lambda n, seed, idr: ring_graph(n, seed=seed, id_range=idr),
    "path": lambda n, seed, idr: path_graph(n, seed=seed, id_range=idr),
    "star": lambda n, seed, idr: star_graph(n, seed=seed, id_range=idr),
    "complete": lambda n, seed, idr: complete_graph(n, seed=seed, id_range=idr),
    "grid": lambda n, seed, idr: grid_graph(
        max(2, int(math.isqrt(n))),
        max(2, n // max(2, int(math.isqrt(n)))),
        seed=seed,
        id_range=idr,
    ),
    "gnp": lambda n, seed, idr: random_connected_graph(
        n, extra_edge_prob=0.1, seed=seed, id_range=idr
    ),
    "geometric": lambda n, seed, idr: random_geometric_graph(
        n, radius=0.35, seed=seed, id_range=idr
    ),
}


def resolve_algorithm(name: str, problem: Optional[str] = None) -> str:
    """Return the canonical name for ``name`` within ``problem``.

    ``problem`` defaults to ``"mst"`` — the pre-registry behaviour.
    """
    return problem_bundle(problem).resolve_algorithm(name)


def algorithm_runner(
    name: str, problem: Optional[str] = None
) -> AlgorithmRunner:
    """Return the runner for ``name`` (canonical or alias) in ``problem``."""
    return problem_bundle(problem).runner(name)


def resolve_family(name: str) -> str:
    """Validate a graph-family name and return it."""
    if name not in GRAPH_FAMILIES:
        raise ValueError(
            f"unknown family {name!r}; choose from {sorted(GRAPH_FAMILIES)}"
        )
    return name


def graph_factory(name: str) -> GraphFactory:
    """Return the graph factory for family ``name``."""
    return GRAPH_FAMILIES[resolve_family(name)]


def resolve_channel_spec(spec: Optional[str]) -> Optional[str]:
    """Validate a ``--faults`` channel spec and return its normalized form.

    ``None``, the empty string, and ``"perfect"`` normalize to ``None``
    (the default perfect channel — no fault axis recorded).  Unknown specs
    raise ``ValueError`` listing examples; see
    :func:`repro.sim.transport.parse_channel_spec` for the grammar.
    """
    try:
        return validate_channel_spec(spec)
    except ValueError as error:
        message = str(error)
        if "examples:" not in message:
            message = f"{message}; examples: {', '.join(CHANNEL_SPEC_EXAMPLES)}"
        raise ValueError(message) from None


def channel_from_spec(spec: Optional[str]):
    """Build the :class:`~repro.sim.transport.ChannelModel` for ``spec``."""
    return parse_channel_spec(spec)
