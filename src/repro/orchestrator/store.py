"""Append-only JSONL run store with atomic appends and resume support.

Each line is one schema-versioned :class:`RunRecord` — a job spec, its
status (``ok`` / ``failed``), the deterministic metrics, and volatile
telemetry (timings, attempts, worker PID).  Appends are a single
``write`` + ``fsync`` of one newline-terminated line, and :meth:`RunStore.load`
tolerates a torn trailing line, so a store interrupted mid-run is always
readable and resumable.

The deterministic portion of a record (everything except ``telemetry``)
is exposed via :meth:`RunRecord.fingerprint` — byte-identical across
serial, pooled, and cache-replayed executions of the same spec.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Union

from .jobs import JobSpec, canonical_json

logger = logging.getLogger(__name__)

#: Bump when the record layout changes incompatibly.
SCHEMA_VERSION = 1

STATUS_OK = "ok"
STATUS_FAILED = "failed"


@dataclass
class RunRecord:
    """One job outcome: spec + status + metrics (or error) + telemetry."""

    key: str
    spec: Dict[str, Any]
    status: str
    metrics: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    schema: int = SCHEMA_VERSION
    #: Volatile, non-deterministic extras: elapsed seconds, attempts,
    #: worker PID, cache provenance.  Never part of the fingerprint.
    telemetry: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def ok(
        cls,
        spec: JobSpec,
        metrics: Dict[str, Any],
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> "RunRecord":
        return cls(
            key=spec.key,
            spec=spec.to_dict(),
            status=STATUS_OK,
            metrics=metrics,
            telemetry=dict(telemetry or {}),
        )

    @classmethod
    def failed(
        cls,
        spec: JobSpec,
        error: str,
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> "RunRecord":
        return cls(
            key=spec.key,
            spec=spec.to_dict(),
            status=STATUS_FAILED,
            error=error,
            telemetry=dict(telemetry or {}),
        )

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": self.schema,
            "key": self.key,
            "spec": self.spec,
            "status": self.status,
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        if self.error is not None:
            payload["error"] = self.error
        payload["telemetry"] = self.telemetry
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        return cls(
            key=payload["key"],
            spec=dict(payload["spec"]),
            status=payload["status"],
            metrics=payload.get("metrics"),
            error=payload.get("error"),
            schema=payload.get("schema", SCHEMA_VERSION),
            telemetry=dict(payload.get("telemetry") or {}),
        )

    def fingerprint(self) -> bytes:
        """Canonical bytes of the deterministic portion of this record.

        Identical for the same spec regardless of how it was executed
        (serially, in a worker pool, or replayed from cache).
        """
        deterministic = {
            "schema": self.schema,
            "key": self.key,
            "spec": self.spec,
            "status": self.status,
            "metrics": self.metrics,
            "error": self.error,
        }
        return canonical_json(deterministic).encode()


class RunStore:
    """Append-only JSONL ledger of :class:`RunRecord` lines."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        #: Malformed lines skipped by the last :meth:`load` (torn writes).
        self.skipped_lines = 0

    def append(self, record: RunRecord) -> None:
        """Append one record as a single atomic line write."""
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def extend(self, records: Iterable[RunRecord]) -> None:
        for record in records:
            self.append(record)

    def load(self) -> List[RunRecord]:
        """Read all records; tolerate (and count) torn/malformed lines.

        A writer that died mid-append (a crashed worker, a killed
        daemon) leaves a truncated final line.  Such lines are skipped
        with a warning — never an exception — so a store always remains
        loadable and resumable by its own successor process.
        """
        self.skipped_lines = 0
        records: List[RunRecord] = []
        if not self.path.exists():
            return records
        with open(self.path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    records.append(RunRecord.from_dict(payload))
                except (ValueError, KeyError, TypeError) as error:
                    self.skipped_lines += 1
                    logger.warning(
                        "skipping malformed line %d of %s "
                        "(torn write from a crashed writer?): %s",
                        number,
                        self.path,
                        error,
                    )
        return records

    def latest_by_key(self) -> Dict[str, RunRecord]:
        """Latest record per job key (later lines supersede earlier ones)."""
        latest: Dict[str, RunRecord] = {}
        for record in self.load():
            latest[record.key] = record
        return latest

    def completed_keys(self) -> Set[str]:
        """Keys whose *latest* record is ``ok`` — what resume may skip."""
        return {
            key
            for key, record in self.latest_by_key().items()
            if record.status == STATUS_OK
        }


def load_records(path: Union[str, Path]) -> List[RunRecord]:
    """Convenience: read every record from a store file."""
    return RunStore(path).load()
