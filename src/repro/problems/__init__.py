"""Problem bundles: the pluggable problem registry.

Importing this package registers the built-in bundles (``mst`` first —
the default — then ``mis``).  Drivers resolve a ``problem=`` axis through
:func:`problem_bundle`; see ``docs/problems.md`` for how to add one.
"""

from .base import (
    DEFAULT_PROBLEM,
    PROBLEM_REGISTRY,
    AlgorithmRunner,
    ProblemBundle,
    problem_bundle,
    problem_names,
    register_problem,
    resolve_problem,
)

# Bundle registration happens at import time, in registry order.
from . import mst as _mst_bundle_module  # noqa: F401  (registers "mst")
from . import mis as _mis_bundle_module  # noqa: F401  (registers "mis")

from .mis import MISNodeOutput, MISRunResult, greedy_mis, run_sleeping_mis
from .mst import MST_BUNDLE

MIS_BUNDLE = _mis_bundle_module.MIS_BUNDLE

__all__ = [
    "AlgorithmRunner",
    "DEFAULT_PROBLEM",
    "MISNodeOutput",
    "MISRunResult",
    "MIS_BUNDLE",
    "MST_BUNDLE",
    "PROBLEM_REGISTRY",
    "ProblemBundle",
    "greedy_mis",
    "problem_bundle",
    "problem_names",
    "register_problem",
    "resolve_problem",
    "run_sleeping_mis",
]
