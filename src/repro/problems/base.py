"""The problem registry: what it means to be a runnable problem.

The sleeping-model toolbox — LDT procedures, Transmission-Schedule blocks,
fragment broadcast/convergecast — is problem-agnostic, and so are the
orchestrator, the invariant-monitor plumbing, and the bench harness.  What
*is* problem-specific is the bundle of artifacts every layer needs to run
one problem end to end:

* the algorithm runners (``runner(graph, seed, **options) -> RunResult``)
  plus their canonical/alias names and diagnostic variants;
* a reference solver producing the ground-truth output on a graph;
* the invariant monitors that ``--monitors all`` should attach;
* the awake-complexity bound the measured curves are normalized against.

A :class:`ProblemBundle` packages exactly that, and the module-level
registry (:func:`register_problem` / :func:`problem_bundle`) is the single
place drivers resolve a ``problem=`` axis — the CLI, ``JobSpec``, the
monitor spec resolver, and the comparison tables all go through it, so
adding a problem (coloring, congested-clique MST, ...) is one new bundle
module, not a cross-layer surgery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

AlgorithmRunner = Callable[..., Any]

#: The problem every pre-bundle driver implicitly meant.  ``JobSpec``
#: payloads omit the ``problem`` key at this default, so MST-only specs
#: hash identically to before the problem axis existed.
DEFAULT_PROBLEM = "mst"


@dataclass(frozen=True)
class ProblemBundle:
    """Everything one problem contributes to the stack.

    Bundles are registered once at import time (:func:`register_problem`)
    and treated as immutable; the mappings they carry are shared with the
    legacy module-level tables in :mod:`repro.orchestrator.registry`, so
    the two views can never drift.
    """

    #: Registry key and the value of the ``problem=`` grid axis.
    name: str
    #: Human-readable problem name for tables and docs.
    title: str
    #: One-line description (shown by docs and the comparison table).
    description: str
    #: Canonical algorithm name -> runner.
    algorithms: Mapping[str, AlgorithmRunner]
    #: Lowercase CLI-style aliases -> canonical names.
    aliases: Mapping[str, str]
    #: The algorithm generic drivers default to.
    default_algorithm: str
    #: Label the CLI prints next to the output check
    #: (``"correct MST"``, ``"maximal independent set"``).
    check_label: str
    #: The paper's awake-complexity bound, as prose (``"O(log n)"``).
    awake_bound: str
    #: Runners resolvable by name but excluded from grids/tables
    #: (e.g. ``Crashing-MST`` for crash-isolation drills).
    diagnostic_algorithms: Mapping[str, AlgorithmRunner] = field(
        default_factory=dict
    )
    #: Ground-truth solver ``graph -> reference output`` (the unique MST
    #: edge set; *a* greedy MIS — reference outputs need not be unique).
    reference_solver: Optional[Callable[[Any], Any]] = None
    #: Monitor names ``--monitors all`` expands to for this problem (see
    #: :data:`repro.invariants.PROBLEM_MONITORS`, which mirrors this).
    monitors: Tuple[str, ...] = ()
    #: Names of this problem's benchmarks in :mod:`repro.bench.suites`.
    bench_names: Tuple[str, ...] = ()
    #: ``n -> theoretical awake normalizer`` for measured-curve ratios
    #: (``log2 n`` for MST, ``log2 log2 n`` for MIS).
    awake_normalizer: Callable[[int], float] = lambda n: math.log2(max(2, n))
    #: Human name of the normalizer column in comparison tables.
    normalizer_label: str = "log2 n"

    def resolve_algorithm(self, name: str) -> str:
        """Return the canonical name for ``name`` (alias or canonical).

        The error lists *every* resolvable name — the grid algorithms and
        the diagnostic ones — since both are accepted here.
        """
        canonical = self.aliases.get(name.lower(), name)
        if (
            canonical not in self.algorithms
            and canonical not in self.diagnostic_algorithms
        ):
            choices = sorted([*self.algorithms, *self.diagnostic_algorithms])
            raise ValueError(
                f"unknown algorithm {name!r} for problem {self.name!r}; "
                f"choose from {choices} or aliases {sorted(self.aliases)}"
            )
        return canonical

    def runner(self, name: str) -> AlgorithmRunner:
        """Return the runner for ``name`` (canonical or alias)."""
        canonical = self.resolve_algorithm(name)
        runner = self.algorithms.get(canonical)
        if runner is None:
            runner = self.diagnostic_algorithms[canonical]
        return runner


#: The registry.  Populated by the bundle modules at package import time;
#: iteration order is registration order (mst first).
PROBLEM_REGISTRY: Dict[str, ProblemBundle] = {}


def register_problem(bundle: ProblemBundle) -> ProblemBundle:
    """Register ``bundle``; re-registering the same name raises."""
    if bundle.name in PROBLEM_REGISTRY:
        raise ValueError(f"problem {bundle.name!r} is already registered")
    PROBLEM_REGISTRY[bundle.name] = bundle
    return bundle


def problem_names() -> Tuple[str, ...]:
    """The registered problem names, in registration order."""
    return tuple(PROBLEM_REGISTRY)


def resolve_problem(name: Optional[str]) -> str:
    """Validate a ``problem=`` value; ``None`` means :data:`DEFAULT_PROBLEM`."""
    if name is None:
        return DEFAULT_PROBLEM
    key = str(name).strip().lower()
    if not key:
        return DEFAULT_PROBLEM
    if key not in PROBLEM_REGISTRY:
        raise ValueError(
            f"unknown problem {name!r}; choose from {sorted(PROBLEM_REGISTRY)}"
        )
    return key


def problem_bundle(name: Optional[str] = None) -> ProblemBundle:
    """Return the bundle for ``name`` (default: :data:`DEFAULT_PROBLEM`)."""
    return PROBLEM_REGISTRY[resolve_problem(name)]
