"""The MIS problem bundle: O(log log n)-awake maximal independent set."""

import math

from repro.invariants.monitors import PROBLEM_MONITORS

from ..base import ProblemBundle, register_problem
from .protocol import (
    MIS_PHASE_BLOCKS,
    MISNodeOutput,
    mis_phase_plan,
    sleeping_mis_protocol,
)
from .reference import greedy_mis
from .runner import MISRunResult, run_sleeping_mis
from .validation import (
    MISOutputError,
    check_local_mis_outputs,
    is_independent_set,
    is_maximal_independent_set,
)


def _run_sleeping_mis(graph, seed, **options):
    return run_sleeping_mis(graph, seed=seed, **options)


MIS_BUNDLE = register_problem(
    ProblemBundle(
        name="mis",
        title="Maximal Independent Set",
        description=(
            "O(log log n)-awake MIS in the sleeping model "
            "(Dufoulon, Moses Jr., Pandurangan; arXiv 2204.08359)"
        ),
        algorithms={"Sleeping-MIS": _run_sleeping_mis},
        # ``randomized`` keeps the CLI grid defaults (--algorithms
        # randomized) meaningful under --problem mis.
        aliases={
            "mis": "Sleeping-MIS",
            "sleeping-mis": "Sleeping-MIS",
            "randomized": "Sleeping-MIS",
        },
        default_algorithm="Sleeping-MIS",
        check_label="maximal independent set",
        awake_bound="O(log log n)",
        reference_solver=greedy_mis,
        monitors=PROBLEM_MONITORS["mis"],
        bench_names=(
            "mis_sleeping_e2e_n64",
            "mis_sleeping_e2e_n256",
            "mis_sleeping_monitored_n64",
        ),
        awake_normalizer=lambda n: math.log2(max(2.0, math.log2(max(4, n)))),
        normalizer_label="log2 log2 n",
    )
)

__all__ = [
    "MIS_BUNDLE",
    "MIS_PHASE_BLOCKS",
    "MISNodeOutput",
    "MISOutputError",
    "MISRunResult",
    "check_local_mis_outputs",
    "greedy_mis",
    "is_independent_set",
    "is_maximal_independent_set",
    "mis_phase_plan",
    "run_sleeping_mis",
    "sleeping_mis_protocol",
]
