"""``Sleeping-MIS`` — an ``O(log log n)``-awake randomized MIS protocol.

The second problem of the zoo, after the sibling result to the source
paper: Dufoulon, Moses Jr., Pandurangan, *"Distributed MIS in O(log log n)
Awake Complexity"* (arXiv 2204.08359).  Their key idea — and what this
protocol reproduces in measurable form — is that Luby-style MIS sampling
does not need ``Theta(log n)`` rounds of *awake* contention: by starting
the marking probability at ``2^{-ceil(log n / 2)}`` and squaring it every
phase (halving the exponent), ``O(log log n)`` phases suffice to bring
every neighbourhood's contention down to a constant, after which
``O(log log n)`` classic ``p = 1/2`` phases finish w.h.p.  Each phase
costs ``O(1)`` awake rounds, so the awake complexity is
``O(log log n)`` — exponentially below the ``Omega(log n / log log n)``
round lower bound for MIS, which only constrains *rounds*, not awake time.

Structure per phase (two Transmission-Schedule blocks, reusing
:func:`repro.core.toolbox.transmit_adjacent` on singleton LDTs — every
node is its own fragment; MIS never merges):

1. **Contend block** — marked nodes send ``(1, rank, id)`` on all ports
   (``rank`` is a fresh ``O(log n)``-bit per-phase coin; the ``(rank,
   id)`` pair is globally distinct).  In the *final* phase every
   still-undecided node sends ``(0, 0, id)`` too, so survivors take a
   census of their undecided neighbourhood.  All undecided nodes listen.
   A marked node **joins the MIS** iff no marked neighbour it heard has a
   smaller ``(rank, id)`` — two adjacent undecided nodes always hear each
   other, so joined nodes are never adjacent.
2. **Announce block** — joiners send ``("join", id)`` on all ports and
   terminate; undecided listeners that hear a join record the covering
   port, terminate as dominated, and never wake again.

After the fixed phase plan, survivors (w.h.p. an isolated few) run the
deterministic **final-slots stage**: node ``v`` wakes once at round
``base + v - 1``; before that it listens at the slots of its smaller-ID
neighbours from the final census and terminates dominated if one joins;
at its own slot, if still undominated, it joins and announces.  Slots are
globally distinct (IDs are unique), every survivor contended in the final
census, and smaller slots come first — so the stage deterministically
guarantees independence, maximality, and termination, at ``1 +
|smaller undecided neighbours|`` awake rounds (a constant in practice,
since the random phases already thinned every neighbourhood).

Awake complexity of a run: ``2 * len(mis_phase_plan(n))`` plus the
final-slots tail — ``Theta(log log n)`` and measured as such by
``repro-mst compare`` / ``examples/problem_compare.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.core.ldt import LDTState
from repro.core.schedule import BlockClock
from repro.core.toolbox import transmit_adjacent
from repro.sim import Awake, NodeContext

#: Blocks consumed by one phase of Sleeping-MIS (contend + announce).
MIS_PHASE_BLOCKS = 2


@dataclass(frozen=True)
class MISNodeOutput:
    """What each node knows at termination (the MIS output convention).

    Every node decides *in* or *out*; an out node additionally knows at
    least one port towards an MIS neighbour (its domination witness).
    """

    node_id: int
    #: Whether this node joined the independent set.
    in_mis: bool
    #: Number of phases this node participated in (the final-slots stage
    #: counts as one extra phase).
    phases: int
    #: Phase index at which the node decided (``len(plan) + 1`` when the
    #: decision fell to the final-slots stage; ``0`` for ``n == 1``).
    decided_phase: int
    #: Ports on which a join announcement was heard — the domination
    #: witnesses.  Non-empty iff the node is out.
    mis_ports: FrozenSet[int] = frozenset()


def mis_phase_plan(n: int) -> Tuple[int, ...]:
    """The per-phase marking exponents: ``p_t = 2^{-plan[t]}``.

    Exponent-halving sparsification (``ceil(K/2), ceil(K/4), ..., 2`` for
    ``K = ceil(log2 n)``) followed by ``ceil(log2 K) + 2`` finishing
    phases at ``p = 1/2``.  Total length ``Theta(log log n)``.
    """
    if n < 2:
        return ()
    K = max(1, math.ceil(math.log2(n)))
    plan = []
    exponent = math.ceil(K / 2)
    while exponent > 1:
        plan.append(exponent)
        exponent = math.ceil(exponent / 2)
    finishing = (math.ceil(math.log2(K)) if K > 1 else 0) + 2
    plan.extend([1] * finishing)
    return tuple(plan)


def sleeping_mis_protocol(
    ctx: NodeContext, max_phases: Optional[int] = None
):
    """Protocol generator for one node running ``Sleeping-MIS``.

    ``max_phases`` truncates the random phase plan (tests use it to force
    work onto the deterministic final-slots stage); at least one phase
    always runs, because the stage needs the final census.  Correctness —
    independence and maximality — never depends on the random phases, only
    the awake complexity does.
    """
    plan = mis_phase_plan(ctx.n)
    if max_phases is not None and plan:
        plan = plan[: max(1, int(max_phases))]
    if ctx.n == 1 or not ctx.ports:
        ctx.probe("mis_decided", in_mis=1, decided_phase=0, degree=0)
        return MISNodeOutput(
            node_id=ctx.node_id, in_mis=True, phases=0, decided_phase=0
        )

    ldt = LDTState.singleton(ctx.node_id)
    clock = BlockClock(ctx.n)
    final_phase = len(plan)
    #: port -> neighbour ID, learned from the final census.
    census: dict = {}
    mis_ports: set = set()
    decided: Optional[str] = None
    decided_phase = 0
    phases_run = 0

    for t, exponent in enumerate(plan, start=1):
        phases_run = t
        ctx.count("algo.phases", algorithm="sleeping-mis")
        with ctx.span("phase", t):
            marked = ctx.rng.random() < 0.5 ** exponent
            rank = ctx.rng.randrange(ctx.n ** 3) if marked else 0
            if marked:
                sends = {
                    port: (1, rank, ctx.node_id) for port in ctx.ports
                }
            elif t == final_phase:
                # Census round: survivors must know who else survived (and
                # their IDs) for the final-slots stage.
                sends = {
                    port: (0, 0, ctx.node_id) for port in ctx.ports
                }
            else:
                sends = None
            with ctx.span("block:mis_contend"):
                inbox = yield from transmit_adjacent(
                    ctx, ldt, clock.take(), sends
                )
            if t == final_phase:
                census = {
                    port: message[2] for port, message in inbox.items()
                }
            joining = marked
            if marked:
                mine = (rank, ctx.node_id)
                for is_marked, nbr_rank, nbr_id in inbox.values():
                    if is_marked and (nbr_rank, nbr_id) < mine:
                        joining = False
                        break
            with ctx.span("block:mis_announce"):
                inbox = yield from transmit_adjacent(
                    ctx,
                    ldt,
                    clock.take(),
                    {port: ("join", ctx.node_id) for port in ctx.ports}
                    if joining
                    else None,
                )
            if joining:
                decided, decided_phase = "in", t
            elif inbox:
                mis_ports.update(inbox)
                decided, decided_phase = "out", t
        if decided is not None:
            break

    if decided is None:
        # Final-slots stage: deterministic finish for the (w.h.p. tiny)
        # set of survivors.  Every survivor contended in the final census,
        # so each knows the IDs of its still-undecided neighbours.
        phases_run = len(plan) + 1
        decided_phase = len(plan) + 1
        ctx.count("algo.phases", algorithm="sleeping-mis")
        with ctx.span("stage:final_slots"):
            base = clock.next_start
            for nbr_id, port in sorted(
                (nbr_id, port)
                for port, nbr_id in census.items()
                if nbr_id < ctx.node_id
            ):
                inbox = yield Awake(base + nbr_id - 1)
                if inbox:
                    mis_ports.update(inbox)
                    decided = "out"
                    break
            if decided is None:
                yield Awake(
                    base + ctx.node_id - 1,
                    {port: ("join", ctx.node_id) for port in ctx.ports},
                )
                decided = "in"

    in_mis = decided == "in"
    ctx.probe(
        "mis_decided",
        in_mis=1 if in_mis else 0,
        decided_phase=decided_phase,
        degree=len(ctx.ports),
    )
    return MISNodeOutput(
        node_id=ctx.node_id,
        in_mis=in_mis,
        phases=phases_run,
        decided_phase=decided_phase,
        mis_ports=frozenset(mis_ports),
    )
