"""Reference MIS solver: the sequential greedy baseline.

Unlike MST (unique under distinct weights), a graph usually has many
maximal independent sets, so the reference output is *a* certificate of
feasibility, not the expected protocol output.  The validator therefore
checks independence + maximality of the protocol's own set; the greedy
set is used for sanity anchors (size bounds, docs examples, tests).
"""

from __future__ import annotations

from typing import FrozenSet

from repro.graphs import WeightedGraph


def greedy_mis(graph: WeightedGraph) -> FrozenSet[int]:
    """The lexicographically-first MIS: scan IDs ascending, take if free.

    Deterministic, so tests can pin exact sets; it is also exactly the
    fixed point the protocol's final-slots stage converges to when every
    random phase declines to mark (smaller IDs win their slots first).
    """
    in_mis: set = set()
    dominated: set = set()
    for node in sorted(graph.node_ids):
        if node in dominated:
            continue
        in_mis.add(node)
        dominated.update(graph.neighbors(node))
    return frozenset(in_mis)
