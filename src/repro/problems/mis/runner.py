"""Entry point for ``Sleeping-MIS``: run it on a graph, get results.

Mirrors :mod:`repro.core.runner` for the MIS bundle: execute the node
protocol on every node under :class:`repro.sim.SleepingSimulator`,
validate the output convention (every node decides, the in-set is a
maximal independent set, domination witnesses check out), and package
metrics behind the problem-generic :class:`repro.core.RunResult` surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional

from repro.core.runner import RunResult
from repro.graphs import WeightedGraph, require_sleeping_model_inputs
from repro.sim import Metrics, SimulationResult, SleepingSimulator
from repro.sim.array_engine import resolve_engine
from repro.sim.errors import UnsupportedFeatureError

from .protocol import MISNodeOutput, sleeping_mis_protocol
from .validation import check_local_mis_outputs, is_maximal_independent_set


@dataclass
class MISRunResult(RunResult):
    """Outcome of one distributed-MIS execution."""

    #: Which algorithm produced this result.
    algorithm: str
    #: The computed maximal independent set (validated node IDs).
    mis_nodes: FrozenSet[int]
    #: Per-node outputs keyed by node ID.
    node_outputs: Dict[int, MISNodeOutput]
    #: Simulation metrics (awake complexity, round complexity, messages...).
    metrics: Metrics
    #: Maximum number of phases executed by any node.
    phases: int
    #: The raw simulation result (trace/knowledge when enabled).
    simulation: SimulationResult

    problem = "mis"

    def is_correct(self, graph: WeightedGraph) -> bool:
        """Check the output is a maximal independent set of ``graph``.

        MIS outputs are not unique, so unlike MST this re-certifies
        feasibility rather than comparing against a reference set.
        """
        return is_maximal_independent_set(graph, self.mis_nodes)


def run_sleeping_mis(
    graph: WeightedGraph,
    seed: int = 0,
    max_phases: Optional[int] = None,
    verify: bool = False,
    engine: Optional[str] = None,
    **sim_kwargs: Any,
) -> MISRunResult:
    """Run ``Sleeping-MIS`` (O(log log n) awake, arXiv 2204.08359) on ``graph``.

    Parameters
    ----------
    seed:
        Master seed for all node coins; identical seeds reproduce
        identical executions.
    max_phases:
        Optional truncation of the random phase plan (the deterministic
        final-slots stage still guarantees a correct MIS).
    verify:
        When true, assert the output is a maximal independent set (it
        always is — the final-slots stage is deterministic — so this
        guards the implementation, not the algorithm).
    engine:
        Only ``"coroutine"`` implements this algorithm; ``"array"``
        raises :class:`repro.sim.errors.UnsupportedFeatureError` naming
        the fallback engine.
    sim_kwargs:
        Forwarded to :class:`repro.sim.SleepingSimulator` (``trace=True``,
        ``observe=True``, ``monitors=...``).
    """
    if resolve_engine(engine) == "array":
        raise UnsupportedFeatureError(
            "Sleeping-MIS", "only Randomized-MST is vectorized"
        )
    require_sleeping_model_inputs(graph)

    def factory(ctx):
        return sleeping_mis_protocol(ctx, max_phases=max_phases)

    simulator = SleepingSimulator(graph, factory, seed=seed, **sim_kwargs)
    simulation = simulator.run()
    outputs: Dict[int, MISNodeOutput] = dict(simulation.node_results)
    mis_nodes = check_local_mis_outputs(graph, outputs)
    result = MISRunResult(
        algorithm="Sleeping-MIS",
        mis_nodes=mis_nodes,
        node_outputs=outputs,
        metrics=simulation.metrics,
        phases=max((out.phases for out in outputs.values()), default=0),
        simulation=simulation,
    )
    if verify and not result.is_correct(graph):
        raise AssertionError(
            f"Sleeping-MIS produced a non-maximal or dependent set on "
            f"n={graph.n}: {sorted(mis_nodes)[:10]}..."
        )
    return result
