"""MIS output validation: independence, maximality, domination witnesses.

Mirrors :func:`repro.graphs.validation.check_local_mst_outputs` for the
MIS output convention: the checker consumes the *local* per-node outputs,
reconstructs the claimed set, and certifies it is a maximal independent
set whose out-nodes each point at a real in-MIS neighbour.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.graphs import WeightedGraph
from repro.graphs.validation import MSTOutputError

from .protocol import MISNodeOutput


class MISOutputError(MSTOutputError):
    """An MIS output set failed validation.

    Subclasses :class:`MSTOutputError` so the diagnosis path
    (:func:`repro.graphs.verify_or_diagnose`) picks up ``.missing`` — the
    nodes that produced no output — without problem-specific handling.
    """


def is_independent_set(graph: WeightedGraph, nodes: FrozenSet[int]) -> bool:
    """True iff no edge of ``graph`` has both endpoints in ``nodes``."""
    return not any(
        edge.u in nodes and edge.v in nodes for edge in graph.edges()
    )


def is_maximal_independent_set(
    graph: WeightedGraph, nodes: FrozenSet[int]
) -> bool:
    """True iff ``nodes`` is independent and no node can be added."""
    if not is_independent_set(graph, nodes):
        return False
    return all(
        node in nodes or any(nbr in nodes for nbr in graph.neighbors(node))
        for node in graph.node_ids
    )


def check_local_mis_outputs(
    graph: WeightedGraph, outputs: Dict[int, MISNodeOutput]
) -> FrozenSet[int]:
    """Validate per-node MIS outputs; return the certified MIS node set.

    Checks, in order: every node produced an output (missing nodes raise
    :class:`MISOutputError` with ``.missing`` populated, matching the MST
    convention); the in-nodes form an independent set; the set is maximal;
    and every out-node's ``mis_ports`` witnesses point at in-MIS
    neighbours.
    """
    missing = sorted(set(graph.node_ids) - set(outputs))
    if missing:
        raise MISOutputError(
            f"nodes without MIS output: {missing}", missing=missing
        )
    in_mis = frozenset(
        node for node, output in outputs.items() if output.in_mis
    )
    for edge in graph.edges():
        if edge.u in in_mis and edge.v in in_mis:
            raise MISOutputError(
                f"independence violated: adjacent nodes {edge.u} and "
                f"{edge.v} both claim MIS membership"
            )
    for node, output in outputs.items():
        if output.in_mis:
            continue
        neighbours = set(graph.neighbors(node))
        if not neighbours & in_mis:
            raise MISOutputError(
                f"maximality violated: node {node} is out of the MIS but "
                f"has no MIS neighbour"
            )
        ports = graph.ports_of(node)
        for port in output.mis_ports:
            witness = ports.get(port)
            if witness is None or witness[0] not in in_mis:
                raise MISOutputError(
                    f"node {node} cites port {port} as a domination "
                    f"witness but it does not lead to an MIS node"
                )
    return in_mis
