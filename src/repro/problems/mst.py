"""The MST problem bundle — the paper's own problem, now one of many.

This module owns the algorithm tables that used to live in
:mod:`repro.orchestrator.registry`; the registry re-exports the *same*
dict objects for backwards compatibility, so the two views cannot drift.
Runners all share the signature ``runner(graph, seed, **options)`` and
return an :class:`repro.core.MSTRunResult`.
"""

from __future__ import annotations

import math
from typing import Any, Dict

from repro.baselines import run_pipelined_ghs, run_traditional_ghs
from repro.core import run_deterministic_mst, run_randomized_mst
from repro.graphs import WeightedGraph, mst_weight_set
from repro.invariants.monitors import PROBLEM_MONITORS
from repro.sim.array_engine import resolve_engine

from .base import AlgorithmRunner, ProblemBundle, register_problem


def _run_randomized(graph: WeightedGraph, seed: int, **options: Any):
    return run_randomized_mst(graph, seed=seed, **options)


def _run_deterministic(graph: WeightedGraph, seed: int, **options: Any):
    return run_deterministic_mst(graph, seed=seed, **options)


def _run_logstar(graph: WeightedGraph, seed: int, **options: Any):
    options.setdefault("coloring", "log-star")
    return run_deterministic_mst(graph, seed=seed, **options)


def _reject_array_engine(algorithm: str, options: Dict[str, Any]) -> None:
    """Comparator runners have no vectorized implementation.

    The MST runners validate ``engine=`` themselves; here we strip the
    default value and fail loudly on ``"array"`` instead of letting an
    unknown keyword reach the traditional runners.
    """
    engine = options.pop("engine", None)
    if resolve_engine(engine) == "array":
        from repro.sim.errors import UnsupportedFeatureError

        raise UnsupportedFeatureError(
            algorithm, "only Randomized-MST is vectorized"
        )


def _run_traditional(graph: WeightedGraph, seed: int, **options: Any):
    _reject_array_engine("Traditional-GHS", options)
    return run_traditional_ghs(graph, seed=seed, **options)


def _run_pipelined(graph: WeightedGraph, seed: int, **options: Any):
    _reject_array_engine("Pipelined-GHS", options)
    return run_pipelined_ghs(graph, seed=seed, **options)


#: The runners behind each Table 1 row (+ the traditional comparators).
ALGORITHMS: Dict[str, AlgorithmRunner] = {
    "Randomized-MST": _run_randomized,
    "Deterministic-MST": _run_deterministic,
    "LogStar-MST": _run_logstar,
    "Traditional-GHS": _run_traditional,
    "Pipelined-GHS": _run_pipelined,
}


def _run_crashing(graph: WeightedGraph, seed: int, **options: Any):
    raise RuntimeError(
        f"Crashing-MST always fails (n={graph.n}, seed={seed})"
    )


#: Diagnostic runners resolvable by the orchestrator but deliberately not
#: part of :data:`ALGORITHMS` (so table/sweep consumers never iterate into
#: them).  ``Crashing-MST`` exercises crash isolation and resume paths.
DIAGNOSTIC_ALGORITHMS: Dict[str, AlgorithmRunner] = {
    "Crashing-MST": _run_crashing,
}

#: Lowercase CLI-style aliases for the canonical algorithm names.
ALGORITHM_ALIASES: Dict[str, str] = {
    "randomized": "Randomized-MST",
    "deterministic": "Deterministic-MST",
    "logstar": "LogStar-MST",
    "log-star": "LogStar-MST",
    "traditional": "Traditional-GHS",
    "pipelined": "Pipelined-GHS",
    "crashing": "Crashing-MST",
}


MST_BUNDLE = register_problem(
    ProblemBundle(
        name="mst",
        title="Minimum Spanning Tree",
        description=(
            "O(log n)-awake MST in the sleeping model "
            "(Augustine, Moses Jr., Pandurangan; PODC 2022)"
        ),
        algorithms=ALGORITHMS,
        aliases=ALGORITHM_ALIASES,
        default_algorithm="Randomized-MST",
        check_label="correct MST",
        awake_bound="O(log n)",
        diagnostic_algorithms=DIAGNOSTIC_ALGORITHMS,
        reference_solver=mst_weight_set,
        monitors=PROBLEM_MONITORS["mst"],
        bench_names=(
            "mst_randomized_e2e_n256",
            "mst_deterministic_e2e_n64",
        ),
        awake_normalizer=lambda n: math.log2(max(2, n)),
        normalizer_label="log2 n",
    )
)
