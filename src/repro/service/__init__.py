"""Simulation-as-a-service: a job API and worker daemon over the orchestrator.

The orchestrator gives one process content-hashed grids, a result
cache, and resumable stores; this package adds the missing front door —
an HTTP job API — and a worker pool that outlives any one CLI
invocation, so the paper's sweeps become a shared, deduplicated
resource instead of a per-user recomputation.

Three pieces, composed thin-to-thick:

:mod:`repro.service.queue`
    :class:`JobQueue` — the transport-agnostic core: a FIFO of grid
    submissions drained by persistent daemon threads through
    :func:`repro.orchestrator.run_jobs`, with grid-level in-flight
    coalescing and cell-level cache dedupe.  N identical concurrent
    submissions cost one simulation.
:mod:`repro.service.server`
    :class:`ServiceServer` — a stdlib ``ThreadingHTTPServer`` router:
    ``POST /jobs``, ``GET /jobs/<hash>``, ``GET /jobs/<hash>/result``,
    ``GET /jobs/<hash>/events``, ``GET /healthz``, ``GET /stats``,
    ``GET /metrics`` (Prometheus text format).  Every request carries a
    trace ID (``X-Trace-Id`` honoured and echoed) and emits one
    structured access-log record (see :mod:`repro.telemetry`).
:mod:`repro.service.client`
    :class:`ServiceClient` — ``submit`` / ``poll`` / ``wait`` /
    ``fetch`` / ``events`` / ``metrics_text``, used by the ``submit``
    and ``top`` CLI subcommands.  ``wait`` retries transient connection
    failures with capped exponential backoff.

.. code-block:: python

    from repro.service import JobQueue, ServiceClient, build_server

    queue = JobQueue("/tmp/repro-service").start()
    server = build_server(queue, port=0)
    # ... serve_forever on a thread or via `repro-mst serve` ...
    client = ServiceClient(server.url)
    job = client.submit({"algorithms": ["randomized"],
                         "families": ["ring"], "sizes": [16], "seeds": 2})
    print(client.wait(job["job"])["progress"])
"""

from .client import ServiceClient, ServiceError
from .queue import (
    FINISHED_STATES,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_STATES,
    Job,
    JobQueue,
)
from .server import ServiceHandler, ServiceServer, build_server, serve_forever

__all__ = [
    "FINISHED_STATES",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "ServiceClient",
    "ServiceError",
    "ServiceHandler",
    "ServiceServer",
    "build_server",
    "serve_forever",
]
