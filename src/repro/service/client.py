"""Small stdlib HTTP client for the service API.

:class:`ServiceClient` is what the ``submit`` CLI subcommand uses, and
the reference consumer for anyone scripting against the service: submit
a grid, poll its job hash, block until done, fetch the records.  Errors
come back as :class:`ServiceError` carrying the HTTP status and the
server's JSON payload — never a raw ``urllib`` traceback.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

#: Jobs in one of these states have nothing left to wait for.
FINISHED_STATES = ("done", "failed")


class ServiceError(RuntimeError):
    """A non-2xx service response (or no response at all)."""

    def __init__(self, status: int, payload: Dict[str, Any]):
        self.status = status
        self.payload = payload
        message = payload.get("error") or str(payload)
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """Talk to a running ``repro serve`` daemon.

    .. code-block:: python

        client = ServiceClient("http://127.0.0.1:8732")
        job = client.submit({"algorithms": ["randomized"],
                             "families": ["ring"], "sizes": [16],
                             "seeds": 3})
        final = client.wait(job["job"])
        records = client.fetch(job["job"])["records"]
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 30.0,
        trace_id: Optional[str] = None,
        retries: int = 5,
        backoff_s: float = 0.1,
        backoff_cap_s: float = 2.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        #: Sent as ``X-Trace-Id`` on every request when set, so a whole
        #: client session correlates in the daemon's access log.
        self.trace_id = trace_id
        #: Transient-connection retry policy used by :meth:`wait` — a
        #: daemon hiccup (restart, listen-queue overflow) mid-poll
        #: shouldn't abandon a job that is still running fine.
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s

    # -- transport -----------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        data = None
        if payload is not None:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if self.trace_id:
            headers["X-Trace-Id"] = self.trace_id
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers=headers,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return response.status, self._decode(response.read())
        except urllib.error.HTTPError as error:
            return error.code, self._decode(error.read())
        except urllib.error.URLError as error:
            raise ServiceError(
                0, {"error": f"service unreachable: {error.reason}"}
            ) from error

    def _request_text(self, path: str) -> str:
        """GET a non-JSON endpoint (``/metrics``) as raw text."""
        request = urllib.request.Request(
            f"{self.base_url}{path}", method="GET"
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return response.read().decode("utf-8", "replace")
        except urllib.error.HTTPError as error:
            raise ServiceError(error.code, self._decode(error.read()))
        except urllib.error.URLError as error:
            raise ServiceError(
                0, {"error": f"service unreachable: {error.reason}"}
            ) from error

    @staticmethod
    def _decode(body: bytes) -> Dict[str, Any]:
        try:
            decoded = json.loads(body or b"{}")
        except ValueError:
            return {"error": body.decode("utf-8", "replace")}
        if isinstance(decoded, dict):
            return decoded
        return {"value": decoded}

    def _checked(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        status, body = self._request(method, path, payload)
        if status >= 400:
            raise ServiceError(status, body)
        return body

    # -- API -----------------------------------------------------------

    def submit(self, grid: Mapping[str, Any]) -> Dict[str, Any]:
        """POST a grid; returns the job snapshot (with ``coalesced``)."""
        return self._checked("POST", "/jobs", grid)

    def poll(self, job: str) -> Dict[str, Any]:
        """GET one job's status/progress snapshot."""
        return self._checked("GET", f"/jobs/{job}")

    def fetch(self, job: str) -> Dict[str, Any]:
        """GET a finished job's summary and records (409 while running)."""
        return self._checked("GET", f"/jobs/{job}/result")

    def events(self, job: str) -> Dict[str, Any]:
        """GET the job's flight-recorder lifecycle events."""
        return self._checked("GET", f"/jobs/{job}/events")

    def healthz(self) -> Dict[str, Any]:
        return self._checked("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._checked("GET", "/stats")

    def metrics_text(self) -> str:
        """GET ``/metrics`` — the raw Prometheus text page."""
        return self._request_text("/metrics")

    def wait(
        self,
        job: str,
        timeout_s: Optional[float] = None,
        interval_s: float = 0.2,
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Poll until the job finishes; returns the final snapshot.

        ``on_progress`` receives every intermediate snapshot (the CLI
        uses it to stream progress lines).  Raises ``TimeoutError`` if
        the deadline passes first.

        Transient connection failures (``ServiceError`` with status 0 —
        the daemon restarting, a dropped socket) are retried with capped
        exponential backoff (``backoff_s`` doubling up to
        ``backoff_cap_s``) for up to ``retries`` consecutive failures;
        HTTP error responses (status >= 400) still raise immediately.
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        failures = 0
        while True:
            try:
                snapshot = self.poll(job)
            except ServiceError as error:
                if error.status != 0 or failures >= self.retries:
                    raise
                failures += 1
                delay = min(
                    self.backoff_cap_s,
                    self.backoff_s * (2 ** (failures - 1)),
                )
                if deadline is not None and (
                    time.monotonic() + delay >= deadline
                ):
                    raise TimeoutError(
                        f"job {job} unreachable after {timeout_s}s: {error}"
                    ) from error
                time.sleep(delay)
                continue
            failures = 0
            if on_progress is not None:
                on_progress(snapshot)
            if snapshot.get("status") in FINISHED_STATES:
                return snapshot
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job} still {snapshot.get('status')} "
                    f"after {timeout_s}s"
                )
            time.sleep(interval_s)

    def wait_until_up(
        self, timeout_s: float = 10.0, interval_s: float = 0.1
    ) -> Dict[str, Any]:
        """Block until ``/healthz`` answers ok (daemon start-up handshake)."""
        deadline = time.monotonic() + timeout_s
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except ServiceError as error:
                last_error = error
                time.sleep(interval_s)
        raise ServiceError(
            0,
            {
                "error": (
                    f"service at {self.base_url} not up after {timeout_s}s: "
                    f"{last_error}"
                )
            },
        )
