"""Persistent job queue: a worker pool that outlives one CLI invocation.

:class:`JobQueue` is the service half of simulation-as-a-service — a
FIFO of grid submissions drained by daemon worker threads, each running
a whole grid through :func:`repro.orchestrator.run_jobs` (so every job
inherits the pool's crash isolation, timeouts, retries, the
content-addressed :class:`~repro.orchestrator.ResultCache`, and a
resumable per-job JSONL :class:`~repro.orchestrator.RunStore`).

Dedupe happens at two levels:

* **In-flight coalescing** — a job is identified by
  :func:`repro.orchestrator.grid_key` over its expanded specs, so N
  concurrent submissions of the identical grid share one
  :class:`Job` (and therefore one simulation); later submissions of a
  finished grid are answered from the completed job without re-running.
* **Cell-level caching** — distinct grids that overlap share cells
  through the content-addressed cache, so only genuinely new cells
  execute.  Cache replays are byte-identical to live runs
  (:meth:`repro.orchestrator.RunRecord.fingerprint`).

The queue is deliberately transport-agnostic: nothing in this module
knows about HTTP.  The stdlib server in :mod:`repro.service.server` is
one front door; a future multi-machine shard router is another.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple, Union

from repro.obs import MetricsRegistry
from repro.orchestrator import (
    BatchReport,
    JobSpec,
    ProgressReporter,
    ResultCache,
    grid_from_payload,
    grid_key,
    run_jobs,
)
from repro.telemetry import (
    DEFAULT_MAX_EVENTS,
    FlightRecorder,
    current_trace_id,
    flight_path_for,
    load_flight_events,
    new_trace_id,
    trace_context,
)

logger = logging.getLogger("repro.service.queue")

#: Job lifecycle states.  ``done`` means the grid ran to completion —
#: individual cell failures live in the batch summary, not the job
#: status; ``failed`` is reserved for infrastructure errors (the batch
#: itself raised), and a failed job is re-enqueued on resubmission.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED)

#: States in which ``GET /jobs/<hash>/result`` has something to return.
FINISHED_STATES = (JOB_DONE, JOB_FAILED)


def _registry_dump(registry: MetricsRegistry) -> Dict[str, Any]:
    """Dump a registry that another thread may be writing to.

    ``MetricsRegistry.dump`` iterates plain dicts; a concurrent insert
    from the drainer thread can raise ``RuntimeError``.  Polling is
    best-effort telemetry, so retry briefly and degrade to ``{}``.
    """
    for _ in range(3):
        try:
            return registry.dump()
        except RuntimeError:
            continue
    return {}


@dataclass
class Job:
    """One submitted grid: specs, lifecycle state, progress, outcome."""

    job_id: str
    specs: List[JobSpec]
    grid: Dict[str, Any]
    store_path: Path
    status: str = JOB_QUEUED
    #: Total submissions that resolved to this job (1 = never coalesced).
    submissions: int = 1
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    report: Optional[BatchReport] = None
    #: Trace ID minted for the submission that created this job; every
    #: flight event, access log line, and worker record shares it.
    trace_id: Optional[str] = None
    #: Bounded NDJSON lifecycle log next to the job's run store.
    recorder: Optional[FlightRecorder] = field(
        default=None, repr=False, compare=False
    )
    progress: ProgressReporter = field(init=False)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    done_event: threading.Event = field(default_factory=threading.Event)

    def __post_init__(self) -> None:
        self.progress = ProgressReporter(total=len(self.specs))

    def record_event(self, event: str, force: bool = False, **fields: Any) -> None:
        """Best-effort flight-recorder append (no-op without a recorder)."""
        if self.recorder is not None:
            self.recorder.record(event, force=force, **fields)

    @property
    def finished(self) -> bool:
        return self.status in FINISHED_STATES

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe job-state snapshot — the poll payload.

        Safe to call from any thread mid-run: progress goes through the
        reporter's thread-safe :meth:`ProgressReporter.snapshot` and the
        metrics dump degrades gracefully under concurrent writes.
        """
        payload: Dict[str, Any] = {
            "job": self.job_id,
            "status": self.status,
            "trace_id": self.trace_id,
            "cells": len(self.specs),
            "submissions": self.submissions,
            "submitted_at": round(self.submitted_at, 3),
            "started_at": (
                round(self.started_at, 3) if self.started_at else None
            ),
            "finished_at": (
                round(self.finished_at, 3) if self.finished_at else None
            ),
            "store": str(self.store_path),
            "progress": self.progress.snapshot(),
            "metrics": _registry_dump(self.registry),
            "error": self.error,
        }
        if self.report is not None:
            payload["summary"] = self.report.summary()
        return payload

    def result(self) -> Dict[str, Any]:
        """Full result payload: summary plus every run record."""
        payload: Dict[str, Any] = {
            "job": self.job_id,
            "status": self.status,
            "error": self.error,
        }
        if self.report is not None:
            payload["summary"] = self.report.summary()
            payload["records"] = [
                record.to_dict() for record in self.report.records
            ]
        else:
            payload["summary"] = None
            payload["records"] = []
        return payload


class JobQueue:
    """FIFO of grid jobs drained by persistent daemon worker threads.

    ``root`` holds everything the daemon persists: one JSONL run store
    per job under ``root/jobs/`` (each job resumes from its own store,
    so a daemon killed mid-append picks up exactly where it died) and,
    unless an explicit ``cache`` is passed, the shared result cache
    under ``root/cache``.

    ``workers`` is the number of drainer threads (concurrent jobs);
    ``job_workers`` is forwarded to :func:`run_jobs` as the per-job
    process-pool width.  With ``job_workers=1`` cells run serially on
    the drainer thread itself (note: ``SIGALRM`` timeouts need a main
    thread, so per-cell timeouts are only enforced for
    ``job_workers > 1``, where cells run on worker processes).
    """

    def __init__(
        self,
        root: Union[str, Path],
        workers: int = 1,
        job_workers: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        registry: Optional[MetricsRegistry] = None,
        flight_max_events: int = DEFAULT_MAX_EVENTS,
    ):
        self.root = Path(root)
        self.workers = max(1, int(workers))
        self.job_workers = max(1, int(job_workers))
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.registry = registry if registry is not None else MetricsRegistry()
        self.flight_max_events = flight_max_events
        self._jobs: Dict[str, Job] = {}
        self._fifo: Deque[str] = deque()
        self._cond = threading.Condition()
        self._threads: List[threading.Thread] = []
        self._stopping = False
        self._started_at = time.monotonic()
        #: Torn store lines seen across every resumed job (healthz gauge).
        self._store_skipped_lines = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "JobQueue":
        """Spawn the drainer threads (idempotent); returns ``self``."""
        with self._cond:
            missing = self.workers - len(self._threads)
            for index in range(max(0, missing)):
                thread = threading.Thread(
                    target=self._drain,
                    name=f"repro-service-worker-{len(self._threads)}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        return self

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Stop accepting work and join the drainers.

        Queued-but-unstarted jobs stay in their stores' hands: nothing
        is lost, a restarted daemon re-running the same grid resumes
        from the per-job store and the shared cache.
        """
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        deadline = time.monotonic() + timeout_s
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))

    # -- submission and inspection -------------------------------------

    def submit(
        self, grid: Mapping[str, Any], trace_id: Optional[str] = None
    ) -> Tuple[Job, bool]:
        """Enqueue a grid payload; returns ``(job, coalesced)``.

        Never blocks on execution.  Raises ``ValueError`` on a malformed
        grid (unknown keys, empty axes, bad fault/monitor specs).
        Identical grids — same expanded specs, hence same
        :func:`grid_key` — coalesce onto one job whatever their state:
        in-flight submissions share the running job, and resubmitting a
        finished grid returns the completed job without re-running.  A
        job that previously *failed* (infrastructure error, not cell
        failures) is re-enqueued instead.

        ``trace_id`` names the submission (default: the ambient context
        ID, else a freshly minted one).  The job keeps the ID of the
        submission that *created* it; coalesced submissions are recorded
        in the flight log with their own ``submission_trace_id``.
        """
        submission_trace = trace_id or current_trace_id() or new_trace_id()
        specs = grid_from_payload(grid)
        job_id = grid_key(specs)
        with self._cond:
            job = self._jobs.get(job_id)
            if job is not None:
                job.submissions += 1
                if job.status == JOB_FAILED:
                    # Infrastructure failures are retryable.
                    job.status = JOB_QUEUED
                    job.error = None
                    job.done_event = threading.Event()
                    job.progress = ProgressReporter(total=len(job.specs))
                    self._fifo.append(job_id)
                    self._cond.notify()
                    self.registry.counter("service.submissions").inc(
                        kind="retry"
                    )
                    job.record_event(
                        "requeued",
                        submission_trace_id=submission_trace,
                        submissions=job.submissions,
                    )
                else:
                    self.registry.counter("service.submissions").inc(
                        kind="coalesced"
                    )
                    job.record_event(
                        "coalesced",
                        submission_trace_id=submission_trace,
                        submissions=job.submissions,
                        status=job.status,
                    )
                self._set_depth_gauge()
                logger.info(
                    "submission coalesced onto job %s (%d submissions)",
                    job_id[:12],
                    job.submissions,
                    extra={
                        "job": job_id,
                        "trace_id": submission_trace,
                        "coalesced": True,
                    },
                )
                return job, True
            job = Job(
                job_id=job_id,
                specs=specs,
                grid={key: value for key, value in grid.items()},
                store_path=self.root / "jobs" / f"{job_id}.jsonl",
                trace_id=submission_trace,
            )
            job.recorder = FlightRecorder(
                flight_path_for(job.store_path),
                trace_id=submission_trace,
                max_events=self.flight_max_events,
            )
            job.record_event("submitted", job=job_id, cells=len(job.specs))
            self._jobs[job_id] = job
            self._fifo.append(job_id)
            self._cond.notify()
            self.registry.counter("service.submissions").inc(kind="new")
            self._set_depth_gauge()
            logger.info(
                "job %s submitted (%d cells)",
                job_id[:12],
                len(job.specs),
                extra={
                    "job": job_id,
                    "trace_id": submission_trace,
                    "cells": len(job.specs),
                    "coalesced": False,
                },
            )
            return job, False

    def get(self, job_id: str) -> Optional[Job]:
        with self._cond:
            return self._jobs.get(job_id)

    def status(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Poll payload for one job, or ``None`` for an unknown hash."""
        job = self.get(job_id)
        return job.snapshot() if job is not None else None

    def result(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Result payload once finished; ``None`` if unknown or running."""
        job = self.get(job_id)
        if job is None or not job.finished:
            return None
        return job.result()

    def events(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The job's flight-recorder payload, or ``None`` for unknown jobs.

        Served at ``GET /jobs/<hash>/events``: the recorded lifecycle
        chain (submitted → … → finalized), the job's trace ID, and how
        many events the bound dropped.
        """
        job = self.get(job_id)
        if job is None:
            return None
        path = (
            job.recorder.path
            if job.recorder is not None
            else flight_path_for(job.store_path)
        )
        return {
            "job": job.job_id,
            "trace_id": job.trace_id,
            "status": job.status,
            "events": load_flight_events(path),
            "dropped": job.recorder.dropped if job.recorder else 0,
            "path": str(path),
        }

    def wait(self, job_id: str, timeout_s: Optional[float] = None) -> bool:
        """Block until the job finishes; ``True`` iff it did in time."""
        job = self.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job.done_event.wait(timeout_s)

    def stats(self) -> Dict[str, Any]:
        """Service-level stats: queue depth, liveness, dedupe, cache."""
        with self._cond:
            jobs = list(self._jobs.values())
            depth = len(self._fifo)
        by_status = {state: 0 for state in JOB_STATES}
        for job in jobs:
            by_status[job.status] += 1
        submissions = sum(job.submissions for job in jobs)
        per_job = {
            job.job_id: {
                "status": job.status,
                "submissions": job.submissions,
                "cells": len(job.specs),
                "progress": job.progress.snapshot(),
            }
            for job in jobs
        }
        payload: Dict[str, Any] = {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "queue_depth": depth,
            "workers": {
                "configured": self.workers,
                "alive": sum(
                    1 for thread in self._threads if thread.is_alive()
                ),
            },
            "job_workers": self.job_workers,
            "jobs": {"total": len(jobs), **by_status},
            "submissions": {
                "total": submissions,
                "coalesced": submissions - len(jobs),
            },
            "cache": self.cache.stats() if self.cache is not None else None,
            "per_job": per_job,
            "store_skipped_lines": self._store_skipped_lines,
            "metrics": _registry_dump(self.registry),
        }
        return payload

    def healthz(self) -> Dict[str, Any]:
        """Small liveness payload: is the pool actually able to work?

        ``store_skipped_lines`` counts torn JSONL lines skipped while
        resuming job stores — nonzero means some store was corrupted by
        a crashed writer, visible here without reading any logs.
        """
        alive = sum(1 for thread in self._threads if thread.is_alive())
        with self._cond:
            depth = len(self._fifo)
        return {
            "ok": alive > 0 and not self._stopping,
            "workers_alive": alive,
            "queue_depth": depth,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "store_skipped_lines": self._store_skipped_lines,
        }

    # -- drainer -------------------------------------------------------

    def _set_depth_gauge(self) -> None:
        self.registry.gauge("service.queue_depth").set(len(self._fifo))

    def _next_job(self) -> Optional[Job]:
        with self._cond:
            while not self._fifo and not self._stopping:
                self._cond.wait(0.1)
            if not self._fifo:
                return None
            job = self._jobs[self._fifo.popleft()]
            job.status = JOB_RUNNING
            job.started_at = time.time()
            self._set_depth_gauge()
        queue_wait = max(0.0, job.started_at - job.submitted_at)
        self.registry.histogram("service.queue_wait_seconds").observe(
            queue_wait
        )
        job.record_event("dequeued", queue_wait_s=round(queue_wait, 4))
        return job

    def _heartbeat(self) -> None:
        """Stamp this drainer thread's liveness gauge (wall-clock time)."""
        self.registry.gauge("service.worker_heartbeat").set(
            round(time.time(), 3), worker=threading.current_thread().name
        )

    def _finalize(self, job: Job, report: Optional[BatchReport]) -> None:
        """Post-run bookkeeping: metrics, flight record, structured log."""
        assert job.finished_at is not None
        elapsed = (
            job.finished_at - job.started_at
            if job.started_at is not None
            else 0.0
        )
        self.registry.counter("service.jobs").inc(status=job.status)
        if job.started_at is not None:
            self.registry.histogram("service.job_seconds").observe(
                elapsed, status=job.status
            )
        final_fields: Dict[str, Any] = {
            "status": job.status,
            "elapsed_s": round(elapsed, 4),
        }
        if report is not None:
            for source, count in (
                ("executed", report.executed),
                ("cache", report.cached),
                ("resume", report.resumed),
            ):
                if count:
                    self.registry.counter("service.cells").inc(
                        count, source=source
                    )
            if report.failed:
                self.registry.counter("service.cells_failed").inc(
                    report.failed
                )
            if report.store_skipped_lines:
                self._store_skipped_lines += report.store_skipped_lines
            self.registry.gauge("service.store_skipped_lines").set(
                self._store_skipped_lines
            )
            final_fields.update(
                executed=report.executed,
                cached=report.cached,
                resumed=report.resumed,
                failed=report.failed,
            )
        if self.cache is not None:
            self.registry.gauge("service.cache_hit_rate").set(
                self.cache.stats()["hit_rate"]
            )
        if job.error is not None:
            final_fields["error"] = job.error
        if job.recorder is not None:
            final_fields["events_dropped"] = job.recorder.dropped
        job.record_event("finalized", force=True, **final_fields)
        logger.info(
            "job %s %s in %.2fs",
            job.job_id[:12],
            job.status,
            elapsed,
            extra={"job": job.job_id, "status": job.status, **final_fields},
        )

    def _drain(self) -> None:
        self._heartbeat()
        while True:
            job = self._next_job()
            if job is None:
                return
            # The whole batch runs under the job's trace ID, so queue
            # logs, run_jobs stamping, and worker-process logs all
            # correlate with the submission that created the job.
            with trace_context(job.trace_id):
                try:
                    report = run_jobs(
                        job.specs,
                        workers=self.job_workers,
                        cache=self.cache,
                        store=job.store_path,
                        # Resuming from its own store is what lets a daemon
                        # that died mid-append finish its grid on restart.
                        resume=job.store_path,
                        timeout=self.timeout,
                        retries=self.retries,
                        progress=job.progress,
                        registry=job.registry,
                        trace_id=job.trace_id,
                        on_event=job.record_event,
                    )
                except Exception as exc:  # infrastructure error, not a cell
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.status = JOB_FAILED
                    report = None
                else:
                    job.report = report
                    job.status = JOB_DONE
                job.finished_at = time.time()
                self._finalize(job, report)
            self._heartbeat()
            job.done_event.set()
