"""Stdlib HTTP front door for the job queue (no new runtime deps).

A thin router over :class:`repro.service.queue.JobQueue` — every
endpoint parses the path, calls one queue method, and serialises the
answer as JSON.  All policy (dedupe, coalescing, retries, persistence)
lives in the queue; the server adds nothing but transport.

Endpoints
---------
``POST /jobs``
    Submit a grid payload (the ``batch --spec`` schema).  Returns the
    job-state snapshot plus ``coalesced``; ``202`` for a newly enqueued
    job, ``200`` when the submission coalesced onto an existing one.
``GET /jobs/<hash>``
    Poll a job: lifecycle status, live progress snapshot, obs registry
    dump.  ``404`` for an unknown hash.
``GET /jobs/<hash>/result``
    Fetch the finished job's summary and run records.  ``409`` while the
    job is still queued/running.
``GET /healthz``
    Liveness: worker threads alive, queue depth.
``GET /stats``
    Queue depth, per-state job counts, dedupe counters, cache hit rate,
    per-job progress, service metrics dump.
"""

from __future__ import annotations

import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from .queue import JobQueue

#: Submission bodies larger than this are rejected outright (a grid
#: spec is a few hundred bytes; anything megabyte-sized is a mistake).
MAX_BODY_BYTES = 1 << 20


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`JobQueue`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        queue: JobQueue,
        quiet: bool = True,
    ):
        super().__init__(address, ServiceHandler)
        self.queue = queue
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the queue; every response is one JSON object."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # Typed accessor: BaseHTTPRequestHandler exposes the server untyped.
    @property
    def queue(self) -> JobQueue:
        return self.server.queue  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, __code: int, __message: str, **extra: Any) -> None:
        self._reply(__code, {"error": __message, **extra})

    # -- GET -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        path = urlsplit(self.path).path.rstrip("/")
        if path == "/healthz":
            payload = self.queue.healthz()
            self._reply(200 if payload["ok"] else 503, payload)
            return
        if path == "/stats":
            self._reply(200, self.queue.stats())
            return
        job_id, want_result = self._parse_job_path(path)
        if job_id is None:
            self._error(404, f"unknown endpoint {path!r}")
            return
        snapshot = self.queue.status(job_id)
        if snapshot is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        if not want_result:
            self._reply(200, snapshot)
            return
        result = self.queue.result(job_id)
        if result is None:
            self._error(
                409,
                f"job {job_id!r} is not finished",
                status=snapshot["status"],
                progress=snapshot["progress"],
            )
            return
        self._reply(200, result)

    @staticmethod
    def _parse_job_path(path: str) -> Tuple[Optional[str], bool]:
        """``/jobs/<hash>`` or ``/jobs/<hash>/result`` → (hash, result?)."""
        parts = [part for part in path.split("/") if part]
        if len(parts) == 2 and parts[0] == "jobs":
            return parts[1], False
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            return parts[1], True
        return None, False

    # -- POST ----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        path = urlsplit(self.path).path.rstrip("/")
        if path != "/jobs":
            self._error(404, f"unknown endpoint {path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._error(400, "bad Content-Length header")
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error(400, f"body must be 1..{MAX_BODY_BYTES} bytes")
            return
        body = self.rfile.read(length)
        try:
            grid = json.loads(body)
        except ValueError as error:
            self._error(400, f"body is not valid JSON: {error}")
            return
        if not isinstance(grid, dict):
            self._error(400, "grid payload must be a JSON object")
            return
        try:
            job, coalesced = self.queue.submit(grid)
        except ValueError as error:
            self._error(400, str(error))
            return
        payload = job.snapshot()
        payload["coalesced"] = coalesced
        self._reply(200 if coalesced else 202, payload)


def build_server(
    queue: JobQueue,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ServiceServer:
    """Bind a server (``port=0`` picks an ephemeral port) — not serving yet.

    The caller owns the serve loop, which keeps this usable both from
    the CLI daemon (``serve_forever`` on the main thread) and from tests
    (``serve_forever`` on a background thread, ``shutdown()`` to stop).
    """
    return ServiceServer((host, port), queue, quiet=quiet)


def serve_forever(server: ServiceServer) -> None:
    """Run the accept loop until ``KeyboardInterrupt``; then drain."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
        server.queue.shutdown()
