"""Stdlib HTTP front door for the job queue (no new runtime deps).

A thin router over :class:`repro.service.queue.JobQueue` — every
endpoint parses the path, calls one queue method, and serialises the
answer as JSON.  All policy (dedupe, coalescing, retries, persistence)
lives in the queue; the server adds nothing but transport plus
telemetry: every request is stamped with a trace ID (honouring an
``X-Trace-Id`` request header, minting one otherwise, echoing it back
in the response), produces exactly one structured access-log record,
and increments RED metrics (request counter + latency histogram per
method/endpoint/status) on the queue's registry.

Endpoints
---------
``POST /jobs``
    Submit a grid payload (the ``batch --spec`` schema).  Returns the
    job-state snapshot plus ``coalesced``; ``202`` for a newly enqueued
    job, ``200`` when the submission coalesced onto an existing one.
``GET /jobs/<hash>``
    Poll a job: lifecycle status, live progress snapshot, obs registry
    dump.  ``404`` for an unknown hash.
``GET /jobs/<hash>/result``
    Fetch the finished job's summary and run records.  ``409`` while the
    job is still queued/running.
``GET /jobs/<hash>/events``
    The job's flight-recorder payload: the lifecycle event chain
    (submitted → … → finalized), its trace ID, and the drop count.
``GET /healthz``
    Liveness: worker threads alive, queue depth, torn-store-line count.
``GET /stats``
    Queue depth, per-state job counts, dedupe counters, cache hit rate,
    per-job progress, service metrics dump.
``GET /metrics``
    The service registry in Prometheus text exposition format
    (version 0.0.4), deterministically ordered.
"""

from __future__ import annotations

import json
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from repro.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    log_access,
    new_trace_id,
    render_prometheus,
    reset_trace_id,
    set_trace_id,
)
from repro.telemetry.logs import access_logger

from .queue import JobQueue

#: Submission bodies larger than this are rejected outright (a grid
#: spec is a few hundred bytes; anything megabyte-sized is a mistake).
MAX_BODY_BYTES = 1 << 20

#: HELP strings for the service metric families served at ``/metrics``.
METRIC_HELP = {
    "service.http_requests": "HTTP requests served, by method/endpoint/status.",
    "service.http_request_seconds": "HTTP request handling latency.",
    "service.queue_wait_seconds": "Time jobs spent queued before a drainer picked them up.",
    "service.job_seconds": "Wall-clock job duration, by final status.",
    "service.jobs": "Jobs finished, by final status.",
    "service.submissions": "Grid submissions, by dedupe outcome (new/coalesced/retry).",
    "service.cells": "Cells resolved across all jobs, by source (executed/cache/resume).",
    "service.cells_failed": "Cells that exhausted retries across all jobs.",
    "service.queue_depth": "Jobs currently queued (not yet running).",
    "service.cache_hit_rate": "Shared result-cache hit rate since daemon start.",
    "service.store_skipped_lines": "Torn JSONL lines skipped while resuming job stores.",
    "service.worker_heartbeat": "Unix time of each drainer thread's last liveness stamp.",
}


def normalize_endpoint(path: str) -> str:
    """Collapse a request path to a low-cardinality metric label.

    Job hashes are replaced with ``{id}`` so the label set stays bounded
    however many jobs the daemon has seen; unknown paths collapse to
    ``other`` so probes cannot mint unbounded label values.
    """
    parts = [part for part in path.split("/") if part]
    if not parts:
        return "/"
    if parts[0] == "jobs":
        if len(parts) == 1:
            return "/jobs"
        if len(parts) == 2:
            return "/jobs/{id}"
        if len(parts) == 3 and parts[2] in ("result", "events"):
            return "/jobs/{id}/" + parts[2]
        return "other"
    if len(parts) == 1 and parts[0] in ("healthz", "stats", "metrics"):
        return "/" + parts[0]
    return "other"


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`JobQueue`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        queue: JobQueue,
        quiet: bool = True,
    ):
        super().__init__(address, ServiceHandler)
        self.queue = queue
        #: Retained for compatibility: access records always go to the
        #: ``repro.service.access`` logger; ``quiet`` only controls
        #: whether the stdlib fallback messages also reach stderr.
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the queue; every response is one JSON object."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # Typed accessor: BaseHTTPRequestHandler exposes the server untyped.
    @property
    def queue(self) -> JobQueue:
        return self.server.queue  # type: ignore[attr-defined]

    # -- telemetry -------------------------------------------------------

    def _begin(self) -> None:
        """Stamp the request with a start time and a trace ID.

        Honours an ``X-Trace-Id`` request header (so a client can carry
        its own correlation token through the daemon and into worker
        logs); mints a fresh ID otherwise.  The ID is installed as the
        ambient context trace for everything this handler thread does —
        including ``queue.submit``, which adopts it for the job.
        """
        self._started_at = time.monotonic()
        self._trace_id = (
            self.headers.get("X-Trace-Id") or new_trace_id()
        ).strip()[:64]
        self._trace_token = set_trace_id(self._trace_id)

    def _end(self) -> None:
        token = getattr(self, "_trace_token", None)
        if token is not None:
            reset_trace_id(token)
            self._trace_token = None

    def log_request(self, code: Any = "-", size: Any = "-") -> None:
        """Emit exactly one structured access record per response.

        ``send_response`` calls this once per reply (including replies
        the stdlib generates itself, e.g. ``501`` for an unknown
        method), which makes it the single choke point for access logs
        and RED metrics — the default implementation's ``log_message``
        stderr write is replaced wholesale.
        """
        status = int(code) if str(code).isdigit() else 0
        started = getattr(self, "_started_at", None)
        duration_ms = (
            round((time.monotonic() - started) * 1000.0, 3)
            if started is not None
            else None
        )
        raw_path = urlsplit(getattr(self, "path", "") or "").path
        endpoint = normalize_endpoint(raw_path)
        method = getattr(self, "command", None) or "-"
        registry = self.queue.registry
        registry.counter("service.http_requests").inc(
            method=method, endpoint=endpoint, status=str(status)
        )
        if duration_ms is not None:
            registry.histogram("service.http_request_seconds").observe(
                duration_ms / 1000.0, method=method, endpoint=endpoint
            )
        log_access(
            method,
            raw_path,
            status,
            duration_ms if duration_ms is not None else -1.0,
            trace_id=getattr(self, "_trace_id", None),
            endpoint=endpoint,
        )

    def log_error(self, format: str, *args: Any) -> None:
        access_logger().error(format % args if args else format)

    def log_message(self, format: str, *args: Any) -> None:
        # Anything the stdlib would print to stderr (we already emit the
        # access record in log_request) goes to the logger instead.
        access_logger().info(format % args if args else format)
        if not getattr(self.server, "quiet", True):
            sys.stderr.write((format % args if args else format) + "\n")

    # -- responses -------------------------------------------------------

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._reply_bytes(status, body, "application/json")

    def _reply_bytes(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header("X-Trace-Id", trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, __code: int, __message: str, **extra: Any) -> None:
        self._reply(__code, {"error": __message, **extra})

    def _render_metrics(self) -> str:
        """Prometheus page; retried because drainers write concurrently."""
        for _ in range(3):
            try:
                return render_prometheus(
                    self.queue.registry, help_texts=METRIC_HELP
                )
            except RuntimeError:
                continue
        return ""

    # -- GET -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._begin()
        try:
            self._route_get()
        finally:
            self._end()

    def _route_get(self) -> None:
        path = urlsplit(self.path).path.rstrip("/")
        if path == "/healthz":
            payload = self.queue.healthz()
            self._reply(200 if payload["ok"] else 503, payload)
            return
        if path == "/stats":
            self._reply(200, self.queue.stats())
            return
        if path == "/metrics":
            self._reply_bytes(
                200,
                self._render_metrics().encode("utf-8"),
                PROMETHEUS_CONTENT_TYPE,
            )
            return
        job_id, subresource = self._parse_job_path(path)
        if job_id is None:
            self._error(404, f"unknown endpoint {path!r}")
            return
        if subresource == "events":
            events = self.queue.events(job_id)
            if events is None:
                self._error(404, f"unknown job {job_id!r}")
                return
            self._reply(200, events)
            return
        snapshot = self.queue.status(job_id)
        if snapshot is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        if subresource is None:
            self._reply(200, snapshot)
            return
        result = self.queue.result(job_id)
        if result is None:
            self._error(
                409,
                f"job {job_id!r} is not finished",
                status=snapshot["status"],
                progress=snapshot["progress"],
            )
            return
        self._reply(200, result)

    @staticmethod
    def _parse_job_path(path: str) -> Tuple[Optional[str], Optional[str]]:
        """``/jobs/<hash>[/result|/events]`` → ``(hash, subresource)``."""
        parts = [part for part in path.split("/") if part]
        if len(parts) == 2 and parts[0] == "jobs":
            return parts[1], None
        if (
            len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] in ("result", "events")
        ):
            return parts[1], parts[2]
        return None, None

    # -- POST ----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        self._begin()
        try:
            self._route_post()
        finally:
            self._end()

    def _route_post(self) -> None:
        path = urlsplit(self.path).path.rstrip("/")
        if path != "/jobs":
            self._error(404, f"unknown endpoint {path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._error(400, "bad Content-Length header")
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error(400, f"body must be 1..{MAX_BODY_BYTES} bytes")
            return
        body = self.rfile.read(length)
        try:
            grid = json.loads(body)
        except ValueError as error:
            self._error(400, f"body is not valid JSON: {error}")
            return
        if not isinstance(grid, dict):
            self._error(400, "grid payload must be a JSON object")
            return
        try:
            job, coalesced = self.queue.submit(
                grid, trace_id=getattr(self, "_trace_id", None)
            )
        except ValueError as error:
            self._error(400, str(error))
            return
        payload = job.snapshot()
        payload["coalesced"] = coalesced
        self._reply(200 if coalesced else 202, payload)


def build_server(
    queue: JobQueue,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ServiceServer:
    """Bind a server (``port=0`` picks an ephemeral port) — not serving yet.

    The caller owns the serve loop, which keeps this usable both from
    the CLI daemon (``serve_forever`` on the main thread) and from tests
    (``serve_forever`` on a background thread, ``shutdown()`` to stop).
    """
    return ServiceServer((host, port), queue, quiet=quiet)


def serve_forever(server: ServiceServer) -> None:
    """Run the accept loop until ``KeyboardInterrupt``; then drain."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
        server.queue.shutdown()
