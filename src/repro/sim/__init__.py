"""Sleeping-model synchronous CONGEST simulator.

Public surface:

* :class:`~repro.sim.engine.SleepingSimulator` / :func:`~repro.sim.engine.simulate`
  — run protocols over a graph.
* :class:`~repro.sim.node.Awake`, :class:`~repro.sim.node.NodeContext`
  — the protocol-side API.
* :class:`~repro.sim.metrics.Metrics` — awake/round/message accounting.
* :class:`~repro.sim.tracing.EventTrace`, :class:`~repro.sim.tracing.KnowledgeTracker`
  — optional observers.
* :mod:`repro.sim.congest` — CONGEST message-size policy.
* :mod:`repro.sim.array_engine` — substrate of the vectorized numpy
  backend (``engine="array"``): CSR graph view, block-level metric
  accounting, and the engine selector :func:`~repro.sim.array_engine.
  resolve_engine`.
* :mod:`repro.sim.transport` — pluggable channel models and seeded fault
  injection (:class:`~repro.sim.transport.PerfectChannel`,
  :class:`~repro.sim.transport.DropChannel`, ...).
"""

from .array_engine import ENGINES, resolve_engine
from .congest import CongestPolicy, congest_budget_bits, payload_bits
from .engine import SimulationResult, SleepingSimulator, simulate
from .errors import (
    CongestViolation,
    NodeCrashed,
    ProtocolViolation,
    SimulationError,
    SimulationLimitExceeded,
    UnsupportedFeatureError,
)
from .metrics import Metrics, NodeMetrics
from .node import Awake, Inbox, NodeContext, Protocol, ProtocolFactory
from .replay import LoadedRun, load_trace, save_trace
from .tracing import EventTrace, KnowledgeTracker, TraceEvent
from .transport import (
    ChannelModel,
    CompositeChannel,
    CrashSchedule,
    DelayChannel,
    DropChannel,
    DuplicateChannel,
    Outcome,
    PerfectChannel,
    parse_channel_spec,
    validate_channel_spec,
)

__all__ = [
    "Awake",
    "ChannelModel",
    "CompositeChannel",
    "CongestPolicy",
    "CongestViolation",
    "CrashSchedule",
    "DelayChannel",
    "DropChannel",
    "DuplicateChannel",
    "ENGINES",
    "EventTrace",
    "Inbox",
    "KnowledgeTracker",
    "LoadedRun",
    "Metrics",
    "NodeContext",
    "NodeCrashed",
    "NodeMetrics",
    "Outcome",
    "PerfectChannel",
    "Protocol",
    "ProtocolFactory",
    "ProtocolViolation",
    "SimulationError",
    "SimulationLimitExceeded",
    "SimulationResult",
    "SleepingSimulator",
    "TraceEvent",
    "UnsupportedFeatureError",
    "congest_budget_bits",
    "payload_bits",
    "load_trace",
    "resolve_engine",
    "parse_channel_spec",
    "save_trace",
    "simulate",
    "validate_channel_spec",
]
