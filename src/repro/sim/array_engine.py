"""Vectorized array backend for the sleeping-model simulator.

The coroutine engine (:mod:`repro.sim.engine`) advances one generator per
node and pays Python-interpreter cost per awake event and per message.
This module provides the *substrate* for a second backend that represents
one Transmission-Schedule **block** (2n + 2 rounds, see
:mod:`repro.core.schedule`) as a handful of numpy operations over all
nodes at once:

* the graph becomes a CSR edge structure (:class:`ArrayGraph`) so message
  exchange is a gather/scatter over a precomputed directed-edge array;
* fragment labels, levels, and parent pointers live in int arrays;
* awake rounds, message counts, and CONGEST bit totals accumulate as
  vector reductions into :class:`BlockAccountant` and are folded into the
  exact same :class:`~repro.sim.metrics.Metrics` shape at the end.

The algorithm-level kernels (MOE selection, convergecast minima, merge
re-rooting) live in :mod:`repro.core.array_ops`, which drives the
accountant block by block; this module knows about blocks, rounds, bits,
and budgets, but not about MSTs.

The backend is deliberately *narrow*: it supports exactly the
perfect-channel, observer-free configuration (the engine fast path) and
raises :class:`~repro.sim.errors.UnsupportedFeatureError` for anything
else — see :func:`validate_array_sim_kwargs`.  Within that matrix it is
held **byte-identical** to the coroutine engine: same per-node
:class:`~repro.sim.metrics.NodeMetrics`, same summary, same
``RunRecord`` fingerprints (``tests/sim/test_array_engine.py`` and the
hypothesis suite in ``tests/core/test_array_equivalence.py`` are the
oracle).

numpy is an optional dependency of this module alone: importing it does
not require numpy; *using* it does (:func:`require_numpy`).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from .congest import DEFAULT_CONGEST_FACTOR, congest_budget_bits
from .errors import (
    CongestViolation,
    SimulationLimitExceeded,
    UnsupportedFeatureError,
)
from .metrics import Metrics, NodeMetrics

try:  # pragma: no cover - exercised implicitly by every array-engine test
    import numpy as np
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None

#: Simulation backends selectable through ``run_*_mst(..., engine=...)``.
ENGINES = ("coroutine", "array")

#: Scalar bit cost of ``None``/``bool`` payload fields (1 + tag overhead).
NONE_BITS = 3

#: Tuple framing overhead, matching :data:`repro.sim.congest.FIELD_OVERHEAD_BITS`.
TUPLE_OVERHEAD = 2


def resolve_engine(engine: Optional[str]) -> str:
    """Normalise an ``engine=`` knob value; ``None`` means the default."""
    if engine is None:
        return "coroutine"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


def require_numpy() -> Any:
    """Return the numpy module or raise a clear unsupported-feature error."""
    if np is None:  # pragma: no cover - the CI image always has numpy
        raise UnsupportedFeatureError(
            "running without numpy", "the array engine is vectorized"
        )
    return np


#: ``SleepingSimulator`` keyword arguments the array engine rejects, with
#: the human-readable feature name used in the error message.  Everything
#: here routes the coroutine engine off its fast path, which is exactly
#: the configuration class the array engine does not reproduce.
_UNSUPPORTED_KWARGS = {
    "trace": "event tracing",
    "max_trace_events": "event tracing",
    "observe": "observability spans",
    "obs_registry": "observability spans",
    "monitors": "invariant monitors",
    "track_knowledge": "knowledge tracking",
}


def validate_array_sim_kwargs(sim_kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Check ``sim_kwargs`` against the array engine's feature matrix.

    Returns the supported subset as a flat dict with defaults applied:
    ``congest_universe``, ``strict_congest``, ``congest_factor``,
    ``max_rounds``, ``max_awake_events``.  Raises
    :class:`UnsupportedFeatureError` for observers, monitors, knowledge
    tracking, or any non-perfect channel — the features that would make
    the vectorized execution silently diverge from the coroutine engine.
    """
    kwargs = dict(sim_kwargs)
    for key, feature in _UNSUPPORTED_KWARGS.items():
        value = kwargs.pop(key, None)
        if value:
            raise UnsupportedFeatureError(feature)
    channel = kwargs.pop("channel", None)
    if channel is not None and not getattr(channel, "is_perfect", False):
        raise UnsupportedFeatureError(
            "fault-injecting channels",
            f"got {type(channel).__name__}",
        )
    supported = {
        "congest_universe": kwargs.pop("congest_universe", None),
        "strict_congest": kwargs.pop("strict_congest", True),
        "congest_factor": kwargs.pop("congest_factor", None),
        "max_rounds": kwargs.pop("max_rounds", None),
        "max_awake_events": kwargs.pop("max_awake_events", 50_000_000),
    }
    if kwargs:
        unknown = ", ".join(sorted(kwargs))
        raise UnsupportedFeatureError(f"simulator options ({unknown})")
    return supported


class ArrayGraph:
    """CSR view of a weighted graph for vectorized message exchange.

    Nodes are re-indexed ``0..n-1`` in sorted-node-ID order (matching the
    coroutine engine's setup order, so per-node metrics come out in the
    same insertion order).  Directed edges are laid out per source node in
    ascending port order, so ``edge e``'s port at its source is
    ``e - indptr[src[e]]`` only when ports are contiguous — the explicit
    ``port`` array avoids relying on that.
    """

    def __init__(self, graph: Any) -> None:
        require_numpy()
        ids = sorted(graph.node_ids)
        if not ids:
            raise ValueError("graph has no nodes")
        self.ids = np.asarray(ids, dtype=np.int64)
        self.n = len(ids)
        self.max_id = int(self.ids[-1])
        index_of = {node_id: idx for idx, node_id in enumerate(ids)}

        ports_by_node = [dict(graph.ports_of(node_id)) for node_id in ids]
        degrees = [len(ports) for ports in ports_by_node]
        m2 = sum(degrees)  # number of *directed* edges
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        src = np.empty(m2, dtype=np.int64)
        dst = np.empty(m2, dtype=np.int64)
        weight = np.empty(m2, dtype=np.int64)
        port = np.empty(m2, dtype=np.int64)
        dst_port = np.empty(m2, dtype=np.int64)
        edge = 0
        max_weight = 1
        for idx, ports in enumerate(ports_by_node):
            for p in sorted(ports):
                nbr, nbr_port, w = ports[p]
                src[edge] = idx
                dst[edge] = index_of[nbr]
                weight[edge] = int(w)
                port[edge] = p
                dst_port[edge] = nbr_port
                max_weight = max(max_weight, abs(int(w)))
                edge += 1
        self.indptr = indptr
        self.src = src
        self.dst = dst
        self.weight = weight
        self.port = port
        self.deg = np.diff(indptr)
        self.max_weight = max_weight

        # rev[e] = index of the reverse directed edge (dst -> src on the
        # destination's port dst_port[e]).
        port_pos: List[Dict[int, int]] = []
        for idx, ports in enumerate(ports_by_node):
            port_pos.append(
                {p: int(indptr[idx]) + k for k, p in enumerate(sorted(ports))}
            )
        rev = np.empty(m2, dtype=np.int64)
        for e in range(m2):
            rev[e] = port_pos[int(dst[e])][int(dst_port[e])]
        self.rev = rev

    @property
    def m_directed(self) -> int:
        return int(self.src.shape[0])


def int_field_bits(values: Any) -> Any:
    """Vectorized :func:`repro.sim.congest._int_field_bits`.

    ``bit_length(v) + 3`` for ``v != 0`` and ``4`` for ``v == 0``, exactly
    matching the scalar sizer the coroutine engine applies per message.
    The bit length comes from the ``frexp`` exponent, exact for all
    magnitudes below 2**53 (node IDs and weights are far below).
    """
    v = np.abs(np.asarray(values, dtype=np.int64))
    _, exponent = np.frexp(v.astype(np.float64))
    return np.where(v != 0, exponent.astype(np.int64) + 3, 4)


def scalar_payload_bits(values: Any, nothing: Any) -> Any:
    """Bits of a scalar payload that is ``None`` at ``nothing`` positions."""
    return np.where(nothing, NONE_BITS, int_field_bits(values))


class BlockAccountant:
    """Per-node metric arrays plus the CONGEST budget, one run's worth.

    The algorithm kernels call the ``charge_*`` helpers once per block;
    every helper takes *arrays over all nodes* (or all directed edges) and
    updates awake counts, last-awake rounds, message counters, and bit
    totals with vector reductions.  :meth:`finalize` folds the arrays into
    the coroutine engine's :class:`~repro.sim.metrics.Metrics` shape.
    """

    def __init__(
        self,
        graph: ArrayGraph,
        *,
        congest_universe: Optional[int] = None,
        strict_congest: bool = True,
        congest_factor: Optional[int] = None,
        max_rounds: Optional[int] = None,
        max_awake_events: int = 50_000_000,
    ) -> None:
        require_numpy()
        self.graph = graph
        n = graph.n
        self.awake = np.zeros(n, dtype=np.int64)
        self.msgs_sent = np.zeros(n, dtype=np.int64)
        self.msgs_received = np.zeros(n, dtype=np.int64)
        self.bits_sent = np.zeros(n, dtype=np.int64)
        self.bits_received = np.zeros(n, dtype=np.int64)
        self.last_awake = np.zeros(n, dtype=np.int64)
        self.max_message_bits = 0
        self.congest_violations = 0
        universe = congest_universe or max(
            graph.n, graph.max_id, graph.max_weight
        )
        factor = (
            DEFAULT_CONGEST_FACTOR if congest_factor is None else congest_factor
        )
        self.budget = congest_budget_bits(universe, factor)
        self.strict_congest = strict_congest
        self.max_rounds = max_rounds
        self.max_awake_events = max_awake_events

    # ------------------------------------------------------------------
    # Awake accounting
    # ------------------------------------------------------------------

    def charge_awake(self, mask: Any, round_numbers: Any) -> None:
        """Mark ``mask`` nodes awake at the given per-node round numbers.

        ``round_numbers`` may be a scalar (same round for every node, as
        in Side-Send-Receive) or an array.  Rounds are charged in block
        order, so the last charge per node is its latest awake round.
        """
        if mask is None:
            self.awake += 1
            self.last_awake[:] = round_numbers
            return
        self.awake[mask] += 1
        if np.isscalar(round_numbers):
            self.last_awake[mask] = round_numbers
        else:
            self.last_awake[mask] = round_numbers[mask]

    # ------------------------------------------------------------------
    # Message accounting (all delivered: every receiver below is awake in
    # the sending round by the Transmission-Schedule invariants, so the
    # sleeping-loss branch of the coroutine engine can never fire here).
    # ------------------------------------------------------------------

    def _note_bits(
        self, payload_bits: Any, senders: Any, sender_mask: Any = None
    ) -> None:
        """Fold a block's per-message payload sizes into max/violations.

        ``payload_bits`` and ``senders`` (node indices) are aligned,
        one entry per message; ``sender_mask`` optionally selects a
        subset of both.
        """
        if sender_mask is not None:
            if not np.any(sender_mask):
                return
            payload_bits = payload_bits[sender_mask]
            senders = senders[sender_mask]
        if payload_bits.size == 0:
            return
        block_max = int(payload_bits.max())
        if block_max > self.max_message_bits:
            self.max_message_bits = block_max
        if block_max > self.budget:
            over = payload_bits > self.budget
            if self.strict_congest:
                first = int(np.nonzero(over)[0][0])
                raise CongestViolation(
                    int(self.graph.ids[senders[first]]),
                    -1,
                    int(payload_bits[first]),
                    self.budget,
                )
            self.congest_violations += int(np.count_nonzero(over))

    def charge_side_exchange(self, payload_bits_per_node: Any) -> None:
        """All nodes send one message per port; all are delivered.

        ``payload_bits_per_node[v]`` is the size of the (uniform) payload
        node ``v`` puts on every port this block.
        """
        g = self.graph
        self.msgs_sent += g.deg
        self.msgs_received += g.deg
        self.bits_sent += g.deg * payload_bits_per_node
        self.bits_received += np.bincount(
            g.dst, weights=payload_bits_per_node[g.src], minlength=g.n
        ).astype(np.int64)
        # One message per directed edge; a payload sent on deg ports is
        # deg messages for violation counting.
        self._note_bits(payload_bits_per_node[g.src], g.src)

    def charge_up_messages(
        self, sender_mask: Any, parent: Any, payload_bits_per_node: Any
    ) -> None:
        """Each ``sender_mask`` node sends one message to its parent."""
        if not np.any(sender_mask):
            return
        self.msgs_sent[sender_mask] += 1
        self.bits_sent[sender_mask] += payload_bits_per_node[sender_mask]
        parents = parent[sender_mask]
        np.add.at(self.msgs_received, parents, 1)
        np.add.at(
            self.bits_received, parents, payload_bits_per_node[sender_mask]
        )
        self._note_bits(
            payload_bits_per_node,
            np.arange(self.graph.n, dtype=np.int64),
            sender_mask,
        )

    def charge_down_messages(
        self,
        sender_mask: Any,
        child_count: Any,
        receiver_mask: Any,
        payload_bits_per_node: Any,
        receiver_bits: Any = None,
    ) -> None:
        """Senders fan one payload out to all their children.

        ``payload_bits_per_node`` is indexed by sender for the bits sent.
        Each receiver hears its own parent's payload; in a fragment
        broadcast that equals its own fragment's payload, so the same
        array serves both sides — pass ``receiver_bits`` (indexed by
        receiver) when the payload varies per sender (the merge down
        pass).
        """
        if np.any(sender_mask):
            fanout = child_count[sender_mask]
            self.msgs_sent[sender_mask] += fanout
            self.bits_sent[sender_mask] += (
                fanout * payload_bits_per_node[sender_mask]
            )
            block_max = int(payload_bits_per_node[sender_mask].max())
            if block_max > self.max_message_bits:
                self.max_message_bits = block_max
            if block_max > self.budget:
                over_mask = sender_mask & (payload_bits_per_node > self.budget)
                if self.strict_congest:
                    first = int(np.nonzero(over_mask)[0][0])
                    raise CongestViolation(
                        int(self.graph.ids[first]),
                        -1,
                        int(payload_bits_per_node[first]),
                        self.budget,
                    )
                self.congest_violations += int(child_count[over_mask].sum())
        if np.any(receiver_mask):
            if receiver_bits is None:
                receiver_bits = payload_bits_per_node
            self.msgs_received[receiver_mask] += 1
            self.bits_received[receiver_mask] += receiver_bits[receiver_mask]

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def check_limits(self) -> None:
        """Enforce the round/awake-event safety caps (coarsely, per phase)."""
        if self.max_rounds is not None:
            last = int(self.last_awake.max()) if self.graph.n else 0
            if last > self.max_rounds:
                raise SimulationLimitExceeded(
                    f"round {last} exceeds max_rounds={self.max_rounds}"
                )
        total = int(self.awake.sum())
        if total > self.max_awake_events:
            raise SimulationLimitExceeded(
                f"{total} awake events exceed the limit of "
                f"{self.max_awake_events}"
            )

    def finalize(self) -> Metrics:
        """Fold the arrays into the coroutine engine's ``Metrics`` shape."""
        metrics = Metrics()
        g = self.graph
        awake = self.awake.tolist()
        msgs_sent = self.msgs_sent.tolist()
        msgs_received = self.msgs_received.tolist()
        bits_sent = self.bits_sent.tolist()
        bits_received = self.bits_received.tolist()
        last_awake = self.last_awake.tolist()
        for idx, node_id in enumerate(g.ids.tolist()):
            metrics.per_node[node_id] = NodeMetrics(
                awake_rounds=awake[idx],
                messages_sent=msgs_sent[idx],
                messages_received=msgs_received[idx],
                messages_lost_as_receiver=0,
                bits_sent=bits_sent[idx],
                bits_received=bits_received[idx],
                terminated_round=last_awake[idx],
            )
        metrics.rounds = max(last_awake) if last_awake else 0
        metrics.total_awake_rounds = int(self.awake.sum())
        metrics.max_awake_running = max(awake) if awake else 0
        metrics.messages_delivered = int(self.msgs_received.sum())
        metrics.messages_lost = 0
        metrics.total_bits = int(self.bits_sent.sum())
        metrics.max_message_bits = self.max_message_bits
        metrics.congest_violations = self.congest_violations
        return metrics
