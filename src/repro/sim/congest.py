"""CONGEST message-size accounting.

The CONGEST model restricts every message to ``O(log n)`` bits.  Protocol
payloads in this library are "flat" Python values — ``None``, ``bool``,
``int``, ``float`` (used only for ``math.inf`` sentinels), short ``str``
tags, and (possibly nested) tuples of those.  :func:`payload_bits` estimates
the number of bits needed to encode such a payload; the engine compares the
estimate against a budget of ``congest_factor * ceil(log2(universe))`` bits,
where *universe* bounds the magnitudes appearing in the protocol (node IDs,
edge weights, round offsets — all polynomial in ``n`` for the algorithms in
this library).

The estimate is deliberately simple and deterministic: each scalar field
costs ``ceil(log2(|value| + 2))`` bits plus a small per-field tag, and tuples
cost the sum of their fields.  The point is not bit-exact wire encoding but a
faithful *asymptotic* check: a payload that smuggles ``Θ(n)`` values through
one edge in one round will blow the budget, while the paper's constant-field
messages always fit.
"""

from __future__ import annotations

import math
from typing import Any

#: Bits charged per scalar field for type tags / framing.
FIELD_OVERHEAD_BITS = 2

#: Default multiplier applied to ``ceil(log2 universe)`` to form the budget.
#: The paper's messages carry a constant number of IDs/weights/levels, each
#: ``O(log n)`` bits, so a generous constant factor is appropriate.
DEFAULT_CONGEST_FACTOR = 16


def scalar_bits(value: Any) -> int:
    """Return the estimated encoding size in bits of a scalar payload field.

    ``None`` and booleans cost one bit plus overhead; integers cost their
    binary magnitude; infinities (used as +/- infinity sentinels in
    ``Upcast-Min``) cost one bit; short strings (protocol tags) cost 8 bits
    per character.
    """
    if value is None or isinstance(value, bool):
        return 1 + FIELD_OVERHEAD_BITS
    if isinstance(value, int):
        return max(1, (abs(value)).bit_length()) + 1 + FIELD_OVERHEAD_BITS
    if isinstance(value, float):
        if math.isinf(value):
            return 1 + FIELD_OVERHEAD_BITS
        return 64 + FIELD_OVERHEAD_BITS
    if isinstance(value, str):
        return 8 * len(value) + FIELD_OVERHEAD_BITS
    raise TypeError(
        f"unsupported payload field type {type(value).__name__!r}; "
        "protocol payloads must be None/bool/int/float/str or tuples thereof"
    )


def payload_bits(payload: Any) -> int:
    """Return the estimated encoding size in bits of a full payload.

    Tuples are flattened recursively; every other value is treated as a
    scalar via :func:`scalar_bits`.
    """
    if isinstance(payload, tuple):
        return FIELD_OVERHEAD_BITS + sum(payload_bits(field) for field in payload)
    return scalar_bits(payload)


def congest_budget_bits(universe: int, factor: int = DEFAULT_CONGEST_FACTOR) -> int:
    """Return the per-message bit budget for a value universe of size ``universe``.

    ``universe`` should upper-bound every magnitude a protocol message can
    carry (max of ``n``, the largest node ID ``N``, and the largest edge
    weight).  The budget is ``factor * max(8, ceil(log2(universe + 1)))``,
    i.e. ``O(log n)`` whenever the universe is polynomial in ``n``; the
    floor of 8 keeps toy-sized graphs from being spuriously stricter than
    the asymptotic model intends (constants are absorbed by O(log n)).
    """
    if universe < 1:
        raise ValueError("universe must be >= 1")
    return factor * max(8, math.ceil(math.log2(universe + 1)))


class CongestPolicy:
    """Message-size policy applied by the engine to every sent payload.

    Parameters
    ----------
    universe:
        Upper bound on magnitudes carried in messages (``max(n, N, W)``).
    strict:
        When true, an oversized message raises
        :class:`~repro.sim.errors.CongestViolation`; otherwise oversized
        messages are only counted in the metrics.
    factor:
        Budget multiplier, see :func:`congest_budget_bits`.
    """

    def __init__(
        self,
        universe: int,
        strict: bool = True,
        factor: int = DEFAULT_CONGEST_FACTOR,
    ) -> None:
        self.universe = universe
        self.strict = strict
        self.factor = factor
        self.budget = congest_budget_bits(universe, factor)

    def check(self, payload: Any) -> int:
        """Return the payload size in bits (raising in strict mode if over)."""
        bits = payload_bits(payload)
        return bits

    def is_over_budget(self, bits: int) -> bool:
        return bits > self.budget

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "strict" if self.strict else "lenient"
        return f"CongestPolicy(universe={self.universe}, budget={self.budget}b, {mode})"
