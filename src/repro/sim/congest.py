"""CONGEST message-size accounting.

The CONGEST model restricts every message to ``O(log n)`` bits.  Protocol
payloads in this library are "flat" Python values — ``None``, ``bool``,
``int``, ``float`` (used only for ``math.inf`` sentinels), short ``str``
tags, and (possibly nested) tuples of those.  :func:`payload_bits` estimates
the number of bits needed to encode such a payload; the engine compares the
estimate against a budget of ``congest_factor * ceil(log2(universe))`` bits,
where *universe* bounds the magnitudes appearing in the protocol (node IDs,
edge weights, round offsets — all polynomial in ``n`` for the algorithms in
this library).

The estimate is deliberately simple and deterministic: each scalar field
costs ``ceil(log2(|value| + 2))`` bits plus a small per-field tag, and tuples
cost the sum of their fields.  The point is not bit-exact wire encoding but a
faithful *asymptotic* check: a payload that smuggles ``Θ(n)`` values through
one edge in one round will blow the budget, while the paper's constant-field
messages always fit.

Performance
-----------
:func:`payload_bits` is the naive recursive reference definition; it is the
engine's single hottest call (one per message) on highly repetitive payload
shapes, so :meth:`CongestPolicy.check` layers two accelerations on top of
it, both proven equivalent by the property tests in
``tests/sim/test_congest_cache.py``:

* a **shape-compiled fast path**: flat tuples of scalars are sized by a
  per-shape compiled summing function (shape = the tuple of exact element
  classes), skipping the recursion, ``isinstance`` dispatch, and generator
  overhead of the reference;
* a **bounded per-shape value memo** mapping ``payload -> bits``.  The
  memos are routed by the exact element classes because Python hashes
  ``1``, ``1.0`` and ``True`` identically even though their bit costs
  differ — a single ``payload -> bits`` dict would conflate them, but
  within one shape's memo every key has identical element classes, so
  payload-equality implies bit-equality.

Payloads containing nested tuples (or any unsupported class) fall back to
the reference recursion and are never cached, so the fast structures only
ever hold flat, hashable tuples.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Optional, Tuple

#: Bits charged per scalar field for type tags / framing.
FIELD_OVERHEAD_BITS = 2

#: Default multiplier applied to ``ceil(log2 universe)`` to form the budget.
#: The paper's messages carry a constant number of IDs/weights/levels, each
#: ``O(log n)`` bits, so a generous constant factor is appropriate.
DEFAULT_CONGEST_FACTOR = 16


def scalar_bits(value: Any) -> int:
    """Return the estimated encoding size in bits of a scalar payload field.

    ``None`` and booleans cost one bit plus overhead; integers cost their
    binary magnitude; infinities (used as +/- infinity sentinels in
    ``Upcast-Min``) cost one bit; short strings (protocol tags) cost 8 bits
    per character.
    """
    if value is None or isinstance(value, bool):
        return 1 + FIELD_OVERHEAD_BITS
    if isinstance(value, int):
        return max(1, (abs(value)).bit_length()) + 1 + FIELD_OVERHEAD_BITS
    if isinstance(value, float):
        if math.isinf(value):
            return 1 + FIELD_OVERHEAD_BITS
        return 64 + FIELD_OVERHEAD_BITS
    if isinstance(value, str):
        return 8 * len(value) + FIELD_OVERHEAD_BITS
    raise TypeError(
        f"unsupported payload field type {type(value).__name__!r}; "
        "protocol payloads must be None/bool/int/float/str or tuples thereof"
    )


def payload_bits(payload: Any) -> int:
    """Return the estimated encoding size in bits of a full payload.

    Tuples are flattened recursively; every other value is treated as a
    scalar via :func:`scalar_bits`.
    """
    if isinstance(payload, tuple):
        return FIELD_OVERHEAD_BITS + sum(payload_bits(field) for field in payload)
    return scalar_bits(payload)


# ----------------------------------------------------------------------
# Shape-compiled sizing (CongestPolicy.check fast path)
# ----------------------------------------------------------------------

#: Memo entries kept per policy; the engine sees a small working set of
#: payload values, so the cap exists only to bound pathological protocols.
CACHE_CAPACITY = 4096

_BOOL_NONE_BITS = 1 + FIELD_OVERHEAD_BITS


def _int_field_bits(value: int) -> int:
    return (abs(value)).bit_length() + 1 + FIELD_OVERHEAD_BITS if value else 4


def _bool_field_bits(_value: Any) -> int:
    return _BOOL_NONE_BITS


def _float_field_bits(value: float) -> int:
    if math.isinf(value):
        return 1 + FIELD_OVERHEAD_BITS
    return 64 + FIELD_OVERHEAD_BITS


def _str_field_bits(value: str) -> int:
    return 8 * len(value) + FIELD_OVERHEAD_BITS


#: Exact-class scalar sizers.  Exact (not ``isinstance``) dispatch keeps
#: ``bool`` (a subclass of ``int``) and user subclasses out of the fast
#: path; anything unlisted falls back to :func:`scalar_bits`.
_SCALAR_SIZERS: Dict[type, Callable[[Any], int]] = {
    int: _int_field_bits,
    bool: _bool_field_bits,
    float: _float_field_bits,
    str: _str_field_bits,
    type(None): _bool_field_bits,
}


def _compile_shape(classes: Tuple[type, ...]) -> Optional[Callable[[Any], int]]:
    """Return a sizing function for flat tuples of these exact classes.

    Returns ``None`` when the shape contains nested tuples or unsupported
    classes — callers must then use the :func:`payload_bits` reference.
    """
    try:
        sizers = tuple(_SCALAR_SIZERS[cls] for cls in classes)
    except KeyError:
        return None

    def sized(payload: Any, _sizers=sizers, _base=FIELD_OVERHEAD_BITS) -> int:
        total = _base
        for sizer, fieldvalue in zip(_sizers, payload):
            total += sizer(fieldvalue)
        return total

    return sized


def congest_budget_bits(universe: int, factor: int = DEFAULT_CONGEST_FACTOR) -> int:
    """Return the per-message bit budget for a value universe of size ``universe``.

    ``universe`` should upper-bound every magnitude a protocol message can
    carry (max of ``n``, the largest node ID ``N``, and the largest edge
    weight).  The budget is ``factor * max(8, ceil(log2(universe + 1)))``,
    i.e. ``O(log n)`` whenever the universe is polynomial in ``n``; the
    floor of 8 keeps toy-sized graphs from being spuriously stricter than
    the asymptotic model intends (constants are absorbed by O(log n)).
    """
    if universe < 1:
        raise ValueError("universe must be >= 1")
    return factor * max(8, math.ceil(math.log2(universe + 1)))


class CongestPolicy:
    """Message-size policy applied by the engine to every sent payload.

    Parameters
    ----------
    universe:
        Upper bound on magnitudes carried in messages (``max(n, N, W)``).
    strict:
        When true, an oversized message raises
        :class:`~repro.sim.errors.CongestViolation`; otherwise oversized
        messages are only counted in the metrics.
    factor:
        Budget multiplier, see :func:`congest_budget_bits`.
    """

    def __init__(
        self,
        universe: int,
        strict: bool = True,
        factor: int = DEFAULT_CONGEST_FACTOR,
    ) -> None:
        self.universe = universe
        self.strict = strict
        self.factor = factor
        self.budget = congest_budget_bits(universe, factor)
        #: ``(shape, payload) -> bits`` memo; see the module docstring for
        #: why the exact element classes are part of the key.
        #: ``shape -> (sizer, payload -> bits memo)``; ``(None, None)``
        #: marks unsupported shapes.  Routing by the exact element-class
        #: tuple means hash-equal payloads of different types (``(1,)`` vs
        #: ``(True,)``) land in *different* memos, so each memo can key on
        #: the payload alone.
        self._shape_table: Dict[
            Tuple[type, ...],
            Tuple[Optional[Callable[[Any], int]], Optional[Dict[Any, int]]],
        ] = {}
        self._cache_entries = 0

    def check(self, payload: Any) -> int:
        """Return the payload size in bits, agreeing with :func:`payload_bits`.

        This only *measures* — it never raises on oversized payloads; the
        engine (or :meth:`check_strict`) decides what to do with the
        measurement.  Repeated shapes/values hit the policy's internal
        shape-compiled sizers and bounded value memo.
        """
        if payload.__class__ is tuple:
            classes = tuple([fieldvalue.__class__ for fieldvalue in payload])
            shape_table = self._shape_table
            entry = shape_table.get(classes)
            if entry is None:
                sizer = _compile_shape(classes)
                entry = shape_table[classes] = (
                    sizer,
                    {} if sizer is not None else None,
                )
            sizer, cache = entry
            if sizer is None:
                # Nested tuples / unsupported classes: reference recursion,
                # uncached (nested numeric fields hash-collide across types).
                return payload_bits(payload)
            bits = cache.get(payload)
            if bits is None:
                bits = sizer(payload)
                if self._cache_entries >= CACHE_CAPACITY:
                    # Cheap bounded behaviour: drop every memo and let the
                    # live working set repopulate (it is tiny in practice).
                    for _, shape_cache in shape_table.values():
                        if shape_cache is not None:
                            shape_cache.clear()
                    self._cache_entries = 0
                cache[payload] = bits
                self._cache_entries += 1
            return bits
        return scalar_bits(payload)

    def check_strict(self, payload: Any, node_id: int = -1, port: int = -1) -> int:
        """Measure ``payload`` and raise if it exceeds the budget in strict mode.

        Returns the size in bits.  In strict mode an over-budget payload
        raises :class:`~repro.sim.errors.CongestViolation` carrying
        ``node_id``/``port`` context (``-1`` when unknown); in lenient mode
        this is identical to :meth:`check`.
        """
        bits = self.check(payload)
        if self.strict and bits > self.budget:
            from .errors import CongestViolation

            raise CongestViolation(node_id, port, bits, self.budget)
        return bits

    def is_over_budget(self, bits: int) -> bool:
        return bits > self.budget

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "strict" if self.strict else "lenient"
        return f"CongestPolicy(universe={self.universe}, budget={self.budget}b, {mode})"
