"""The sleeping-model synchronous CONGEST simulation engine.

The engine executes a set of node protocols (see :mod:`repro.sim.node`) over
a weighted graph, faithfully implementing the sleeping model of Section 1.1
of the paper:

* Computation proceeds in synchronous rounds ``1, 2, 3, ...``; every node
  knows the current round number whenever it is awake.
* A node is awake exactly in the rounds its protocol yields; in all other
  rounds it is asleep — it sends nothing, receives nothing, and messages
  addressed to it are **lost**.
* In an awake round a node may send a (possibly distinct) message through
  each incident port and receives whatever its awake neighbours sent to it
  in the same round.
* Only awake rounds are charged to a node's awake complexity; the run time
  (round complexity) counts every round up to the last node's termination.

Transport layer
---------------
Message delivery is delegated to a pluggable :class:`~repro.sim.transport.
ChannelModel` (``SleepingSimulator(channel=...)``).  The default
:class:`~repro.sim.transport.PerfectChannel` reproduces the paper's
semantics byte-for-byte — and when it is in use with no observers
attached, the engine keeps its inlined fast-path loop, so the default
configuration pays nothing for the abstraction.  Seeded fault models
(drop/delay/duplicate/crash) route through the general loop, which
resolves every :class:`~repro.sim.transport.Outcome` into the metrics,
trace, and observability layers.

Sparse execution
----------------
Round complexities in this paper are huge (``Θ(n log n)`` randomized,
``Θ(nN log n)`` deterministic) while total awake work is tiny
(``O(n log n)`` node-rounds).  The engine therefore never iterates over
rounds in which everybody sleeps: it keeps a min-heap of scheduled wake-ups
and jumps directly from one populated round to the next.  Round *numbers*
remain exact, so reported round complexities are exact, but the wall-clock
cost of a simulation is proportional to awake work plus messages, not to
the round count.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Tuple

from .congest import CongestPolicy
from .errors import (
    CongestViolation,
    NodeCrashed,
    ProtocolViolation,
    SimulationLimitExceeded,
)
from .metrics import Metrics
from .node import (
    Awake,
    NodeContext,
    ProtocolFactory,
    prime_protocol,
    run_protocol_step,
)
from .tracing import EventTrace, KnowledgeTracker
from .transport import ChannelModel, PerfectChannel


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    #: Per-node protocol return values, keyed by node ID.
    node_results: Dict[int, Any]
    #: Aggregate and per-node counters.
    metrics: Metrics
    #: Event trace (only populated when tracing was enabled).
    trace: Optional[EventTrace] = None
    #: Knowledge tracker (only populated when knowledge tracking was enabled).
    knowledge: Optional[KnowledgeTracker] = None
    #: Observability recorder (only populated when ``observe=True``):
    #: span-attributed awake accounting plus a metrics registry.
    obs: Optional[Any] = None
    #: Attached invariant :class:`repro.invariants.MonitorSet` (duck-typed;
    #: only populated when ``monitors=...`` was passed).  Its ``report``
    #: holds the run's violations.
    monitors: Optional[Any] = None

    @property
    def max_awake(self) -> int:
        return self.metrics.max_awake

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    @property
    def spans(self):
        """The run's :class:`repro.obs.SpanLog` (``None`` unless observed)."""
        return self.obs.spans if self.obs is not None else None

    @property
    def violations(self):
        """Invariant violations recorded by attached monitors (``[]`` when
        no monitors were attached)."""
        return self.monitors.report.violations if self.monitors is not None else []


@dataclass
class _NodeRuntime:
    """Engine-internal per-node state.

    ``node_metrics`` and ``ports_map`` alias the per-node
    :class:`~repro.sim.metrics.NodeMetrics` and adjacency entries so the
    round loop reaches them with one attribute load instead of method
    calls and nested dict lookups per message.
    """

    context: NodeContext
    protocol: Any
    #: Sends scheduled for the pending awake round: port -> payload.
    pending_sends: Dict[int, Any] = field(default_factory=dict)
    #: Knowledge mask snapshot taken when the pending sends were scheduled.
    pending_knowledge: int = 0
    last_awake_round: int = 0
    finished: bool = False
    #: Alias of ``metrics.per_node[node_id]`` for this run.
    node_metrics: Any = None
    #: Alias of the engine's adjacency entry: port -> (nbr, nbr_port, w).
    ports_map: Dict[int, Tuple[int, int, int]] = field(default_factory=dict)


class SleepingSimulator:
    """Run node protocols over a graph under sleeping-model semantics.

    Parameters
    ----------
    graph:
        Any object exposing ``node_ids`` (iterable of distinct int IDs) and
        ``ports_of(node_id)`` returning ``{port: (neighbour_id,
        neighbour_port, weight)}``.  :class:`repro.graphs.WeightedGraph`
        satisfies this.
    protocol_factory:
        Called once per node with its :class:`~repro.sim.node.NodeContext`;
        must return the node's protocol generator.
    seed:
        Master seed; each node's private RNG is derived from it and the
        node's ID, so runs are exactly reproducible.
    congest_universe:
        Upper bound on message-field magnitudes for the CONGEST size budget.
        Defaults to ``max(n, N, max edge weight)`` derived from the graph.
    strict_congest:
        If true (default), oversized messages raise
        :class:`~repro.sim.errors.CongestViolation`; otherwise they are
        merely counted.
    channel:
        A :class:`~repro.sim.transport.ChannelModel` deciding the fate of
        every transmitted message.  Defaults to
        :class:`~repro.sim.transport.PerfectChannel` (the paper's
        semantics, byte-identical to the pre-transport engine).  Fault
        models — ``DropChannel``, ``DelayChannel``, ``DuplicateChannel``,
        ``CrashSchedule`` — inject seeded, reproducible faults; see
        :mod:`repro.sim.transport`.
    trace:
        Record an :class:`~repro.sim.tracing.EventTrace`.
    max_trace_events:
        Optional ring-buffer cap for the event trace: keep only the most
        recent events and count the rest in ``trace.dropped``.
    observe:
        Enable the :mod:`repro.obs` instrumentation layer: per-node span
        accounting (awake rounds / messages / bits attributed to the
        innermost span opened via ``ctx.span``) plus engine counters in a
        metrics registry.  Never alters the execution — runs are
        byte-identical with this on or off.
    obs_registry:
        Optional :class:`repro.obs.MetricsRegistry` to record into
        (e.g. one shared across a batch); a fresh one is created when
        omitted and ``observe`` is true.
    monitors:
        Attach runtime invariant monitors: a
        :class:`repro.invariants.MonitorSet` (or a spec string such as
        ``"all"`` / ``"star-merge,coloring-legal"``, built lazily via
        :func:`repro.invariants.build_monitor_set`).  Monitors receive
        protocol probe snapshots (``ctx.probe``) and closed span records
        through the obs layer — attaching them implies observability —
        and never alter the execution.  Detached (the default) the engine
        is byte-identical to the pre-monitor code and keeps its fast
        path.
    track_knowledge:
        Maintain causal knowledge sets (Theorem 3 experiments).
    max_rounds:
        Abort if the simulation reaches a round beyond this cap.
    max_awake_events:
        Abort after this many node-awake events (guards against protocols
        that never terminate).
    """

    def __init__(
        self,
        graph: Any,
        protocol_factory: ProtocolFactory,
        *,
        seed: int = 0,
        congest_universe: Optional[int] = None,
        strict_congest: bool = True,
        congest_factor: Optional[int] = None,
        channel: Optional[ChannelModel] = None,
        trace: bool = False,
        max_trace_events: Optional[int] = None,
        observe: bool = False,
        obs_registry: Optional[Any] = None,
        monitors: Optional[Any] = None,
        track_knowledge: bool = False,
        max_rounds: Optional[int] = None,
        max_awake_events: int = 50_000_000,
    ) -> None:
        self.graph = graph
        self.protocol_factory = protocol_factory
        self.seed = seed
        self.max_rounds = max_rounds
        self.max_awake_events = max_awake_events

        self._node_ids: List[int] = sorted(graph.node_ids)
        if not self._node_ids:
            raise ValueError("graph has no nodes")
        self._adjacency: Dict[int, Dict[int, Tuple[int, int, int]]] = {
            node_id: dict(graph.ports_of(node_id)) for node_id in self._node_ids
        }

        n = len(self._node_ids)
        max_id = max(self._node_ids)
        max_weight = 1
        for ports in self._adjacency.values():
            for _, _, weight in ports.values():
                max_weight = max(max_weight, abs(int(weight)))
        universe = congest_universe or max(n, max_id, max_weight)
        congest_kwargs = {} if congest_factor is None else {"factor": congest_factor}
        self.congest = CongestPolicy(universe, strict=strict_congest, **congest_kwargs)

        self.channel: ChannelModel = channel if channel is not None else PerfectChannel()

        self.trace = EventTrace(max_events=max_trace_events) if trace else None
        self.knowledge = (
            KnowledgeTracker(self._node_ids) if track_knowledge else None
        )
        if isinstance(monitors, str):
            # Spec strings resolve through the invariants registry; lazy
            # for the same layering reason as the obs import below.
            from repro.invariants import build_monitor_set

            monitors = build_monitor_set(monitors)
        if monitors is not None and len(monitors) == 0:
            monitors = None
        self.monitors = monitors
        self.obs = None
        if observe or monitors is not None:
            # Imported lazily: unobserved simulations never pay for (or
            # depend on) the observability subsystem.  Monitors piggyback
            # on the obs hooks (probes, span closures), so attaching them
            # implies an ObsRecorder.
            from repro.obs import ObsRecorder

            self.obs = ObsRecorder(registry=obs_registry, monitors=monitors)
        self._n = n
        self._max_id = max_id

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _make_context(self, node_id: int) -> NodeContext:
        ports = self._adjacency[node_id]
        return NodeContext(
            node_id=node_id,
            n=self._n,
            max_id=self._max_id,
            ports=tuple(sorted(ports)),
            port_weights={port: ports[port][2] for port in ports},
            rng=Random(f"{self.seed}/{node_id}"),
            obs=self.obs.node_handle(node_id) if self.obs is not None else None,
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the simulation to completion and return its result.

        Dispatches to one of two loop specializations producing *identical*
        results (the differential tests in ``tests/sim`` are the oracle):

        * the **fast path**, taken when no observer (trace, knowledge,
          obs) is attached *and* the channel is the default
          :class:`~repro.sim.transport.PerfectChannel` — all observer and
          transport branches are hoisted out, hot attributes are bound to
          locals, aggregate counters accumulate in locals and are flushed
          into :class:`Metrics` once;
        * the **general path**, which feeds the observers and resolves
          channel-model outcomes (drops, delays, duplicates, crashes).
        """
        self.channel.reset(self._node_ids, Random(f"{self.seed}/transport"))
        if self.monitors is not None:
            self.monitors.attach(self.graph, self._node_ids, seed=self.seed)
        metrics = Metrics()
        results: Dict[int, Any] = {}
        runtimes: Dict[int, _NodeRuntime] = {}
        # Heap of (round, node_id); each live node has exactly one entry.
        wakeups: List[Tuple[int, int]] = []

        for node_id in self._node_ids:
            context = self._make_context(node_id)
            protocol = self.protocol_factory(context)
            runtime = _NodeRuntime(context=context, protocol=protocol)
            runtime.node_metrics = metrics.node(node_id)
            runtime.ports_map = self._adjacency[node_id]
            runtimes[node_id] = runtime
            finished, value = prime_protocol(protocol)
            if finished:
                self._finish_node(node_id, runtime, value, 0, results, metrics)
                continue
            self._accept_action(node_id, runtime, value, current_round=0)
            heapq.heappush(wakeups, (value.round, node_id))

        if (
            self.trace is None
            and self.knowledge is None
            and self.obs is None
            and self.channel.is_perfect
        ):
            self._run_fast(metrics, results, runtimes, wakeups)
        else:
            self._run_general(metrics, results, runtimes, wakeups)

        if self.obs is not None:
            self.obs.finalize(metrics)
        if self.monitors is not None:
            self.monitors.finalize(
                metrics=metrics,
                spans=self.obs.spans,
                results=results,
                congest_budget=self.congest.budget,
            )

        return SimulationResult(
            node_results=results,
            metrics=metrics,
            trace=self.trace,
            knowledge=self.knowledge,
            obs=self.obs,
            monitors=self.monitors,
        )

    def _run_fast(
        self,
        metrics: Metrics,
        results: Dict[int, Any],
        runtimes: Dict[int, _NodeRuntime],
        wakeups: List[Tuple[int, int]],
    ) -> None:
        """Observer-free round loop (the common benchmark/sweep configuration)."""
        congest = self.congest
        congest_check = congest.check
        congest_budget = congest.budget
        congest_strict = congest.strict
        max_awake_events = self.max_awake_events
        pop_round = self._pop_round
        advance = self._advance_protocol

        total_bits = 0
        max_message_bits = 0
        messages_delivered = 0
        messages_lost = 0
        total_awake_rounds = 0
        congest_violations = 0
        max_awake_running = 0
        last_round = 0
        awake_events = 0

        # Inboxes are keyed by receiver and populated lazily on first
        # delivery; every receiver is awake this round, so phase B drains
        # the dict completely and it is reused round after round.
        inboxes: Dict[int, Dict[int, Any]] = {}
        awake_now: List[int] = []

        while wakeups:
            current_round = pop_round(wakeups, awake_now)
            awake_set = set(awake_now)
            last_round = current_round

            # Phase A: transmit.  All sends scheduled for this round go out
            # simultaneously; only awake receivers hear them.
            for node_id in awake_now:
                runtime = runtimes[node_id]
                pending = runtime.pending_sends
                if not pending:
                    continue
                sender_metrics = runtime.node_metrics
                ports_map = runtime.ports_map
                for port, payload in pending.items():
                    neighbour_id, neighbour_port, _ = ports_map[port]
                    bits = congest_check(payload)
                    sender_metrics.messages_sent += 1
                    sender_metrics.bits_sent += bits
                    total_bits += bits
                    if bits > max_message_bits:
                        max_message_bits = bits
                    if bits > congest_budget:
                        congest_violations += 1
                        if congest_strict:
                            raise CongestViolation(
                                node_id, port, bits, congest_budget
                            )
                    if neighbour_id in awake_set:
                        inbox = inboxes.get(neighbour_id)
                        if inbox is None:
                            inbox = inboxes[neighbour_id] = {}
                        inbox[neighbour_port] = payload
                        messages_delivered += 1
                        receiver = runtimes[neighbour_id].node_metrics
                        receiver.messages_received += 1
                        receiver.bits_received += bits
                    else:
                        messages_lost += 1
                        runtimes[
                            neighbour_id
                        ].node_metrics.messages_lost_as_receiver += 1
                runtime.pending_sends = {}

            # Phase B: local computation.  Resume every awake node with its
            # inbox; it either terminates or schedules its next awake round.
            for node_id in awake_now:
                runtime = runtimes[node_id]
                node_metrics = runtime.node_metrics
                awake = node_metrics.awake_rounds + 1
                node_metrics.awake_rounds = awake
                if awake > max_awake_running:
                    max_awake_running = awake
                total_awake_rounds += 1
                awake_events += 1
                runtime.last_awake_round = current_round
                inbox = inboxes.pop(node_id, None)
                if inbox is None:
                    inbox = {}
                advance(
                    node_id, runtime, inbox, current_round, results, metrics, wakeups
                )

            if awake_events > max_awake_events:
                raise SimulationLimitExceeded(
                    f"exceeded max_awake_events={max_awake_events}; "
                    "a protocol is probably not terminating"
                )

        metrics.rounds = last_round
        metrics.total_awake_rounds = total_awake_rounds
        metrics.messages_delivered = messages_delivered
        metrics.messages_lost = messages_lost
        metrics.total_bits = total_bits
        metrics.max_message_bits = max_message_bits
        metrics.congest_violations = congest_violations
        metrics.max_awake_running = max_awake_running

    def _run_general(
        self,
        metrics: Metrics,
        results: Dict[int, Any],
        runtimes: Dict[int, _NodeRuntime],
        wakeups: List[Tuple[int, int]],
    ) -> None:
        """Round loop with observers and/or a non-default channel attached.

        Kept semantically aligned with :meth:`_run_fast` under the
        perfect channel — both paths must fill :class:`Metrics`
        identically (the observe-on/off determinism tests compare them end
        to end).  On top of that it feeds the observers and resolves
        transport outcomes: drops, delayed deliveries (a heap of
        in-flight messages with deliver-at rounds), duplicates, and
        crash-stop node failures.
        """
        trace = self.trace
        knowledge = self.knowledge
        observed = self.obs is not None
        channel = self.channel
        channel_deliver = channel.deliver
        has_crashes = any(
            channel.crash_round(node_id) is not None
            for node_id in self._node_ids
        )
        congest = self.congest
        congest_budget = congest.budget
        congest_strict = congest.strict
        max_awake_running = 0
        last_round = 0
        awake_events = 0
        # In-flight messages re-scheduled by the channel (delays and
        # duplicate copies): a heap of ``(deliver_round, sequence,
        # receiver, receiver_port, payload, bits, sender, knowledge_mask)``.
        delayed: List[Tuple[int, int, int, int, Any, int, int, int]] = []
        delayed_seq = 0
        awake_now: List[int] = []
        while wakeups:
            current_round = self._pop_round(wakeups, awake_now)
            last_round = current_round

            if has_crashes:
                # A node crash-stops at the *start* of its crash round: it
                # neither transmits nor computes from that round on.
                alive: List[int] = []
                for node_id in awake_now:
                    crash_at = channel.crash_round(node_id)
                    if crash_at is not None and crash_at <= current_round:
                        self._crash_node(
                            node_id, runtimes[node_id], current_round, metrics
                        )
                    else:
                        alive.append(node_id)
                awake_now = alive
            awake_set = set(awake_now)

            inboxes: Dict[int, Dict[int, Any]] = {
                node_id: {} for node_id in awake_now
            }
            received_masks: Dict[int, List[int]] = {
                node_id: [] for node_id in awake_now
            }

            # Delayed arrivals scheduled at or before this round resolve
            # now: an exactly-now arrival reaches an awake receiver;
            # anything else was addressed to a round its receiver slept
            # through and is lost (the sleeping rule, applied at arrival).
            # Resolving before Phase A means a same-round fresh send
            # overwrites a stale delayed copy on the same port.
            while delayed and delayed[0][0] <= current_round:
                (
                    arrive_round,
                    _,
                    receiver_id,
                    receiver_port,
                    payload,
                    bits,
                    sender_id,
                    mask,
                ) = heapq.heappop(delayed)
                if arrive_round == current_round and receiver_id in awake_set:
                    inboxes[receiver_id][receiver_port] = payload
                    metrics.messages_delivered += 1
                    receiver = runtimes[receiver_id].node_metrics
                    receiver.messages_received += 1
                    receiver.bits_received += bits
                    if knowledge is not None:
                        received_masks[receiver_id].append(mask)
                    if trace is not None:
                        trace.record(
                            current_round, "deliver", receiver_id, sender_id, payload
                        )
                else:
                    metrics.messages_lost += 1
                    runtimes[
                        receiver_id
                    ].node_metrics.messages_lost_as_receiver += 1
                    if trace is not None:
                        trace.record(
                            arrive_round, "lose", receiver_id, sender_id, payload
                        )

            # Phase A: transmit.  Shared delivery bookkeeping; the channel
            # model decides each message's fate.
            for node_id in awake_now:
                runtime = runtimes[node_id]
                pending = runtime.pending_sends
                if not pending:
                    continue
                sender_metrics = runtime.node_metrics
                ports_map = runtime.ports_map
                pending_mask = runtime.pending_knowledge
                for port, payload in pending.items():
                    neighbour_id, neighbour_port, _ = ports_map[port]
                    bits = congest.check(payload)
                    sender_metrics.messages_sent += 1
                    sender_metrics.bits_sent += bits
                    if observed:
                        # The sender's generator is still suspended at the
                        # yield that scheduled this send, so the innermost
                        # open span is the one that produced the message.
                        runtime.context.obs.charge_send(bits)
                    metrics.total_bits += bits
                    if bits > metrics.max_message_bits:
                        metrics.max_message_bits = bits
                    if bits > congest_budget:
                        metrics.congest_violations += 1
                        if congest_strict:
                            raise CongestViolation(
                                node_id, port, bits, congest_budget
                            )
                    if trace is not None:
                        trace.record(
                            current_round, "send", node_id, neighbour_id, payload
                        )
                    outcome = channel_deliver(
                        current_round,
                        node_id,
                        port,
                        payload,
                        bits,
                        neighbour_id in awake_set,
                    )
                    kind = outcome.kind
                    if kind == "deliver":
                        inboxes[neighbour_id][neighbour_port] = payload
                        metrics.messages_delivered += 1
                        receiver = runtimes[neighbour_id].node_metrics
                        receiver.messages_received += 1
                        receiver.bits_received += bits
                        if knowledge is not None:
                            received_masks[neighbour_id].append(pending_mask)
                        if trace is not None:
                            trace.record(
                                current_round,
                                "deliver",
                                neighbour_id,
                                node_id,
                                payload,
                            )
                    elif kind == "lose":
                        metrics.messages_lost += 1
                        runtimes[
                            neighbour_id
                        ].node_metrics.messages_lost_as_receiver += 1
                        if trace is not None:
                            trace.record(
                                current_round, "lose", neighbour_id, node_id, payload
                            )
                    elif kind == "drop":
                        metrics.messages_dropped += 1
                        if trace is not None:
                            trace.record(
                                current_round, "drop", neighbour_id, node_id, payload
                            )
                    else:  # "delay"
                        metrics.messages_delayed += 1
                        delayed_seq += 1
                        heapq.heappush(
                            delayed,
                            (
                                outcome.deliver_round,
                                delayed_seq,
                                neighbour_id,
                                neighbour_port,
                                payload,
                                bits,
                                node_id,
                                pending_mask,
                            ),
                        )
                        if trace is not None:
                            trace.record(
                                current_round, "delay", neighbour_id, node_id, payload
                            )
                    duplicate_round = outcome.duplicate_round
                    if duplicate_round is not None:
                        metrics.messages_duplicated += 1
                        delayed_seq += 1
                        heapq.heappush(
                            delayed,
                            (
                                duplicate_round,
                                delayed_seq,
                                neighbour_id,
                                neighbour_port,
                                payload,
                                bits,
                                node_id,
                                pending_mask,
                            ),
                        )
                        if trace is not None:
                            trace.record(
                                current_round,
                                "duplicate",
                                neighbour_id,
                                node_id,
                                payload,
                            )
                runtime.pending_sends = {}

            # Phase B: local computation (see _run_fast; plus observer feeds).
            for node_id in awake_now:
                runtime = runtimes[node_id]
                node_metrics = runtime.node_metrics
                awake = node_metrics.awake_rounds + 1
                node_metrics.awake_rounds = awake
                if awake > max_awake_running:
                    max_awake_running = awake
                metrics.total_awake_rounds += 1
                awake_events += 1
                runtime.last_awake_round = current_round
                if observed:
                    runtime.context.obs.charge_awake(current_round)
                if trace is not None:
                    trace.record(current_round, "wake", node_id)
                if knowledge is not None:
                    knowledge.absorb(node_id, received_masks[node_id])
                    knowledge.note_awake(node_id)
                self._advance_protocol(
                    node_id,
                    runtime,
                    inboxes[node_id],
                    current_round,
                    results,
                    metrics,
                    wakeups,
                )

            if awake_events > self.max_awake_events:
                raise SimulationLimitExceeded(
                    f"exceeded max_awake_events={self.max_awake_events}; "
                    "a protocol is probably not terminating"
                )

        # In-flight messages outliving every wake-up arrive at rounds in
        # which nobody is awake: they resolve to ordinary sleeping losses,
        # so sends are always conserved as delivered + lost + dropped
        # (duplicated copies add to the delivered/lost side only).
        while delayed:
            (
                arrive_round,
                _,
                receiver_id,
                _receiver_port,
                payload,
                _bits,
                sender_id,
                _mask,
            ) = heapq.heappop(delayed)
            metrics.messages_lost += 1
            runtimes[receiver_id].node_metrics.messages_lost_as_receiver += 1
            if trace is not None:
                trace.record(arrive_round, "lose", receiver_id, sender_id, payload)

        metrics.rounds = last_round
        metrics.max_awake_running = max_awake_running

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _pop_round(
        self, wakeups: List[Tuple[int, int]], awake_now: List[int]
    ) -> int:
        """Round-header bookkeeping shared by both loops.

        Pops every wake-up scheduled for the next populated round into
        ``awake_now`` (cleared first) and returns that round number,
        enforcing ``max_rounds``.
        """
        current_round = wakeups[0][0]
        if self.max_rounds is not None and current_round > self.max_rounds:
            raise SimulationLimitExceeded(
                f"round {current_round} exceeds max_rounds={self.max_rounds}"
            )
        awake_now.clear()
        heappop = heapq.heappop
        while wakeups and wakeups[0][0] == current_round:
            awake_now.append(heappop(wakeups)[1])
        return current_round

    def _advance_protocol(
        self,
        node_id: int,
        runtime: _NodeRuntime,
        inbox: Dict[int, Any],
        current_round: int,
        results: Dict[int, Any],
        metrics: Metrics,
        wakeups: List[Tuple[int, int]],
    ) -> None:
        """Phase B tail shared by both loops: step, wrap crashes, reschedule."""
        try:
            finished, value = run_protocol_step(runtime.protocol, inbox)
        except (ProtocolViolation, CongestViolation):
            raise
        except Exception as error:  # noqa: BLE001 - wrapped deliberately
            obs = runtime.context.obs
            span = obs.take_crash_label() if obs is not None else None
            raise NodeCrashed(node_id, current_round, error, span=span) from error
        if finished:
            self._finish_node(
                node_id, runtime, value, current_round, results, metrics
            )
        else:
            self._accept_action(node_id, runtime, value, current_round)
            heapq.heappush(wakeups, (value.round, node_id))

    def _crash_node(
        self,
        node_id: int,
        runtime: _NodeRuntime,
        current_round: int,
        metrics: Metrics,
    ) -> None:
        """Crash-stop ``node_id``: it fails before transmitting this round.

        Pending sends are discarded, the protocol generator is closed, and
        the node never reports a result — downstream output validation is
        what notices the hole (see :func:`repro.graphs.verify_or_diagnose`).
        """
        runtime.finished = True
        runtime.pending_sends = {}
        metrics.nodes_crashed += 1
        metrics.crashed_nodes[node_id] = current_round
        if self.trace is not None:
            self.trace.record(current_round, "crash", node_id)
        try:
            runtime.protocol.close()
        except Exception:  # noqa: BLE001 - a dying generator can't veto the crash
            pass

    def _accept_action(
        self,
        node_id: int,
        runtime: _NodeRuntime,
        action: Any,
        current_round: int,
    ) -> None:
        """Validate a yielded action and stage its sends."""
        if not isinstance(action, Awake):
            raise ProtocolViolation(
                node_id,
                f"protocol yielded {type(action).__name__!r}; expected Awake",
            )
        if action.round <= current_round:
            raise ProtocolViolation(
                node_id,
                f"scheduled awake round {action.round} is not after the "
                f"current round {current_round}",
            )
        sends = dict(action.sends)
        for port in sends:
            if port not in self._adjacency[node_id]:
                raise ProtocolViolation(
                    node_id, f"send on unknown port {port}"
                )
        runtime.pending_sends = sends
        if self.knowledge is not None:
            runtime.pending_knowledge = self.knowledge.snapshot(node_id)

    def _finish_node(
        self,
        node_id: int,
        runtime: _NodeRuntime,
        value: Any,
        current_round: int,
        results: Dict[int, Any],
        metrics: Metrics,
    ) -> None:
        runtime.finished = True
        results[node_id] = value
        metrics.node(node_id).terminated_round = current_round
        if self.trace is not None:
            self.trace.record(current_round, "terminate", node_id, detail=value)


def simulate(
    graph: Any,
    protocol_factory: ProtocolFactory,
    **kwargs: Any,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`SleepingSimulator` and run it."""
    return SleepingSimulator(graph, protocol_factory, **kwargs).run()
