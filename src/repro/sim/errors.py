"""Exception hierarchy for the sleeping-model simulator.

All simulator-raised errors derive from :class:`SimulationError` so callers
can catch substrate failures separately from ordinary Python errors raised by
protocol code.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the simulation engine."""


class ProtocolViolation(SimulationError):
    """A node protocol broke the rules of the sleeping model.

    Examples: scheduling an awake round in the past, sending on an invalid
    port, or yielding an object that is not an :class:`~repro.sim.node.Awake`
    action.
    """

    def __init__(self, node_id: int, message: str) -> None:
        super().__init__(f"node {node_id}: {message}")
        self.node_id = node_id


class CongestViolation(SimulationError):
    """A message exceeded the CONGEST size budget in strict mode.

    The CONGEST model allows only ``O(log n)``-bit messages per edge per
    round; :mod:`repro.sim.congest` estimates payload sizes and the engine
    raises this error when a payload exceeds the configured budget.
    """

    def __init__(self, node_id: int, port: int, bits: int, budget: int) -> None:
        super().__init__(
            f"node {node_id} sent {bits}-bit message on port {port}; "
            f"CONGEST budget is {budget} bits"
        )
        self.node_id = node_id
        self.port = port
        self.bits = bits
        self.budget = budget


class SimulationLimitExceeded(SimulationError):
    """The engine hit a configured safety limit (rounds or events).

    This usually indicates a protocol that fails to terminate, e.g. a node
    that keeps scheduling wake-ups forever.
    """


class UnsupportedFeatureError(SimulationError):
    """A simulation backend was asked for a feature it does not implement.

    Raised by the vectorized array engine (:mod:`repro.sim.array_engine`)
    when a run requests observers, fault channels, monitors, or an
    algorithm outside its supported matrix — failing loudly instead of
    silently diverging from the coroutine engine's semantics.  The fix is
    either to drop the feature or to run with ``engine="coroutine"``.
    """

    def __init__(self, feature: str, detail: str = "") -> None:
        suffix = f": {detail}" if detail else ""
        super().__init__(
            f"the array engine does not support {feature}{suffix}; "
            'use engine="coroutine" for this configuration'
        )
        self.feature = feature


class NodeCrashed(SimulationError):
    """A node protocol raised an exception; wraps the original error.

    When the run had observability enabled, ``span`` names the crashed
    node's innermost open span (``"phase:3/block:upcast_moe"``) so a fault
    post-mortem identifies the phase/block, not just the round; it is
    ``None`` for unobserved runs.
    """

    def __init__(
        self,
        node_id: int,
        round_number: int,
        cause: BaseException,
        span: "str | None" = None,
    ) -> None:
        where = f" in span {span!r}" if span else ""
        super().__init__(
            f"node {node_id} crashed in round {round_number}{where}: {cause!r}"
        )
        self.node_id = node_id
        self.round_number = round_number
        self.span = span
        self.__cause__ = cause
