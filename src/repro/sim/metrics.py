"""Execution metrics for sleeping-model simulations.

The central quantities of the paper are:

* **awake complexity** — the maximum, over nodes, of the number of rounds the
  node spends awake before it terminates (``max_awake``);
* **round complexity** (run time) — the total number of rounds until the last
  node terminates (``rounds``), counting sleeping rounds.

:class:`Metrics` tracks both, plus message/bit counts, per-node breakdowns,
and messages lost to sleeping receivers (a defining feature of the sleeping
model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class NodeMetrics:
    """Per-node counters accumulated by the engine."""

    awake_rounds: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    messages_lost_as_receiver: int = 0
    bits_sent: int = 0
    bits_received: int = 0
    terminated_round: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "awake_rounds": self.awake_rounds,
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "messages_lost_as_receiver": self.messages_lost_as_receiver,
            "bits_sent": self.bits_sent,
            "bits_received": self.bits_received,
            "terminated_round": self.terminated_round,
        }


@dataclass
class Metrics:
    """Aggregate metrics for one simulation run."""

    #: Round number of the last executed round (the paper's run time).
    rounds: int = 0
    #: Total awake rounds summed over all nodes.
    total_awake_rounds: int = 0
    #: Total messages delivered to awake receivers.
    messages_delivered: int = 0
    #: Messages sent to sleeping receivers (lost per the model).
    messages_lost: int = 0
    #: Total payload bits across delivered + lost messages.
    total_bits: int = 0
    #: Largest single-message payload observed, in bits.
    max_message_bits: int = 0
    #: Number of messages that exceeded the CONGEST budget (lenient mode).
    congest_violations: int = 0
    #: Messages destroyed in flight by the channel model (fault injection;
    #: always 0 under the default :class:`~repro.sim.transport.PerfectChannel`).
    messages_dropped: int = 0
    #: Messages re-scheduled to a later round by the channel model.  Each
    #: delayed message additionally resolves into ``messages_delivered`` or
    #: ``messages_lost`` when its deliver-at round arrives.
    messages_delayed: int = 0
    #: Extra message copies emitted by the channel model.
    messages_duplicated: int = 0
    #: Nodes killed by the channel's crash schedule.
    nodes_crashed: int = 0
    #: Crash plan as executed: ``{node_id: crash_round}``.
    crashed_nodes: Dict[int, int] = field(default_factory=dict)
    #: Per-node counters keyed by node ID.
    per_node: Dict[int, NodeMetrics] = field(default_factory=dict)
    #: Running maximum of per-node ``awake_rounds``, maintained incrementally
    #: by the engine so ``max_awake`` (used by ``summary()`` and every
    #: benchmark table) is O(1) after a run instead of an O(n) scan per
    #: call.  Zero for hand-assembled metrics, in which case ``max_awake``
    #: falls back to :meth:`recompute_max_awake`.
    max_awake_running: int = 0

    @property
    def max_awake(self) -> int:
        """Worst-case awake complexity: ``max_v A_v`` over all nodes.

        O(1) when the engine maintained :attr:`max_awake_running`;
        otherwise recomputed from the per-node counters.  The two always
        agree after an engine run (asserted by the tier-1 metrics tests).
        """
        return self.max_awake_running or self.recompute_max_awake()

    def recompute_max_awake(self) -> int:
        """O(n) reference recomputation of :attr:`max_awake`."""
        if not self.per_node:
            return 0
        return max(node.awake_rounds for node in self.per_node.values())

    @property
    def mean_awake(self) -> float:
        """Node-averaged awake complexity (cf. Chatterjee et al. 2020)."""
        if not self.per_node:
            return 0.0
        return self.total_awake_rounds / len(self.per_node)

    @property
    def awake_round_product(self) -> int:
        """The paper's trade-off quantity: awake complexity x round complexity."""
        return self.max_awake * self.rounds

    def node(self, node_id: int) -> NodeMetrics:
        """Return (creating if needed) the counters for ``node_id``."""
        metrics = self.per_node.get(node_id)
        if metrics is None:
            metrics = NodeMetrics()
            self.per_node[node_id] = metrics
        return metrics

    def awake_distribution(self) -> List[int]:
        """Return the sorted list of per-node awake counts."""
        return sorted(node.awake_rounds for node in self.per_node.values())

    @property
    def faults_observed(self) -> bool:
        """True when the channel model injected at least one fault."""
        return bool(
            self.messages_dropped
            or self.messages_delayed
            or self.messages_duplicated
            or self.nodes_crashed
        )

    def fault_summary(self) -> Dict[str, int]:
        """The fault-injection counters as a flat dictionary."""
        return {
            "messages_dropped": self.messages_dropped,
            "messages_delayed": self.messages_delayed,
            "messages_duplicated": self.messages_duplicated,
            "nodes_crashed": self.nodes_crashed,
        }

    def summary(self) -> Dict[str, float]:
        """Return a flat summary dictionary convenient for tables/benchmarks.

        Fault counters are appended only when at least one fault actually
        occurred, which keeps fault-free summaries byte-identical to the
        pre-transport engine (the golden tests pin this).
        """
        payload = {
            "rounds": self.rounds,
            "max_awake": self.max_awake,
            "mean_awake": round(self.mean_awake, 3),
            "awake_round_product": self.awake_round_product,
            "messages_delivered": self.messages_delivered,
            "messages_lost": self.messages_lost,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "congest_violations": self.congest_violations,
        }
        if self.faults_observed:
            payload.update(self.fault_summary())
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Metrics(rounds={self.rounds}, max_awake={self.max_awake}, "
            f"msgs={self.messages_delivered}, lost={self.messages_lost})"
        )
