"""Node-side API of the sleeping-model simulator.

A distributed algorithm is expressed as a *protocol*: a generator function
that receives a :class:`NodeContext` and yields :class:`Awake` actions.  Each
yield corresponds to exactly one awake round:

.. code-block:: python

    def my_protocol(ctx):
        # Round 1: send our ID to every neighbour and hear theirs.
        inbox = yield Awake(1, {port: ctx.node_id for port in ctx.ports})
        neighbour_ids = dict(inbox)
        # Sleep until round 100, then wake silently (listen only).
        inbox = yield Awake(100)
        return neighbour_ids  # becomes the node's result

Between yields the node is asleep: it sends nothing, hears nothing, and
messages addressed to it are lost — exactly the sleeping model of
Chatterjee, Gmyr, and Pandurangan (PODC 2020) used by the paper.

Local computation between yields is free (the model charges only awake
rounds), but each yield must schedule a strictly later round than the
previous one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Dict, Generator, Mapping, Tuple

class _NullSpan:
    """Shared no-op context manager returned when observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: Inbox type: port number -> payload received on that port this round.
Inbox = Dict[int, Any]

#: A protocol is a generator: yields Awake, receives Inbox, returns a result.
Protocol = Generator["Awake", Inbox, Any]

#: Factory invoked once per node to create its protocol generator.
ProtocolFactory = Callable[["NodeContext"], Protocol]


@dataclass(frozen=True)
class Awake:
    """One awake round: wake at ``round``, transmitting ``sends``.

    Parameters
    ----------
    round:
        Absolute round number (1-based) in which to be awake.  Must be
        strictly greater than the node's previous awake round.
    sends:
        Mapping from local port number to payload.  Ports not listed send
        nothing.  An empty mapping (the default) means listen-only.
    """

    round: int
    sends: Mapping[int, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ValueError(f"awake round must be >= 1, got {self.round}")


@dataclass
class NodeContext:
    """Everything a node knows at the start of the computation.

    Matches Section 1.1 of the paper: a node knows its own ID, the weights of
    its incident edges (keyed by local port number), the network size ``n``,
    the maximum possible ID ``max_id`` (``N``; only the deterministic
    algorithm relies on it), and has a private source of randomness.  It does
    *not* know its neighbours' IDs (KT0) — protocols that need them exchange
    IDs in an explicit awake round.
    """

    #: This node's unique ID (an integer in ``[1, max_id]``).
    node_id: int
    #: Number of nodes in the network (globally known).
    n: int
    #: Largest possible node ID ``N`` (globally known; ``>= n``).
    max_id: int
    #: Local port numbers, ``0 .. degree-1``.
    ports: Tuple[int, ...]
    #: Weight of the incident edge on each port.
    port_weights: Dict[int, int]
    #: Private randomness, seeded deterministically by the engine.
    rng: Random
    #: Per-node observability handle (:class:`repro.obs.NodeObs`), set by
    #: the engine when it runs with ``observe=True``; ``None`` otherwise.
    #: Spans never alter protocol behaviour — a run is identical with
    #: instrumentation on or off.
    obs: Any = None

    @property
    def degree(self) -> int:
        return len(self.ports)

    def span(self, *parts: Any):
        """Open an accounting span named by ``parts`` (joined with ``:``).

        Use as a context manager around a phase or block of the protocol::

            with ctx.span("phase", 3):
                with ctx.span("block:upcast_moe"):
                    result = yield from upcast_min(ctx, ldt, block, value)

        While the generator is suspended inside the span, the engine
        charges this node's awake rounds, messages, and bits to it (to the
        innermost span when nested).  Returns a shared no-op context
        manager when observability is disabled, so instrumented protocols
        pay only this ``None`` check.
        """
        obs = self.obs
        if obs is None:
            return _NULL_SPAN
        return obs.span(parts)

    def count(self, name: str, value: float = 1, **labels: Any) -> None:
        """Increment a metrics-registry counter (no-op when disabled)."""
        obs = self.obs
        if obs is not None:
            obs.count(name, value, **labels)

    def probe(self, point: str, **state: Any) -> None:
        """Emit a named state snapshot for attached invariant monitors.

        Protocol code calls this at the paper's checkpoint moments (e.g.
        ``ctx.probe("phase_end", phase=p, fragment=f, ...)``); a
        :class:`repro.invariants.MonitorSet` attached via
        ``SleepingSimulator(monitors=...)`` buffers the snapshots and
        fires its global checkers once every node has reported.  Like
        spans, probes never alter execution — with no monitors attached
        this is a single ``None`` check.
        """
        obs = self.obs
        if obs is not None:
            obs.probe(point, state)

    def min_weight_port(self) -> int:
        """Return the port with the lightest incident edge."""
        return min(self.ports, key=lambda port: self.port_weights[port])

    def broadcast(self, payload: Any) -> Dict[int, Any]:
        """Convenience: a ``sends`` mapping addressing every port."""
        return {port: payload for port in self.ports}


def run_protocol_step(
    protocol: Protocol, inbox: Inbox
) -> Tuple[bool, Any]:
    """Advance ``protocol`` by one awake round.

    Returns ``(finished, value)`` where ``value`` is the next
    :class:`Awake` action if not finished, or the protocol's return value
    if finished.  This helper exists so the engine and tests share identical
    resumption semantics.
    """
    try:
        action = protocol.send(inbox)
    except StopIteration as stop:
        return True, stop.value
    return False, action


def prime_protocol(protocol: Protocol) -> Tuple[bool, Any]:
    """Start ``protocol``, returning its first action (or immediate result)."""
    try:
        action = next(protocol)
    except StopIteration as stop:
        return True, stop.value
    return False, action
