"""A deliberately naive reference engine for differential testing.

Everything in this repository rests on :class:`~repro.sim.engine.
SleepingSimulator`'s sparse execution being semantically identical to the
obvious round-by-round interpretation of the sleeping model.  This module
*is* that obvious interpretation: iterate every round ``1, 2, 3, ...``,
wake whoever scheduled this round, exchange messages among the awake,
resume.  No heap, no skipping, no observers — a few dozen lines one can
check by eye.

It is exponentially slower on sparse schedules (it visits every round), so
it is only used by the differential tests in
``tests/sim/test_reference_engine.py``, which assert that both engines
produce identical results, rounds, awake counts, and message statistics on
randomly generated protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Tuple

from .node import Awake, NodeContext, prime_protocol, run_protocol_step


@dataclass
class ReferenceResult:
    """The comparable subset of a simulation outcome."""

    node_results: Dict[int, Any]
    rounds: int
    awake_rounds: Dict[int, int]
    messages_delivered: int
    messages_lost: int


@dataclass
class _Pending:
    protocol: Any
    action: Optional[Awake]
    finished: bool = False
    result: Any = None


def simulate_dense(
    graph: Any,
    protocol_factory: Any,
    seed: int = 0,
    max_rounds: int = 100_000,
) -> ReferenceResult:
    """Run protocols by visiting every round explicitly."""
    node_ids = sorted(graph.node_ids)
    adjacency = {node: dict(graph.ports_of(node)) for node in node_ids}
    n = len(node_ids)
    max_id = max(node_ids)

    states: Dict[int, _Pending] = {}
    for node_id in node_ids:
        context = NodeContext(
            node_id=node_id,
            n=n,
            max_id=max_id,
            ports=tuple(sorted(adjacency[node_id])),
            port_weights={
                port: entry[2] for port, entry in adjacency[node_id].items()
            },
            rng=Random(f"{seed}/{node_id}"),
        )
        protocol = protocol_factory(context)
        finished, value = prime_protocol(protocol)
        if finished:
            states[node_id] = _Pending(protocol, None, True, value)
        else:
            states[node_id] = _Pending(protocol, value)

    awake_counts = {node: 0 for node in node_ids}
    delivered = lost = 0
    last_round = 0

    for current_round in range(1, max_rounds + 1):
        if all(state.finished for state in states.values()):
            break
        awake = [
            node
            for node, state in states.items()
            if not state.finished and state.action.round == current_round
        ]
        if not awake:
            continue
        last_round = current_round

        # Transmit.
        inboxes: Dict[int, Dict[int, Any]] = {node: {} for node in awake}
        awake_set = set(awake)
        for node in awake:
            for port, payload in dict(states[node].action.sends).items():
                neighbour, neighbour_port, _ = adjacency[node][port]
                if neighbour in awake_set:
                    inboxes[neighbour][neighbour_port] = payload
                    delivered += 1
                else:
                    lost += 1

        # Resume.
        for node in awake:
            awake_counts[node] += 1
            finished, value = run_protocol_step(
                states[node].protocol, inboxes[node]
            )
            if finished:
                states[node] = _Pending(states[node].protocol, None, True, value)
            else:
                states[node] = _Pending(states[node].protocol, value)
    else:
        unfinished = [n for n, s in states.items() if not s.finished]
        if unfinished:
            raise RuntimeError(
                f"reference engine hit max_rounds with nodes {unfinished[:5]} alive"
            )

    return ReferenceResult(
        node_results={node: state.result for node, state in states.items()},
        rounds=last_round,
        awake_rounds=awake_counts,
        messages_delivered=delivered,
        messages_lost=lost,
    )
