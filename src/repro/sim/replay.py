"""Trace serialization: persist executions as JSONL, reload for analysis.

A traced run can be saved to a compact JSON-lines file (one event per
line, plus a header with metrics) and reloaded later into an
:class:`~repro.sim.tracing.EventTrace` and metric summary — so experiment
artifacts can be archived, diffed across versions, or analysed outside
Python without re-running simulations.

Payloads are restricted to the same flat values the CONGEST checker
accepts (tuples/ints/strings/None/bools/floats); tuples round-trip through
JSON lists and are restored on load.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from .engine import SimulationResult
from .tracing import EventTrace

#: Schema version written into every file header.  Version 2 added the
#: ``faults`` header block (fault-injection counters plus the executed
#: crash plan); version-1 files still load, with empty fault data.
FORMAT_VERSION = 2

#: Header versions :func:`load_trace` accepts.
SUPPORTED_FORMATS = (1, FORMAT_VERSION)


def _encode_payload(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_encode_payload(field) for field in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # Non-message details (e.g. protocol return values attached to
    # terminate events) are stored lossily as their repr; message payloads
    # are always flat tuples/scalars and round-trip exactly.
    return {"__repr__": repr(value)}


def _decode_repr(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__repr__"}:
        return value["__repr__"]
    return value


def _decode_payload(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_decode_payload(field) for field in value)
    return _decode_repr(value)


def save_trace(result: SimulationResult, path: Union[str, Path]) -> int:
    """Write a traced run to ``path``; returns the number of events written.

    Raises ``ValueError`` if the run was not executed with ``trace=True``.
    """
    if result.trace is None:
        raise ValueError("simulation was run without trace=True")
    target = Path(path)
    events = result.trace.events
    metrics = result.metrics
    faults = dict(metrics.fault_summary())
    # JSON objects key on strings; load_trace restores the int node IDs.
    faults["crashed_nodes"] = {
        str(node): crash_round
        for node, crash_round in sorted(metrics.crashed_nodes.items())
    }
    with target.open("w") as handle:
        header = {
            "format": FORMAT_VERSION,
            "events": len(events),
            "metrics": metrics.summary(),
            "faults": faults,
        }
        handle.write(json.dumps(header) + "\n")
        for event in events:
            handle.write(
                json.dumps(
                    [
                        event.round,
                        event.kind,
                        event.node,
                        event.peer,
                        _encode_payload(event.detail),
                    ]
                )
                + "\n"
            )
    return len(events)


@dataclass
class LoadedRun:
    """A reloaded run: the trace plus the saved metric summary.

    ``fault_summary`` / ``crashed_nodes`` come from the version-2
    ``faults`` header block; loading a version-1 file leaves them empty.
    """

    trace: EventTrace
    metrics_summary: Dict[str, Any]
    format_version: int
    #: Fault-injection counters (``messages_dropped`` etc.; all zero for
    #: fault-free runs and version-1 files).
    fault_summary: Dict[str, int] = field(default_factory=dict)
    #: Executed crash plan, ``{node_id: crash_round}``.
    crashed_nodes: Dict[int, int] = field(default_factory=dict)

    @property
    def faults_observed(self) -> bool:
        """True when the saved run recorded at least one injected fault."""
        return any(self.fault_summary.values()) or bool(self.crashed_nodes)


def load_trace(path: Union[str, Path]) -> LoadedRun:
    """Reload a file written by :func:`save_trace`.

    Accepts every version in :data:`SUPPORTED_FORMATS` — version-1 files
    (written before fault counters were persisted) load with empty fault
    data.
    """
    source = Path(path)
    with source.open() as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise ValueError(f"{source}: empty trace file")
    header = json.loads(lines[0])
    if header.get("format") not in SUPPORTED_FORMATS:
        raise ValueError(
            f"{source}: unsupported format {header.get('format')!r} "
            f"(expected one of {SUPPORTED_FORMATS})"
        )
    trace = EventTrace()
    for line in lines[1:]:
        round_number, kind, node, peer, detail = json.loads(line)
        trace.record(round_number, kind, node, peer, _decode_payload(detail))
    if len(trace) != header["events"]:
        raise ValueError(
            f"{source}: header promises {header['events']} events, "
            f"found {len(trace)}"
        )
    raw_faults = dict(header.get("faults") or {})
    crashed_nodes = {
        int(node): crash_round
        for node, crash_round in (raw_faults.pop("crashed_nodes", None) or {}).items()
    }
    return LoadedRun(
        trace=trace,
        metrics_summary=header["metrics"],
        format_version=header["format"],
        fault_summary=raw_faults,
        crashed_nodes=crashed_nodes,
    )
