"""Trace serialization: persist executions as JSONL, reload for analysis.

A traced run can be saved to a compact JSON-lines file (one event per
line, plus a header with metrics) and reloaded later into an
:class:`~repro.sim.tracing.EventTrace` and metric summary — so experiment
artifacts can be archived, diffed across versions, or analysed outside
Python without re-running simulations.

Payloads are restricted to the same flat values the CONGEST checker
accepts (tuples/ints/strings/None/bools/floats); tuples round-trip through
JSON lists and are restored on load.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Union

from .engine import SimulationResult
from .tracing import EventTrace

#: Schema version written into every file header.
FORMAT_VERSION = 1


def _encode_payload(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_encode_payload(field) for field in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # Non-message details (e.g. protocol return values attached to
    # terminate events) are stored lossily as their repr; message payloads
    # are always flat tuples/scalars and round-trip exactly.
    return {"__repr__": repr(value)}


def _decode_repr(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__repr__"}:
        return value["__repr__"]
    return value


def _decode_payload(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_decode_payload(field) for field in value)
    return _decode_repr(value)


def save_trace(result: SimulationResult, path: Union[str, Path]) -> int:
    """Write a traced run to ``path``; returns the number of events written.

    Raises ``ValueError`` if the run was not executed with ``trace=True``.
    """
    if result.trace is None:
        raise ValueError("simulation was run without trace=True")
    target = Path(path)
    events = result.trace.events
    with target.open("w") as handle:
        header = {
            "format": FORMAT_VERSION,
            "events": len(events),
            "metrics": result.metrics.summary(),
        }
        handle.write(json.dumps(header) + "\n")
        for event in events:
            handle.write(
                json.dumps(
                    [
                        event.round,
                        event.kind,
                        event.node,
                        event.peer,
                        _encode_payload(event.detail),
                    ]
                )
                + "\n"
            )
    return len(events)


@dataclass
class LoadedRun:
    """A reloaded run: the trace plus the saved metric summary."""

    trace: EventTrace
    metrics_summary: Dict[str, Any]
    format_version: int


def load_trace(path: Union[str, Path]) -> LoadedRun:
    """Reload a file written by :func:`save_trace`."""
    source = Path(path)
    with source.open() as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise ValueError(f"{source}: empty trace file")
    header = json.loads(lines[0])
    if header.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"{source}: unsupported format {header.get('format')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    trace = EventTrace()
    for line in lines[1:]:
        round_number, kind, node, peer, detail = json.loads(line)
        trace.record(round_number, kind, node, peer, _decode_payload(detail))
    if len(trace) != header["events"]:
        raise ValueError(
            f"{source}: header promises {header['events']} events, "
            f"found {len(trace)}"
        )
    return LoadedRun(
        trace=trace,
        metrics_summary=header["metrics"],
        format_version=header["format"],
    )
