"""Event tracing and knowledge tracking for simulations.

Two optional observers plug into the engine:

* :class:`EventTrace` records a flat list of events (wake, send, deliver,
  lose, terminate — plus the fault kinds drop, delay, duplicate, crash when
  a fault-injecting channel model is attached) for debugging, for the
  merging walk-through example that reproduces Figures 2-5, and for tests
  that assert *when* things happened.

* :class:`KnowledgeTracker` implements the information-flow bookkeeping used
  by the Theorem 3 lower-bound experiments: for each node ``u`` it maintains
  the set ``S(u, a)`` of nodes whose *initial* inputs could causally have
  influenced ``u``'s state after ``u``'s ``a``-th awake round.  A message
  carries the sender's knowledge *as of the moment the send was scheduled*
  (the sender's previous awake round), matching the proof's convention that
  a node's state — and hence anything it transmits — depends only on what it
  had already heard.

Knowledge sets are stored as Python integer bitmasks over node indices,
which keeps unions cheap even for thousands of nodes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One simulator event.

    ``kind`` is one of ``"wake"``, ``"send"``, ``"deliver"``, ``"lose"``,
    ``"terminate"``, or — under a fault-injecting channel model (see
    :mod:`repro.sim.transport`) — one of the fault kinds ``"drop"`` (the
    channel destroyed a message), ``"delay"`` (re-scheduled to a later
    round), ``"duplicate"`` (an extra copy was emitted), ``"crash"`` (the
    node crash-stopped).  ``node`` is the acting node's ID — for message
    events, the *receiver*; ``peer`` (when meaningful) is the other
    endpoint's ID; ``detail`` carries the payload or return value.
    """

    round: int
    kind: str
    node: int
    peer: Optional[int] = None
    detail: Any = None


class EventTrace:
    """Append-only record of :class:`TraceEvent` with simple query helpers.

    By default the trace grows without bound.  Pass ``max_events`` to cap
    memory on large-``n`` traced runs: the trace becomes a ring buffer that
    keeps only the most recent ``max_events`` events and counts evictions
    in :attr:`dropped`.
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        self.max_events = max_events
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        #: Events evicted from the ring buffer (0 unless capped and full).
        self.dropped = 0

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first (a copy)."""
        return list(self._events)

    def record(
        self,
        round_number: int,
        kind: str,
        node: int,
        peer: Optional[int] = None,
        detail: Any = None,
    ) -> None:
        if (
            self.max_events is not None
            and len(self._events) == self.max_events
        ):
            self.dropped += 1
            if self.max_events == 0:
                return
        self._events.append(TraceEvent(round_number, kind, node, peer, detail))

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self._events if event.kind == kind]

    def for_node(self, node: int) -> List[TraceEvent]:
        return [event for event in self._events if event.node == node]

    def wake_rounds(self, node: int) -> List[int]:
        """Rounds in which ``node`` was awake, in order."""
        return [e.round for e in self._events if e.kind == "wake" and e.node == node]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)


class KnowledgeTracker:
    """Track causal knowledge sets ``S(u, a)`` during a simulation.

    Parameters
    ----------
    node_ids:
        All node IDs in the network; each starts knowing only itself.
    """

    def __init__(self, node_ids: Iterable[int]) -> None:
        ids = list(node_ids)
        self._index: Dict[int, int] = {nid: i for i, nid in enumerate(ids)}
        self._ids: List[int] = ids
        #: Current knowledge bitmask per node.
        self._knowledge: Dict[int, int] = {nid: 1 << i for i, nid in enumerate(ids)}
        #: History: per node, list of (awake_count, knowledge_size) samples.
        self.history: Dict[int, List[Tuple[int, int]]] = {nid: [(0, 1)] for nid in ids}
        self._awake_counts: Dict[int, int] = {nid: 0 for nid in ids}

    def snapshot(self, node_id: int) -> int:
        """Return the sender-side knowledge mask attached to outgoing messages."""
        return self._knowledge[node_id]

    def absorb(self, node_id: int, masks: Iterable[int]) -> None:
        """Merge received knowledge masks into ``node_id``'s knowledge."""
        combined = self._knowledge[node_id]
        for mask in masks:
            combined |= mask
        self._knowledge[node_id] = combined

    def note_awake(self, node_id: int) -> None:
        """Record that ``node_id`` completed one more awake round."""
        self._awake_counts[node_id] += 1
        self.history[node_id].append(
            (self._awake_counts[node_id], self.size(node_id))
        )

    def size(self, node_id: int) -> int:
        """Number of nodes currently in ``node_id``'s knowledge set."""
        return bin(self._knowledge[node_id]).count("1")

    def known_nodes(self, node_id: int) -> Set[int]:
        """Return the knowledge set of ``node_id`` as explicit node IDs."""
        mask = self._knowledge[node_id]
        return {self._ids[i] for i in range(len(self._ids)) if mask >> i & 1}

    def growth_curve(self, node_id: int) -> List[Tuple[int, int]]:
        """Return ``(awake_rounds, |S(u, a)|)`` samples for ``node_id``."""
        return list(self.history[node_id])

    def max_knowledge_after(self, awake_rounds: int) -> int:
        """Return ``max_u |S(u, a)|`` over all nodes at awake count ``a``.

        Nodes that never reached ``a`` awake rounds contribute their final
        knowledge size (knowledge only grows).
        """
        best = 0
        for node_id, samples in self.history.items():
            size_at = samples[0][1]
            for count, size in samples:
                if count <= awake_rounds:
                    size_at = size
                else:
                    break
            best = max(best, size_at)
        return best
