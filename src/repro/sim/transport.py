"""Pluggable message-transport layer: channel models with fault injection.

The sleeping model's defining delivery rule — *messages addressed to a
sleeping node are lost* — used to be hardwired inside the engine's round
loop.  This module makes delivery a first-class, swappable policy: a
:class:`ChannelModel` decides the fate of every transmitted message, so
the same protocols can be run under perfect delivery (the paper's model),
seeded random loss, bounded delay, duplication, or crash-stop node
failures — without touching protocol or engine code.

Semantics
---------
For every message the engine calls::

    outcome = channel.deliver(round, sender, port, payload, bits,
                              receiver_awake)

and acts on the returned :class:`Outcome`:

``deliver``
    The message reaches the receiver's inbox this round.
``lose``
    The sleeping-model loss: the receiver was asleep (or the channel
    decided the message arrives at a round where the receiver is asleep).
    Counted in ``metrics.messages_lost``.
``drop``
    The channel destroyed the message in flight (fault injection).
    Counted in ``metrics.messages_dropped``.
``delay``
    The message is re-scheduled to arrive at ``Outcome.deliver_round``;
    the receiver must be awake *in that round* to hear it, otherwise it is
    lost — exactly the sleeping-model rule applied at arrival time.
    Counted in ``metrics.messages_delayed`` (plus ``delivered``/``lost``
    when it resolves).

Additionally an outcome may carry ``duplicate_round``: the channel emits
an *extra* copy of the message scheduled for that round (counted in
``metrics.messages_duplicated``), subject to the same awake-at-arrival
rule.

Crash-stop failures use a second hook: :meth:`ChannelModel.crash_round`
returns the round at which a node permanently fails (or ``None``).  A
crashed node fails at the *start* of that round, before transmitting: its
pending sends are discarded, it executes no further protocol steps, and it
never reports a result — downstream validation then classifies the run
(see :func:`repro.graphs.verify_or_diagnose`).

Determinism
-----------
Channels draw randomness from a :class:`random.Random` handed to
:meth:`ChannelModel.reset` by the engine, seeded from the simulation's
master seed (``f"{seed}/transport"``).  Two runs with the same graph,
seed, and channel spec therefore inject byte-identical faults — the same
messages drop, the same copies delay — which is what makes fault sweeps
cacheable and resumable by the orchestrator.

Channel specs
-------------
:func:`parse_channel_spec` turns the compact strings used by the CLI and
the orchestrator grid axis into channel instances::

    perfect                 the default (also: None / "")
    drop:0.05               each message independently dropped w.p. 0.05
    delay:3                 each message delayed by uniform{0..3} rounds
    dup:0.1                 w.p. 0.1 an extra copy arrives one round late
    crash:2@50              2 seeded-randomly chosen nodes die at round 50
    drop:0.01+crash:1@40    '+' composes models (first fault wins)
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Outcome:
    """What the channel decided for one transmitted message.

    ``kind`` is one of ``"deliver"``, ``"lose"``, ``"drop"``, ``"delay"``.
    ``deliver_round`` is set for ``delay`` outcomes; ``duplicate_round``
    (on any kind) schedules an extra copy of the message.
    """

    kind: str
    deliver_round: Optional[int] = None
    duplicate_round: Optional[int] = None


#: Shared singleton outcomes for the overwhelmingly common cases, so the
#: per-message cost of a channel decision is one attribute load, not an
#: allocation.
DELIVERED = Outcome("deliver")
LOST = Outcome("lose")
DROPPED = Outcome("drop")


def _sleeping_policy(receiver_awake: bool) -> Outcome:
    """The baseline sleeping-model rule: awake receivers hear, others lose."""
    return DELIVERED if receiver_awake else LOST


class ChannelModel:
    """Base class / interface for message-delivery policies.

    Subclasses override :meth:`deliver` (and optionally
    :meth:`crash_round`).  ``is_perfect`` is a class-level flag: when true
    *and* no observers are attached, the engine keeps its inlined
    fast-path round loop, so the default configuration pays nothing for
    this layer's existence.
    """

    #: True only for :class:`PerfectChannel`: enables the engine fast path.
    is_perfect = False

    def reset(self, node_ids: Sequence[int], rng: Random) -> None:
        """Called once per run, before round 1.

        ``node_ids`` is the sorted node population; ``rng`` is a fresh
        seed-derived generator this run's fault decisions must come from
        (unless the channel was constructed with an explicit ``rng``).
        """

    def deliver(
        self,
        round_number: int,
        sender: int,
        port: int,
        payload: Any,
        bits: int,
        receiver_awake: bool,
    ) -> Outcome:
        """Decide the fate of one message (see module docstring)."""
        return _sleeping_policy(receiver_awake)

    def crash_round(self, node_id: int) -> Optional[int]:
        """Round at which ``node_id`` crash-stops, or ``None`` (never)."""
        return None

    def describe(self) -> str:
        """Short spec-style description (used in logs and records)."""
        return type(self).__name__


class PerfectChannel(ChannelModel):
    """Today's semantics, verbatim: awake receivers hear, sleepers lose.

    This is the default channel and is byte-identical to the pre-transport
    engine — the golden metrics/trace tests in
    ``tests/sim/test_transport.py`` pin that equivalence.
    """

    is_perfect = True

    def describe(self) -> str:
        return "perfect"


class _SeededChannel(ChannelModel):
    """Shared plumbing for channels that draw randomness.

    An ``rng`` passed at construction wins; otherwise the engine's
    seed-derived generator from :meth:`reset` is used, which is what makes
    repeated runs of the same seed inject identical faults.
    """

    def __init__(self, rng: Optional[Random] = None) -> None:
        self._own_rng = rng
        self._rng: Random = rng if rng is not None else Random(0)

    def reset(self, node_ids: Sequence[int], rng: Random) -> None:
        self._rng = self._own_rng if self._own_rng is not None else rng


class DropChannel(_SeededChannel):
    """Drop each message independently with probability ``p``."""

    def __init__(self, p: float, rng: Optional[Random] = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"drop probability must be in [0, 1], got {p}")
        super().__init__(rng)
        self.p = float(p)

    def deliver(self, round_number, sender, port, payload, bits, receiver_awake):
        if self._rng.random() < self.p:
            return DROPPED
        return _sleeping_policy(receiver_awake)

    def describe(self) -> str:
        return f"drop:{self.p:g}"


class DelayChannel(_SeededChannel):
    """Delay each message by uniform ``{0, ..., max_delay}`` rounds.

    A zero draw is an ordinary same-round delivery.  A positive draw
    re-schedules the message with a deliver-at round; the receiver must be
    awake in exactly that round, otherwise the message is lost — delay
    composes with the sleeping-loss rule rather than replacing it.
    """

    def __init__(self, max_delay: int, rng: Optional[Random] = None) -> None:
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        super().__init__(rng)
        self.max_delay = int(max_delay)

    def deliver(self, round_number, sender, port, payload, bits, receiver_awake):
        delay = self._rng.randint(0, self.max_delay) if self.max_delay else 0
        if delay == 0:
            return _sleeping_policy(receiver_awake)
        return Outcome("delay", deliver_round=round_number + delay)

    def describe(self) -> str:
        return f"delay:{self.max_delay}"


class DuplicateChannel(_SeededChannel):
    """Deliver normally, plus (w.p. ``p``) an extra copy ``lag`` rounds late.

    The extra copy obeys the awake-at-arrival rule, so against the paper's
    protocols — which rarely wake two rounds in a row — most duplicates
    resolve to losses; against chatty protocols they land as stale
    payloads and probe idempotence.
    """

    def __init__(
        self, p: float, lag: int = 1, rng: Optional[Random] = None
    ) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"duplicate probability must be in [0, 1], got {p}")
        if lag < 1:
            raise ValueError(f"duplicate lag must be >= 1, got {lag}")
        super().__init__(rng)
        self.p = float(p)
        self.lag = int(lag)

    def deliver(self, round_number, sender, port, payload, bits, receiver_awake):
        base = _sleeping_policy(receiver_awake)
        if self._rng.random() < self.p:
            return Outcome(base.kind, duplicate_round=round_number + self.lag)
        return base

    def describe(self) -> str:
        return f"dup:{self.p:g}"


class CrashSchedule(ChannelModel):
    """Crash-stop failures: kill given nodes at given rounds.

    Construct with an explicit ``{node_id: round}`` plan, or via
    :meth:`CrashSchedule.random` to kill ``count`` seeded-randomly chosen
    nodes at one round (the choice is made at :meth:`reset`, from the
    engine's seed-derived generator, so it is reproducible).

    Delivery itself is the baseline sleeping policy — a crashed node is
    simply never awake again, so messages addressed to it are lost through
    the ordinary rule.
    """

    def __init__(
        self, crashes: Optional[Dict[int, int]] = None, rng: Optional[Random] = None
    ) -> None:
        for node, round_number in (crashes or {}).items():
            if round_number < 1:
                raise ValueError(
                    f"crash round for node {node} must be >= 1, got {round_number}"
                )
        self._explicit = dict(crashes or {})
        self._random_kills: List[Tuple[int, int]] = []  # (count, round)
        self._own_rng = rng
        self._plan: Dict[int, int] = dict(self._explicit)

    @classmethod
    def random(
        cls, count: int, round_number: int, rng: Optional[Random] = None
    ) -> "CrashSchedule":
        """Kill ``count`` randomly chosen nodes at ``round_number``."""
        if count < 0:
            raise ValueError(f"crash count must be >= 0, got {count}")
        if round_number < 1:
            raise ValueError(f"crash round must be >= 1, got {round_number}")
        schedule = cls(rng=rng)
        schedule._random_kills.append((int(count), int(round_number)))
        return schedule

    def reset(self, node_ids: Sequence[int], rng: Random) -> None:
        self._plan = dict(self._explicit)
        if not self._random_kills:
            return
        draw = self._own_rng if self._own_rng is not None else rng
        for count, round_number in self._random_kills:
            pool = [nid for nid in node_ids if nid not in self._plan]
            for victim in sorted(draw.sample(pool, min(count, len(pool)))):
                self._plan[victim] = round_number

    def crash_round(self, node_id: int) -> Optional[int]:
        return self._plan.get(node_id)

    @property
    def plan(self) -> Dict[int, int]:
        """The resolved ``{node_id: crash_round}`` plan (after reset)."""
        return dict(self._plan)

    def describe(self) -> str:
        if self._random_kills:
            parts = [f"{c}@{r}" for c, r in self._random_kills]
            return "crash:" + ",".join(parts)
        parts = [f"{n}@{r}" for n, r in sorted(self._explicit.items())]
        return "crash:" + ",".join(parts)


class CompositeChannel(ChannelModel):
    """Chain several channel models; the first injected fault wins.

    Each part sees the message in order.  A part returning a fault outcome
    (``drop``/``delay``/anything carrying a duplicate) short-circuits the
    chain; if every part defers, the baseline sleeping policy applies.
    Crash plans are merged (earliest crash round wins per node).
    """

    def __init__(self, parts: Sequence[ChannelModel]) -> None:
        if not parts:
            raise ValueError("CompositeChannel needs at least one part")
        self.parts: Tuple[ChannelModel, ...] = tuple(parts)

    def reset(self, node_ids: Sequence[int], rng: Random) -> None:
        # Each part gets its own stream derived from the run's transport
        # seed, so adding a part never perturbs the draws of the others.
        for index, part in enumerate(self.parts):
            part.reset(node_ids, Random(f"{rng.random()}/{index}"))

    def deliver(self, round_number, sender, port, payload, bits, receiver_awake):
        for part in self.parts:
            outcome = part.deliver(
                round_number, sender, port, payload, bits, receiver_awake
            )
            if outcome.kind in ("drop", "delay") or outcome.duplicate_round:
                return outcome
        return _sleeping_policy(receiver_awake)

    def crash_round(self, node_id: int) -> Optional[int]:
        rounds = [
            r for r in (part.crash_round(node_id) for part in self.parts)
            if r is not None
        ]
        return min(rounds) if rounds else None

    def describe(self) -> str:
        return "+".join(part.describe() for part in self.parts)


# ----------------------------------------------------------------------
# Spec strings (the CLI / orchestrator grid-axis syntax)
# ----------------------------------------------------------------------

#: Spec syntax examples, surfaced in ``--help`` and error messages.
CHANNEL_SPEC_EXAMPLES = (
    "perfect",
    "drop:0.05",
    "delay:3",
    "dup:0.1",
    "crash:2@50",
    "drop:0.01+crash:1@40",
)


def _parse_crash_arg(arg: str) -> CrashSchedule:
    kills: List[Tuple[int, int]] = []
    for chunk in arg.split(","):
        if "@" not in chunk:
            raise ValueError(
                f"crash spec {chunk!r} must look like COUNT@ROUND (e.g. crash:2@50)"
            )
        count_text, round_text = chunk.split("@", 1)
        kills.append((int(count_text), int(round_text)))
    if not kills:
        raise ValueError("crash spec needs at least one COUNT@ROUND entry")
    schedule = CrashSchedule.random(*kills[0])
    for count, round_number in kills[1:]:
        schedule._random_kills.append((count, round_number))
    return schedule


def _parse_one(part: str) -> ChannelModel:
    text = part.strip()
    if not text or text == "perfect":
        return PerfectChannel()
    kind, _, arg = text.partition(":")
    try:
        if kind == "drop":
            return DropChannel(float(arg))
        if kind == "delay":
            return DelayChannel(int(arg))
        if kind in ("dup", "duplicate"):
            return DuplicateChannel(float(arg))
        if kind == "crash":
            return _parse_crash_arg(arg)
    except ValueError as error:
        raise ValueError(f"bad channel spec {text!r}: {error}") from error
    raise ValueError(
        f"unknown channel kind {kind!r} in spec {text!r}; "
        f"examples: {', '.join(CHANNEL_SPEC_EXAMPLES)}"
    )


def parse_channel_spec(spec: Optional[str]) -> ChannelModel:
    """Build a channel model from a spec string (see module docstring).

    ``None`` and ``""`` and ``"perfect"`` all yield :class:`PerfectChannel`;
    ``'+'`` joins parts into a :class:`CompositeChannel`.
    """
    if spec is None or not spec.strip() or spec.strip() == "perfect":
        return PerfectChannel()
    parts = [_parse_one(part) for part in spec.split("+")]
    meaningful = [part for part in parts if not part.is_perfect]
    if not meaningful:
        return PerfectChannel()
    if len(meaningful) == 1:
        return meaningful[0]
    return CompositeChannel(meaningful)


def validate_channel_spec(spec: Optional[str]) -> Optional[str]:
    """Parse-check a spec and return it normalised (``None`` for perfect).

    The orchestrator uses this at grid-expansion time so a typo in one
    fault axis value fails fast, before any job runs.
    """
    channel = parse_channel_spec(spec)
    if channel.is_perfect:
        return None
    return spec.strip() if spec else None
