"""``repro.telemetry`` — fleet observability for the service layer.

Where :mod:`repro.obs` instruments a *single simulation run* (spans,
per-phase awake accounting), this package instruments the *service
path* a submission travels — submit → queue → pool → engine — so a
daemon serving many users is operable rather than a black box:

:mod:`repro.telemetry.logs`
    Trace IDs (a context-var token minted per submission and propagated
    across threads and worker processes) plus JSON/text log formatters
    and :func:`configure_logging` (``repro serve --log-json``).
:mod:`repro.telemetry.promtext`
    Prometheus text-format exposition over the existing
    :class:`repro.obs.MetricsRegistry` — deterministic rendering, a
    parser, and a schema validator.  Served at ``GET /metrics``.
:mod:`repro.telemetry.flight`
    The per-job flight recorder: a bounded NDJSON lifecycle event log
    stored next to each job's run store and exposed at
    ``GET /jobs/<hash>/events``.
:mod:`repro.telemetry.dashboard`
    The ``repro top`` live terminal dashboard over ``/stats`` +
    ``/metrics`` (imported lazily by the CLI — not re-exported here to
    keep this package import-light).

Telemetry is strictly additive: with everything enabled, run records
stay byte-identical to a telemetry-off run
(``RunRecord.fingerprint()``) — trace IDs live only in the volatile
``telemetry`` block, log lines, and flight events.
"""

from .flight import (
    DEFAULT_MAX_EVENTS,
    FLIGHT_EVENTS,
    FlightRecorder,
    flight_path_for,
    load_flight_events,
)
from .logs import (
    ACCESS_LOGGER_NAME,
    JsonLogFormatter,
    TextLogFormatter,
    access_logger,
    configure_logging,
    current_trace_id,
    log_access,
    new_trace_id,
    reset_trace_id,
    set_trace_id,
    trace_context,
)
from .promtext import (
    PROMETHEUS_CONTENT_TYPE,
    escape_label_value,
    metric_name,
    parse_prometheus,
    render_prometheus,
    validate_promtext,
)

__all__ = [
    "ACCESS_LOGGER_NAME",
    "DEFAULT_MAX_EVENTS",
    "FLIGHT_EVENTS",
    "FlightRecorder",
    "JsonLogFormatter",
    "PROMETHEUS_CONTENT_TYPE",
    "TextLogFormatter",
    "access_logger",
    "configure_logging",
    "current_trace_id",
    "escape_label_value",
    "flight_path_for",
    "load_flight_events",
    "log_access",
    "metric_name",
    "new_trace_id",
    "parse_prometheus",
    "render_prometheus",
    "reset_trace_id",
    "set_trace_id",
    "trace_context",
    "validate_promtext",
]
