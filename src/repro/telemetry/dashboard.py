"""``repro top`` — a live terminal dashboard over ``/stats`` + ``/metrics``.

Polls a running ``repro serve`` daemon and renders a refreshing
single-screen view: queue depth and worker liveness, in-flight jobs with
progress bars and ETAs, dedupe/cache effectiveness, request throughput,
and p50/p95 request latency estimated from the Prometheus histogram
buckets.  ``--once`` renders a single frame (``--json`` emits the
underlying sample dict instead) so scripts and CI can scrape the same
view the operator sees.

Rates (req/s, jobs/s) are computed between consecutive polls when a
previous sample exists; the first frame (and ``--once``) falls back to
lifetime averages over the daemon's uptime.
"""

from __future__ import annotations

import json
import math
import sys
import time
from typing import Any, Dict, List, Optional, TextIO, Tuple

from .promtext import parse_prometheus

#: ANSI "clear screen, cursor home" — how the live view refreshes.
CLEAR_SCREEN = "\x1b[2J\x1b[H"


def quantile_from_buckets(
    buckets: List[Tuple[float, float]], quantile: float
) -> Optional[float]:
    """Estimate a quantile from cumulative ``(le, count)`` buckets.

    Returns the upper bound of the first bucket whose cumulative count
    reaches ``quantile * total`` (the standard Prometheus
    ``histogram_quantile`` bound-estimate, without interpolation), or
    ``None`` when the histogram is empty.  An answer in the final
    (``+Inf``) bucket reports the largest finite bound.
    """
    if not buckets:
        return None
    ordered = sorted(buckets)
    total = ordered[-1][1]
    if total <= 0:
        return None
    target = quantile * total
    finite = [bound for bound, _ in ordered if not math.isinf(bound)]
    for bound, cumulative in ordered:
        if cumulative >= target:
            if math.isinf(bound):
                return finite[-1] if finite else None
            return bound
    return finite[-1] if finite else None


def _histogram_buckets(
    samples: Dict[str, float], family: str
) -> List[Tuple[float, float]]:
    """Merge every labelset's cumulative buckets for one histogram family."""
    merged: Dict[float, float] = {}
    prefix = f"{family}_bucket{{"
    for key, value in samples.items():
        if not key.startswith(prefix):
            continue
        marker = 'le="'
        position = key.rfind(marker)
        if position < 0:
            continue
        le_text = key[position + len(marker):].split('"', 1)[0]
        le = math.inf if le_text == "+Inf" else float(le_text)
        merged[le] = merged.get(le, 0.0) + value
    return sorted(merged.items())


def _sum_family(samples: Dict[str, float], name: str) -> float:
    """Sum a family's samples across all labelsets."""
    total = 0.0
    for key, value in samples.items():
        if key == name or key.startswith(f"{name}{{"):
            total += value
    return total


def collect_top_sample(
    stats: Dict[str, Any], metrics_text: str, now: Optional[float] = None
) -> Dict[str, Any]:
    """Fuse one ``/stats`` payload and one ``/metrics`` page into a sample.

    Pure (given its inputs), so tests can feed canned payloads.  The
    returned dict is what ``repro top --once --json`` prints.
    """
    samples = parse_prometheus(metrics_text)
    requests_total = _sum_family(samples, "service_http_requests_total")
    latency = _histogram_buckets(samples, "service_http_request_seconds")
    queue_wait = _histogram_buckets(samples, "service_queue_wait_seconds")
    jobs = stats.get("jobs") or {}
    submissions = stats.get("submissions") or {}
    cache = stats.get("cache") or {}
    per_job = stats.get("per_job") or {}
    in_flight = []
    for job_id, job in sorted(per_job.items()):
        if job.get("status") != "running":
            continue
        progress = job.get("progress") or {}
        in_flight.append(
            {
                "job": job_id,
                "done": progress.get("done", 0),
                "total": progress.get("total", 0),
                "failed": progress.get("failed", 0),
                "eta_s": progress.get("eta_s"),
                "throughput_jobs_per_s": progress.get(
                    "throughput_jobs_per_s", 0.0
                ),
            }
        )
    uptime = float(stats.get("uptime_s") or 0.0)
    return {
        "time": time.time() if now is None else now,
        "uptime_s": uptime,
        "queue_depth": stats.get("queue_depth", 0),
        "workers": stats.get("workers") or {},
        "jobs": jobs,
        "in_flight": in_flight,
        "submissions": submissions,
        "coalesced": submissions.get("coalesced", 0),
        "cache_hit_rate": cache.get("hit_rate"),
        "store_skipped_lines": stats.get("store_skipped_lines", 0),
        "requests_total": requests_total,
        "requests_per_s": (requests_total / uptime) if uptime > 0 else 0.0,
        "latency_p50_s": quantile_from_buckets(latency, 0.50),
        "latency_p95_s": quantile_from_buckets(latency, 0.95),
        "queue_wait_p95_s": quantile_from_buckets(queue_wait, 0.95),
    }


def _rate(
    current: Dict[str, Any], previous: Optional[Dict[str, Any]]
) -> float:
    """Requests/s between two samples; lifetime average without a previous."""
    if previous is not None:
        dt = current["time"] - previous["time"]
        if dt > 0:
            delta = current["requests_total"] - previous["requests_total"]
            return max(0.0, delta / dt)
    return current["requests_per_s"]


def _bar(done: int, total: int, width: int = 24) -> str:
    if total <= 0:
        return "-" * width
    filled = int(round(width * min(1.0, done / total)))
    return "#" * filled + "-" * (width - filled)


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "?"
    if value < 1.0:
        return f"{value * 1000:.0f}ms"
    return f"{value:.1f}s"


def render_top(
    sample: Dict[str, Any],
    previous: Optional[Dict[str, Any]] = None,
    url: str = "",
) -> str:
    """Render one sample as the dashboard screen (plain text, no ANSI)."""
    workers = sample["workers"]
    jobs = sample["jobs"]
    lines = [
        f"repro top — {url}  (uptime {sample['uptime_s']:.0f}s)",
        "",
        (
            f"queue depth {sample['queue_depth']}   "
            f"workers {workers.get('alive', '?')}/{workers.get('configured', '?')}   "
            f"jobs total={jobs.get('total', 0)} running={jobs.get('running', 0)} "
            f"queued={jobs.get('queued', 0)} done={jobs.get('done', 0)} "
            f"failed={jobs.get('failed', 0)}"
        ),
        (
            f"req/s {_rate(sample, previous):.2f}   "
            f"latency p50 {_fmt_seconds(sample['latency_p50_s'])} "
            f"p95 {_fmt_seconds(sample['latency_p95_s'])}   "
            f"queue wait p95 {_fmt_seconds(sample['queue_wait_p95_s'])}"
        ),
        (
            f"submissions {sample['submissions'].get('total', 0)} "
            f"(coalesced {sample['coalesced']})   "
            + (
                f"cache hit rate {sample['cache_hit_rate']:.1%}   "
                if sample["cache_hit_rate"] is not None
                else "cache off   "
            )
            + f"store skipped lines {sample['store_skipped_lines']}"
        ),
        "",
    ]
    if sample["in_flight"]:
        lines.append("in-flight jobs:")
        for job in sample["in_flight"]:
            eta = job["eta_s"]
            lines.append(
                f"  {job['job'][:12]}  [{_bar(job['done'], job['total'])}] "
                f"{job['done']}/{job['total']}"
                + (f"  failed={job['failed']}" if job["failed"] else "")
                + f"  {job['throughput_jobs_per_s']:.1f} cell/s"
                + f"  eta {_fmt_seconds(eta)}"
            )
    else:
        lines.append("in-flight jobs: none")
    return "\n".join(lines)


def run_top(
    url: str,
    interval_s: float = 2.0,
    once: bool = False,
    json_output: bool = False,
    iterations: Optional[int] = None,
    stream: Optional[TextIO] = None,
) -> int:
    """Drive the dashboard loop against a live daemon; returns exit code.

    ``once`` renders a single frame; with ``json_output`` it prints the
    sample dict instead (the scripting interface CI uses).
    ``iterations`` bounds the live loop (``None`` = until interrupted).
    """
    from repro.service.client import ServiceClient, ServiceError

    out = stream if stream is not None else sys.stdout
    client = ServiceClient(url)
    previous: Optional[Dict[str, Any]] = None
    frame = 0
    while True:
        try:
            sample = collect_top_sample(client.stats(), client.metrics_text())
        except ServiceError as error:
            print(f"repro top: {error}", file=sys.stderr)
            return 2
        if json_output:
            print(json.dumps(sample, sort_keys=True), file=out)
        else:
            screen = render_top(sample, previous, url=url)
            if once:
                print(screen, file=out)
            else:
                print(f"{CLEAR_SCREEN}{screen}", file=out, flush=True)
        previous = sample
        frame += 1
        if once or (iterations is not None and frame >= iterations):
            return 0
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0
