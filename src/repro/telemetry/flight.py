"""Job flight recorder: a bounded per-job NDJSON event log.

Every submitted job gets one ``<hash>.events.ndjson`` file next to its
JSONL run store, appended to by the service as the job moves through its
lifecycle: ``submitted``, ``coalesced``, ``requeued``, ``dequeued``,
``cell_dispatched``, ``cell_finished``, ``cell_retried``,
``cell_crashed``, ``finalized``.  Each event carries the job's
``trace_id`` (the one minted at submission — the same ID on the access
log lines and worker log lines for that submission), a monotonic
``offset_ms`` since the recorder was opened, and a ``seq`` number.

The log is **bounded**: past ``max_events`` events, non-forced events
are counted in :attr:`FlightRecorder.dropped` instead of written, so a
pathological grid cannot grow a flight file without bound.  The
``finalized`` event is always written (``force=True``) and reports the
drop count, so a truncated recording is self-describing.

Appends are best-effort telemetry — an unwritable disk degrades to
counting drops, never to failing the job.  Reads go through
:func:`load_flight_events`, which (like ``RunStore.load``) skips torn
trailing lines from a crashed writer.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

#: Default per-job event cap.  Generous for real grids (a 1000-cell grid
#: emits ~2 events per cell) while bounding the file for runaway ones.
DEFAULT_MAX_EVENTS = 4096

#: The event vocabulary, in lifecycle order (cell events repeat).
FLIGHT_EVENTS = (
    "submitted",
    "coalesced",
    "requeued",
    "dequeued",
    "cell_dispatched",
    "cell_finished",
    "cell_retried",
    "cell_crashed",
    "finalized",
)


def flight_path_for(store_path: Union[str, Path]) -> Path:
    """The flight-recorder path paired with a job's JSONL run store."""
    store = Path(store_path)
    return store.with_name(f"{store.stem}.events.ndjson")


class FlightRecorder:
    """Append lifecycle events for one job to a bounded NDJSON file."""

    def __init__(
        self,
        path: Union[str, Path],
        trace_id: Optional[str] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.path = Path(path)
        self.trace_id = trace_id
        self.max_events = max(1, int(max_events))
        self.dropped = 0
        self._clock = clock
        self._origin = clock()
        self._seq = 0
        self._lock = threading.Lock()

    def record(self, event: str, force: bool = False, **fields: Any) -> bool:
        """Append one event; returns ``False`` when the cap dropped it.

        ``force`` bypasses the cap (used for ``finalized`` so the tail of
        a truncated recording still reports how it ended and how much was
        dropped).  Never raises on I/O errors — a failed append counts as
        a drop.
        """
        with self._lock:
            if self._seq >= self.max_events and not force:
                self.dropped += 1
                return False
            payload: Dict[str, Any] = {
                "seq": self._seq,
                "event": event,
                "offset_ms": round((self._clock() - self._origin) * 1000.0, 3),
            }
            if self.trace_id is not None:
                payload["trace_id"] = self.trace_id
            payload.update(fields)
            self._seq += 1
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(payload, sort_keys=True, default=str))
                    handle.write("\n")
            except OSError:
                self.dropped += 1
                return False
        return True

    @property
    def recorded(self) -> int:
        """Events written so far (drops excluded)."""
        return self._seq


def load_flight_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a flight file; tolerate (skip) torn or malformed lines."""
    target = Path(path)
    events: List[Dict[str, Any]] = []
    if not target.exists():
        return events
    with open(target, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue  # torn write from a crashed daemon
            if isinstance(payload, dict):
                events.append(payload)
    return events
