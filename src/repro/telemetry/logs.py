"""Correlated structured logging: trace IDs and a JSON log formatter.

A **trace ID** is a 16-hex-char token minted once per submission — at
``POST /jobs``, or by the ``batch``/``run`` CLI — and carried through
every layer the submission touches via a :mod:`contextvars` variable.
Whatever logs while the context is active (the HTTP access logger, the
queue, ``run_jobs``, a worker process seeded through the pool
initializer) stamps the same ID on its lines, so one ``grep`` (or one
``jq 'select(.trace_id == ...)'``) reconstructs a submission's whole
journey across threads and processes.

Two formatters share the stamping logic:

* :class:`JsonLogFormatter` — one JSON object per line (``ts``,
  ``level``, ``logger``, ``message``, ``trace_id``, plus any ``extra``
  fields the call site attached), for log pipelines.
* :class:`TextLogFormatter` — the human fallback, appending
  ``[trace:<id>]`` when a trace is active.

:func:`configure_logging` wires either onto the ``repro`` logger tree;
``repro serve --log-json/--log-file`` is the CLI entry point.

None of this touches simulation state: logging is volatile telemetry,
and runs are byte-identical with it on or off (see
``RunRecord.fingerprint`` and the service byte-identity tests).
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import logging
import uuid
from typing import Any, Dict, Iterator, Optional, TextIO, Union

#: The ambient trace ID for the current execution context (thread/task).
_TRACE_ID: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_trace_id", default=None
)

#: Logger all HTTP access records go through (see satellite: the server
#: must not swallow access logs).
ACCESS_LOGGER_NAME = "repro.service.access"


def new_trace_id() -> str:
    """Mint a fresh 16-hex-char trace ID."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> Optional[str]:
    """The trace ID active in this context, or ``None``."""
    return _TRACE_ID.get()


def set_trace_id(trace_id: Optional[str]) -> contextvars.Token:
    """Set the ambient trace ID; returns the token for ``reset_trace_id``."""
    return _TRACE_ID.set(trace_id)


def reset_trace_id(token: contextvars.Token) -> None:
    _TRACE_ID.reset(token)


@contextlib.contextmanager
def trace_context(trace_id: Optional[str] = None) -> Iterator[str]:
    """Run a block under a trace ID (minting one if not given)."""
    active = trace_id or new_trace_id()
    token = _TRACE_ID.set(active)
    try:
        yield active
    finally:
        _TRACE_ID.reset(token)


#: ``LogRecord`` attribute names that are plumbing, not payload — anything
#: else found on a record came from ``extra=`` and belongs in the output.
_RESERVED_RECORD_FIELDS = frozenset(
    (
        "args",
        "asctime",
        "created",
        "exc_info",
        "exc_text",
        "filename",
        "funcName",
        "levelname",
        "levelno",
        "lineno",
        "message",
        "module",
        "msecs",
        "msg",
        "name",
        "pathname",
        "process",
        "processName",
        "relativeCreated",
        "stack_info",
        "taskName",
        "thread",
        "threadName",
    )
)


def _record_extras(record: logging.LogRecord) -> Dict[str, Any]:
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _RESERVED_RECORD_FIELDS and not key.startswith("_")
    }


def _record_trace_id(record: logging.LogRecord) -> Optional[str]:
    """A record's trace ID: explicit ``extra`` wins, else the context's."""
    explicit = getattr(record, "trace_id", None)
    return explicit if explicit else current_trace_id()


class JsonLogFormatter(logging.Formatter):
    """Render each record as one sorted-key JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = _record_trace_id(record)
        if trace_id is not None:
            payload["trace_id"] = trace_id
        for key, value in _record_extras(record).items():
            payload.setdefault(key, value)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class TextLogFormatter(logging.Formatter):
    """Human-readable lines that still carry the trace correlation."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)s %(name)s %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        line = super().format(record)
        trace_id = _record_trace_id(record)
        if trace_id is not None:
            line = f"{line} [trace:{trace_id}]"
        return line


#: Marker attribute so repeated `configure_logging` calls replace only
#: the handlers this module installed (tests reconfigure freely).
_MANAGED_ATTR = "_repro_telemetry_handler"


def configure_logging(
    json_logs: bool = False,
    log_file: Optional[str] = None,
    level: int = logging.INFO,
    stream: Optional[TextIO] = None,
    logger: Union[str, logging.Logger] = "repro",
) -> logging.Logger:
    """Attach a structured-log handler to the ``repro`` logger tree.

    ``json_logs`` selects :class:`JsonLogFormatter`; ``log_file`` writes
    there instead of ``stream`` (default ``stderr``).  Re-invoking
    replaces previously installed handlers, so tests and long-lived
    daemons can reconfigure without duplicating output.
    """
    root = logging.getLogger(logger) if isinstance(logger, str) else logger
    for handler in list(root.handlers):
        if getattr(handler, _MANAGED_ATTR, False):
            root.removeHandler(handler)
            handler.close()
    handler: logging.Handler
    if log_file is not None:
        handler = logging.FileHandler(log_file, encoding="utf-8")
    else:
        handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLogFormatter() if json_logs else TextLogFormatter())
    setattr(handler, _MANAGED_ATTR, True)
    root.addHandler(handler)
    root.setLevel(level)
    return root


def access_logger() -> logging.Logger:
    """The logger HTTP access records are emitted on."""
    return logging.getLogger(ACCESS_LOGGER_NAME)


def log_access(
    method: str,
    path: str,
    status: int,
    duration_ms: float,
    trace_id: Optional[str] = None,
    **extra: Any,
) -> None:
    """Emit one structured access record (the server's per-request line)."""
    access_logger().info(
        '%s %s -> %d (%.1f ms)',
        method,
        path,
        status,
        duration_ms,
        extra={
            "method": method,
            "path": path,
            "status": status,
            "duration_ms": round(duration_ms, 3),
            "trace_id": trace_id or current_trace_id(),
            **extra,
        },
    )
