"""Prometheus text-format exposition over a :class:`MetricsRegistry`.

:func:`render_prometheus` turns the same instruments behind
``MetricsRegistry.dump()`` into the text exposition format version
0.0.4 that Prometheus (and every compatible scraper) understands:

* counters become ``<name>_total`` sample lines,
* gauges keep their name,
* histograms emit the full ``_bucket{le=...}`` / ``_sum`` / ``_count``
  family from the cumulative bucket counts the registry keeps
  (:data:`repro.obs.registry.DEFAULT_BUCKET_BOUNDS`).

Output is **deterministic**: metric families sort by rendered name and
labelsets sort by label tuples, so two identically-populated registries
render byte-identical pages — pinned by tests, and the property that
makes ``GET /metrics`` diffable in CI.

:func:`parse_prometheus` and :func:`validate_promtext` are the read
side, used by the ``repro top`` dashboard and the schema sanity tests
(no duplicate ``HELP``/``TYPE``, monotone cumulative buckets,
``le="+Inf"`` equal to ``_count``).
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.registry import Histogram, LabelSet, MetricsRegistry

#: The content type a conforming scrape endpoint must declare.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_FIX = re.compile(r"[^a-zA-Z0-9_]")

#: ``name{labels} value`` sample line (labels part optional).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)


def metric_name(name: str) -> str:
    """Sanitise a registry name (``service.queue_depth``) for Prometheus."""
    fixed = _NAME_FIX.sub("_", name)
    if not fixed or fixed[0].isdigit():
        fixed = f"_{fixed}"
    return fixed


def _label_name(name: str) -> str:
    fixed = _LABEL_FIX.sub("_", str(name))
    if not fixed or fixed[0].isdigit():
        fixed = f"_{fixed}"
    return fixed


def escape_label_value(value: Any) -> str:
    """Escape a label value per the exposition format rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels: LabelSet, extra: Optional[List[Tuple[str, Any]]] = None) -> str:
    pairs = [(_label_name(key), escape_label_value(value)) for key, value in labels]
    if extra:
        pairs.extend((key, escape_label_value(value)) for key, value in extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return f"{{{body}}}"


def _format_value(value: float) -> str:
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_bound(bound: float) -> str:
    return _format_value(bound)


def _family(
    lines: List[str], name: str, kind: str, help_text: Optional[str]
) -> None:
    lines.append(f"# HELP {name} {help_text or name}")
    lines.append(f"# TYPE {name} {kind}")


def render_prometheus(
    registry: MetricsRegistry,
    help_texts: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a registry as a Prometheus text exposition page.

    Deterministic: families sorted by rendered name, samples sorted by
    labelset.  ``help_texts`` maps *registry* names (dotted) to HELP
    strings; unknown names fall back to the metric name itself.
    """
    helps = dict(help_texts or {})
    lines: List[str] = []

    # One family per rendered name; merge families across instrument
    # kinds is impossible (names are unique per kind in the registry),
    # but counters and gauges could sanitise to the same rendered name —
    # suffixing counters with _total keeps them disjoint in practice.
    families: List[Tuple[str, str, str, List[str]]] = []

    for name, counter in registry.counters().items():
        rendered = f"{metric_name(name)}_total"
        samples = [
            f"{rendered}{_render_labels(labels)} {_format_value(value)}"
            for labels, value in sorted(counter.items())
        ]
        families.append((rendered, "counter", helps.get(name, ""), samples))

    for name, gauge in registry.gauges().items():
        rendered = metric_name(name)
        samples = [
            f"{rendered}{_render_labels(labels)} {_format_value(value)}"
            for labels, value in sorted(gauge.items())
        ]
        families.append((rendered, "gauge", helps.get(name, ""), samples))

    for name, histogram in registry.histograms().items():
        rendered = metric_name(name)
        samples: List[str] = []
        for labels, bucket in sorted(histogram.items()):
            for bound, count in bucket.buckets():
                samples.append(
                    f"{rendered}_bucket"
                    f"{_render_labels(labels, [('le', _format_bound(bound))])}"
                    f" {count}"
                )
            samples.append(
                f"{rendered}_bucket{_render_labels(labels, [('le', '+Inf')])}"
                f" {bucket.count}"
            )
            samples.append(
                f"{rendered}_sum{_render_labels(labels)}"
                f" {_format_value(bucket.sum)}"
            )
            samples.append(
                f"{rendered}_count{_render_labels(labels)} {bucket.count}"
            )
        families.append((rendered, "histogram", helps.get(name, ""), samples))

    for rendered, kind, help_text, samples in sorted(families):
        if not samples:
            continue
        _family(lines, rendered, kind, help_text or None)
        lines.extend(samples)
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse a text exposition page into ``{"name{labels}": value}``.

    The inverse of :func:`render_prometheus` as far as the dashboard
    needs: comments are skipped, labels are kept as the raw rendered
    string (sorted by the renderer, so keys are stable).
    """
    samples: Dict[str, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable sample line: {line!r}")
        name = match.group("name")
        labels = match.group("labels")
        key = f"{name}{{{labels}}}" if labels else name
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        samples[key] = value
    return samples


def _bucket_le(key: str) -> Optional[float]:
    match = re.search(r'le="([^"]*)"', key)
    if match is None:
        return None
    text = match.group(1)
    return math.inf if text == "+Inf" else float(text)


def validate_promtext(text: str) -> int:
    """Schema sanity check over a text exposition page; returns sample count.

    Raises ``ValueError`` on: duplicate ``HELP``/``TYPE`` for one family,
    a sample line that does not parse, unknown metric names without a
    TYPE, non-monotone cumulative histogram buckets, or an ``le="+Inf"``
    bucket that disagrees with the family's ``_count``.
    """
    typed: Dict[str, str] = {}
    helped: Dict[str, bool] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if name in typed:
                raise ValueError(f"duplicate TYPE for {name}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"unknown TYPE {kind!r} for {name}")
            typed[name] = kind
        elif line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name = rest.split(" ", 1)[0]
            if helped.get(name):
                raise ValueError(f"duplicate HELP for {name}")
            helped[name] = True

    samples = parse_prometheus(text)

    def base_name(key: str) -> str:
        return key.split("{", 1)[0]

    for key in samples:
        name = base_name(key)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
                break
        if family not in typed:
            raise ValueError(f"sample {key!r} has no TYPE declaration")
        if not _NAME_OK.match(name):
            raise ValueError(f"invalid metric name {name!r}")

    # Histogram coherence: per labelset (minus le), cumulative counts are
    # non-decreasing in le, and the +Inf bucket equals _count.
    for family, kind in typed.items():
        if kind != "histogram":
            continue
        series: Dict[str, List[Tuple[float, float]]] = {}
        for key, value in samples.items():
            if base_name(key) != f"{family}_bucket":
                continue
            le = _bucket_le(key)
            if le is None:
                raise ValueError(f"bucket sample {key!r} has no le label")
            stripped = re.sub(r'(,?)le="[^"]*"(,?)', _strip_le_sub, key)
            series.setdefault(stripped, []).append((le, value))
        for stripped, points in series.items():
            points.sort()
            counts = [count for _, count in points]
            if any(b < a for a, b in zip(counts, counts[1:])):
                raise ValueError(
                    f"non-monotone histogram buckets for {stripped}"
                )
            if not points or not math.isinf(points[-1][0]):
                raise ValueError(f"missing +Inf bucket for {stripped}")
            count_key = stripped.replace(
                f"{family}_bucket", f"{family}_count", 1
            ).replace("{}", "")
            if count_key not in samples:
                raise ValueError(f"missing _count for {stripped}")
            if samples[count_key] != points[-1][1]:
                raise ValueError(
                    f"+Inf bucket != _count for {stripped} "
                    f"({points[-1][1]} != {samples[count_key]})"
                )
    return len(samples)


def _strip_le_sub(match: "re.Match[str]") -> str:
    """Drop the ``le`` pair, keeping exactly one comma when it was interior."""
    return "," if match.group(1) and match.group(2) else ""
