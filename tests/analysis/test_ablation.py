"""Coin-flip ablation: merge-component diameters with vs without pruning."""

from __future__ import annotations

from repro.analysis import boruvka_merge_structure, worst_merge_diameter
from repro.graphs import (
    adversarial_moe_chain,
    mst_weight_set,
    random_connected_graph,
)


class TestMergeStructure:
    def test_unrestricted_chain_has_linear_diameter(self):
        """On the adversarial chain every MOE points right: the first
        unrestricted phase merges one component of diameter Θ(n)."""
        graph = adversarial_moe_chain(32, seed=1)
        stats = boruvka_merge_structure(graph, restricted=False, seed=0)
        assert stats[0].max_component_diameter >= graph.n - 2

    def test_restricted_components_are_stars(self):
        """Coin pruning caps merge components at diameter 2 — always."""
        for seed in range(5):
            graph = adversarial_moe_chain(32, seed=seed)
            stats = boruvka_merge_structure(graph, restricted=True, seed=seed)
            assert worst_merge_diameter(stats) <= 2

    def test_restricted_stars_on_random_graphs_too(self):
        graph = random_connected_graph(48, 0.1, seed=2)
        stats = boruvka_merge_structure(graph, restricted=True, seed=3)
        assert worst_merge_diameter(stats) <= 2

    def test_unrestricted_boruvka_few_phases(self):
        graph = random_connected_graph(64, 0.1, seed=4)
        stats = boruvka_merge_structure(graph, restricted=False, seed=0)
        # Classical Borůvka halves fragments per phase: <= log2(n) phases.
        assert len(stats) <= 7

    def test_restricted_reduces_fragments_every_phase(self):
        graph = random_connected_graph(32, 0.1, seed=5)
        stats = boruvka_merge_structure(graph, restricted=True, seed=1)
        for entry in stats[:-1]:
            assert entry.fragments_after <= entry.fragments_before

    def test_both_policies_terminate_with_one_fragment(self):
        graph = random_connected_graph(24, 0.15, seed=6)
        for restricted in (False, True):
            stats = boruvka_merge_structure(graph, restricted=restricted, seed=2)
            assert stats[-1].fragments_after == 1

    def test_max_phases_cap(self):
        graph = random_connected_graph(24, 0.15, seed=7)
        stats = boruvka_merge_structure(
            graph, restricted=True, seed=0, max_phases=2
        )
        assert len(stats) <= 2
