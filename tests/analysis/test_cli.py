"""CLI smoke tests (argument parsing and end-to-end subcommands)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "randomized"
        assert args.graph == "gnp"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "quantum"])


class TestSubcommands:
    def test_run_randomized(self, capsys):
        assert main(["run", "--graph", "ring", "--n", "16", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "correct MST      : True" in out

    def test_run_deterministic_logstar(self, capsys):
        code = main(
            [
                "run",
                "--algorithm",
                "deterministic",
                "--coloring",
                "log-star",
                "--graph",
                "path",
                "--n",
                "10",
            ]
        )
        assert code == 0
        assert "Deterministic-MST" in capsys.readouterr().out

    def test_run_traditional(self, capsys):
        assert main(["run", "--algorithm", "traditional", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "Traditional-GHS" in out

    def test_run_spanning_tree(self, capsys):
        assert main(["run", "--algorithm", "spanning-tree", "--n", "12"]) == 0
        assert "spanning tree    : True" in capsys.readouterr().out

    def test_table1(self, capsys):
        code = main(
            [
                "table1",
                "--sizes",
                "8",
                "16",
                "--seeds",
                "1",
                "--algorithms",
                "Randomized-MST",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Randomized-MST" in out and "awake =" in out

    def test_walkthrough(self, capsys):
        assert main(["walkthrough"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Figure 5" in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "--quick", "--only", "fig2_5"]) == 0
        assert "fig2_5" in capsys.readouterr().out

    def test_run_with_save_trace(self, tmp_path, capsys):
        target = tmp_path / "run.jsonl"
        code = main(
            ["run", "--graph", "ring", "--n", "8", "--save-trace", str(target)]
        )
        assert code == 0
        assert "trace            :" in capsys.readouterr().out
        from repro.sim import load_trace

        loaded = load_trace(target)
        assert len(loaded.trace) > 0
