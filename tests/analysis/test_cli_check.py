"""CLI ``check`` subcommand and ``run --monitors`` plumbing."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_check_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.algorithm == "randomized"
        assert args.monitors == "all"
        assert args.faults is None
        assert not args.sweep

    def test_check_sweep_flags(self):
        args = build_parser().parse_args(
            ["check", "--sweep", "--sizes", "8", "16", "--seed-range", "2",
             "--algorithms", "deterministic"]
        )
        assert args.sweep
        assert args.sizes == [8, 16]
        assert args.seed_range == 2
        assert args.algorithms == ["deterministic"]

    def test_run_accepts_monitors(self):
        args = build_parser().parse_args(
            ["run", "--monitors", "star-merge"]
        )
        assert args.monitors == "star-merge"


class TestCheckSingle:
    def test_perfect_channel_cell_passes(self, capsys):
        rc = main(["check", "--algorithm", "randomized", "--graph", "gnp",
                   "--n", "12", "--seed", "1", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["outcome"] == "correct"
        assert payload["violations"] == 0
        assert payload["first_invariant"] is None
        assert payload["checks_run"] > 0
        assert payload["faults"] is None
        assert payload["monitors"]
        assert payload["report"]["violations"] == []

    def test_fault_cell_names_first_invariant(self, capsys):
        rc = main(["check", "--algorithm", "randomized", "--graph", "gnp",
                   "--n", "24", "--seed", "3", "--faults", "drop:0.02",
                   "--json"])
        # Faulted cells report; they do not fail the command.
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["outcome"] == "detected_wrong"
        assert payload["first_invariant"] == "star-merge"
        assert payload["violations"] >= 1
        assert payload["crashed_nodes"] == [4]

    def test_monitors_off_is_an_error(self, capsys):
        rc = main(["check", "--monitors", "off"])
        assert rc == 2
        assert "at least one monitor" in capsys.readouterr().err

    def test_unknown_monitor_is_an_error(self, capsys):
        rc = main(["check", "--monitors", "warp-core"])
        assert rc == 2
        assert "unknown monitor" in capsys.readouterr().err

    def test_output_file_written(self, tmp_path, capsys):
        target = tmp_path / "cell.json"
        rc = main(["check", "--graph", "path", "--n", "8", "--output",
                   str(target)])
        assert rc == 0
        payload = json.loads(target.read_text())
        assert payload["outcome"] == "correct"
        capsys.readouterr()


class TestCheckSweep:
    def test_small_sweep_is_clean(self, capsys):
        rc = main(["check", "--sweep", "--sizes", "8", "--seed-range", "1",
                   "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"]
        assert payload["failed"] == 0
        assert payload["total_violations"] == 0
        assert payload["total_checks"] > 0
        # gnp x one size x one seed x both algorithms.
        assert len(payload["cells"]) == 2
        for cell in payload["cells"]:
            assert cell["ok"]
            assert cell["checks_run"] > 0


class TestRunWithMonitors:
    def test_run_json_carries_monitor_report(self, capsys):
        rc = main(["run", "--algorithm", "randomized", "--graph", "path",
                   "--n", "8", "--monitors", "all", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["monitors"]["violations"] == []
        assert payload["monitors"]["checks_run"] > 0
        assert payload["monitors"]["first_invariant"] is None

    def test_run_bad_monitor_spec_rejected(self, capsys):
        rc = main(["run", "--monitors", "bogus"])
        assert rc == 2
        assert "unknown monitor" in capsys.readouterr().err
