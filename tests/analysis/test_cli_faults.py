"""The ``--faults`` CLI surface: run, trace, and batch under channel models."""

from __future__ import annotations

import json

from repro.cli import build_parser, main


class TestParser:
    def test_run_accepts_faults_spec(self):
        args = build_parser().parse_args(["run", "--faults", "drop:0.05"])
        assert args.faults == "drop:0.05"

    def test_batch_accepts_multiple_fault_specs(self):
        args = build_parser().parse_args(
            ["batch", "--faults", "perfect", "drop:0.01", "crash:1@30"]
        )
        assert args.faults == ["perfect", "drop:0.01", "crash:1@30"]

    def test_bench_fault_suite_available(self):
        args = build_parser().parse_args(["bench", "--suite", "fault"])
        assert args.suite == "fault"


class TestRunFaults:
    def test_bad_spec_exits_2(self, capsys):
        assert main(["run", "--faults", "gamma-rays:9000"]) == 2
        assert "examples:" in capsys.readouterr().err

    def test_survivable_fault_reports_outcome_and_counters(self, capsys):
        code = main(
            ["run", "--graph", "ring", "--n", "16", "--seed", "1",
             "--faults", "dup:0.2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults           : dup:0.2" in out
        assert "outcome          : correct" in out
        assert "fault counters" in out and "messages_duplicated=" in out

    def test_fatal_fault_reports_diagnosis_and_fails(self, capsys):
        code = main(
            ["run", "--graph", "ring", "--n", "16", "--seed", "1",
             "--faults", "crash:2@10", "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["faults"] == "crash:2@10"
        assert payload["outcome"] in ("detected_wrong", "hung", "silent_wrong")
        assert payload["error"]

    def test_json_payload_carries_fault_fields(self, capsys):
        code = main(
            ["run", "--graph", "ring", "--n", "16", "--seed", "1",
             "--faults", "dup:0.2", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["faults"] == "dup:0.2"
        assert payload["outcome"] == "correct"
        assert payload["correct"] is True

    def test_perfect_spec_output_identical_to_no_spec(self, capsys):
        base = ["run", "--graph", "ring", "--n", "16", "--seed", "1", "--json"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(base + ["--faults", "perfect"]) == 0
        assert capsys.readouterr().out == plain


class TestTraceFaults:
    def test_trace_embeds_fault_metadata(self, tmp_path, capsys):
        output = tmp_path / "trace.json"
        code = main(
            ["trace", "--algorithm", "randomized", "--graph", "ring",
             "--n", "16", "--seed", "1", "--faults", "dup:0.2",
             "--output", str(output), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["faults"] == "dup:0.2"
        chrome = json.loads(output.read_text())
        assert chrome["metadata"]["faults"] == "dup:0.2"
        names = {event.get("name") for event in chrome["traceEvents"]}
        assert "duplicate" in names or "delay" in names


    def test_trace_fatal_fault_reports_diagnosis(self, tmp_path, capsys):
        # A fault that kills the run must yield a clean diagnosis (exit 1),
        # not an unhandled traceback out of the trace subcommand.
        code = main(
            ["trace", "--algorithm", "randomized", "--graph", "ring",
             "--n", "16", "--seed", "1", "--faults", "crash:2@10",
             "--output", str(tmp_path / "t.json"), "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["faults"] == "crash:2@10"
        assert payload["outcome"] in ("detected_wrong", "hung", "silent_wrong")
        assert payload["error"]


class TestBatchFaults:
    def test_batch_fault_axis_end_to_end(self, tmp_path, capsys):
        store = tmp_path / "ledger.jsonl"
        code = main(
            ["batch", "--algorithms", "randomized", "--families", "ring",
             "--sizes", "8", "--seeds", "2", "--faults", "perfect", "dup:0.2",
             "--workers", "1", "--store", str(store), "--no-cache", "--json"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)["summary"]
        assert summary["failed"] == 0
        assert summary["total"] == 4
        rows = [json.loads(line) for line in store.read_text().splitlines()]
        records = [row["metrics"] for row in rows if row.get("status") == "ok"]
        faulted = [r for r in records if r.get("faults")]
        plain = [r for r in records if not r.get("faults")]
        assert len(faulted) == 2 and len(plain) == 2
        assert all(r["outcome"] == "correct" for r in faulted)
        assert all("outcome" not in r for r in plain)

    def test_batch_rejects_bad_fault_spec(self, capsys):
        code = main(
            ["batch", "--faults", "drop:2", "--sizes", "8", "--seeds", "1"]
        )
        assert code == 2
        assert "examples:" in capsys.readouterr().err
