"""CLI problem axis: --problem on run/check/batch/trace, and ``compare``."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_problem_defaults_to_mst(self):
        args = build_parser().parse_args(["run"])
        assert args.problem == "mst"

    def test_run_rejects_unknown_problem(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--problem", "coloring"])

    def test_batch_grid_gains_problem_axis(self):
        args = build_parser().parse_args(["batch", "--problem", "mis"])
        assert args.problem == "mis"

    def test_compare_defaults_to_acceptance_grid(self):
        args = build_parser().parse_args(["compare"])
        assert args.sizes == [64, 256, 1024]
        assert args.seeds == 3

    def test_bench_accepts_mis_suite(self):
        args = build_parser().parse_args(["bench", "--suite", "mis"])
        assert args.suite == "mis"


class TestRun:
    def test_run_problem_mis(self, capsys):
        code = main(
            ["run", "--problem", "mis", "--n", "16", "--monitors", "all"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Sleeping-MIS" in out
        assert "maximal independent set: True" in out
        assert "0 violation(s)" in out

    def test_algorithm_mis_implies_problem(self, capsys):
        code = main(["run", "--algorithm", "mis", "--n", "16", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["algorithm"] == "Sleeping-MIS"
        assert payload["problem"] == "mis"
        assert payload["correct"] is True

    def test_mis_array_engine_fails_fast(self, capsys):
        code = main(
            ["run", "--problem", "mis", "--n", "16", "--engine", "array"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "Sleeping-MIS" in err
        assert "only Randomized-MST is vectorized" in err

    def test_mst_output_unchanged(self, capsys):
        code = main(["run", "--graph", "ring", "--n", "16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "correct MST      : True" in out


class TestCheck:
    def test_check_problem_mis_attaches_mis_monitors(self, capsys):
        code = main(["check", "--problem", "mis", "--n", "16", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["algorithm"] == "Sleeping-MIS"
        assert payload["problem"] == "mis"
        assert "mis-independence" in payload["monitors"]
        assert payload["outcome"] == "correct"
        assert payload["violations"] == 0

    def test_check_sweep_mis(self, capsys):
        code = main(
            [
                "check", "--sweep", "--problem", "mis",
                "--sizes", "8", "--seed-range", "2", "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert [cell["algorithm"] for cell in payload["cells"]] == ["mis"] * 2
        assert payload["total_violations"] == 0


class TestBatch:
    def test_batch_problem_mis(self, capsys, tmp_path):
        store = tmp_path / "mis.jsonl"
        code = main(
            [
                "batch", "--problem", "mis", "--sizes", "8", "--seeds", "2",
                "--monitors", "all", "--no-cache", "--quiet",
                "--store", str(store), "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["summary"]["failed"] == 0
        records = payload["records"]
        assert len(records) == 2
        for record in records:
            assert record["spec"]["problem"] == "mis"
            assert record["spec"]["algorithm"] == "Sleeping-MIS"
            assert record["metrics"]["correct"] is True
            assert record["metrics"]["violations"] == 0


class TestTrace:
    def test_trace_problem_mis(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        code = main(
            [
                "trace", "--problem", "mis", "--n", "16",
                "--output", str(out_path), "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["algorithm"] == "Sleeping-MIS"
        assert payload["identity_ok"] is True
        assert out_path.exists()


class TestCompare:
    def test_compare_small_grid(self, capsys, tmp_path):
        out_path = tmp_path / "compare.json"
        code = main(
            [
                "compare", "--sizes", "8", "16", "--seeds", "1",
                "--output", str(out_path), "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 1)  # tiny grids may not separate the curves
        assert set(payload["problems"]) == {"mst", "mis"}
        assert out_path.exists()
