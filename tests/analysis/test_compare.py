"""The cross-problem comparison artifact: generation, rendering, golden copy."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    COMPARE_SCHEMA,
    generate_problem_comparison,
    load_comparison,
    render_comparison,
    write_comparison,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
ARTIFACT = REPO_ROOT / "PROBLEMS_compare.json"


class TestGenerate:
    @pytest.fixture(scope="class")
    def payload(self):
        return generate_problem_comparison(
            sizes=[8, 16], seeds=[0], monitors="all"
        )

    def test_covers_every_registered_problem(self, payload):
        assert payload["schema"] == COMPARE_SCHEMA
        assert set(payload["problems"]) == {"mst", "mis"}

    def test_curves_carry_normalized_ratios(self, payload):
        for data in payload["problems"].values():
            assert [point["n"] for point in data["curve"]] == [8, 16]
            for point in data["curve"]:
                assert point["ratio"] == pytest.approx(
                    point["mean_max_awake"] / point["normalizer"], rel=1e-3
                )

    def test_monitored_cells_record_zero_violations(self, payload):
        for data in payload["problems"].values():
            assert data["violations"] == 0
            assert data["correct_cells"] == data["total_cells"] == 2
            # monitors="all" forces every cell off the array engine, so
            # each record carries a monitor verdict.
            assert all(
                cell["monitor_checks"] > 0 for cell in data["cells"]
            )

    def test_render_names_both_bounds(self, payload):
        table = render_comparison(payload)
        assert "O(log n)" in table
        assert "O(log log n)" in table
        assert "Sleeping-MIS" in table

    def test_roundtrip_and_schema_gate(self, payload, tmp_path):
        path = write_comparison(payload, tmp_path / "compare.json")
        assert load_comparison(path) == payload
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/9"}')
        with pytest.raises(ValueError, match="unexpected comparison schema"):
            load_comparison(bad)

    def test_problem_subset(self):
        payload = generate_problem_comparison(
            sizes=[8], seeds=[0], problems=["mis"]
        )
        assert set(payload["problems"]) == {"mis"}
        assert "mis_grows_slower" not in payload


class TestCommittedArtifact:
    """The acceptance criteria, asserted against the committed JSON."""

    @pytest.fixture(scope="class")
    def artifact(self):
        assert ARTIFACT.exists(), "PROBLEMS_compare.json must be committed"
        return load_comparison(ARTIFACT)

    def test_acceptance_grid(self, artifact):
        assert artifact["sizes"] == [64, 256, 1024]
        assert len(artifact["seeds"]) >= 3

    def test_mis_grows_strictly_slower(self, artifact):
        assert artifact["mis_grows_slower"] is True
        mis = artifact["problems"]["mis"]
        mst = artifact["problems"]["mst"]
        assert mis["growth"] < mst["growth"]
        # And in absolute terms: by n=1024 the curves are separated by
        # an order of magnitude.
        assert (
            10 * mis["curve"][-1]["mean_max_awake"]
            < mst["curve"][-1]["mean_max_awake"]
        )

    def test_every_cell_correct(self, artifact):
        for data in artifact["problems"].values():
            assert data["correct_cells"] == data["total_cells"]
            assert data["violations"] == 0
