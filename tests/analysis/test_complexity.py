"""Scaling-fit helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    best_model,
    doubling_ratios,
    fit_scaling,
    geometric_mean,
)


class TestFitScaling:
    def test_perfect_log_fit(self):
        ns = [16, 64, 256, 1024]
        ys = [5 * math.log2(n) for n in ns]
        fit = fit_scaling(ns, ys, "log")
        assert fit.constant == pytest.approx(5.0)
        assert fit.ratio_spread == pytest.approx(1.0)

    def test_perfect_nlog_fit(self):
        ns = [16, 64, 256]
        ys = [2.5 * n * math.log2(n) for n in ns]
        fit = fit_scaling(ns, ys, "nlog")
        assert fit.constant == pytest.approx(2.5)
        assert fit.is_bounded(1.01)

    def test_wrong_model_has_drift(self):
        ns = [16, 64, 256, 1024]
        linear = [3 * n for n in ns]
        fit = fit_scaling(ns, linear, "log")
        assert fit.ratio_spread > 10  # linear data vs log model drifts hard

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            fit_scaling([1, 2], [1, 2], "cubic")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_scaling([], [], "log")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            fit_scaling([1, 2], [1], "log")


class TestBestModel:
    def test_selects_true_shape(self):
        ns = [16, 64, 256, 1024]
        ys = [7 * n * math.log2(n) for n in ns]
        assert best_model(ns, ys, ["log", "linear", "nlog"]) == "nlog"

    def test_selects_log_for_log_data(self):
        ns = [16, 64, 256, 1024]
        ys = [4 * math.log2(n) + 1 for n in ns]
        assert best_model(ns, ys, ["log", "linear", "nlog"]) == "log"


class TestHelpers:
    def test_doubling_ratios(self):
        assert doubling_ratios([1, 2, 4], [10, 20, 40]) == [2.0, 2.0]

    def test_doubling_ratios_sorts_by_n(self):
        assert doubling_ratios([4, 1, 2], [40, 10, 20]) == [2.0, 2.0]

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
