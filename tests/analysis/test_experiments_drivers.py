"""Smoke tests for every EXPERIMENTS.md driver (quick mode).

These guarantee that `python -m repro.analysis.experiments` — the source of
every number in EXPERIMENTS.md — keeps working as the library evolves.
Heavier drivers are marked slow.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    experiment_ablation_coin,
    experiment_baseline_gap,
    experiment_corollary1,
    experiment_energy,
    experiment_fig1_reduction,
    experiment_fig2_5,
    experiment_lemma1,
    experiment_theorem3,
    experiment_theorem4,
)


class TestRegistry:
    def test_all_paper_artifacts_have_drivers(self):
        assert set(ALL_EXPERIMENTS) >= {
            "table1",
            "theorem3",
            "theorem4",
            "fig1",
            "fig2_5",
            "lemma1",
            "corollary1",
            "ablation_coin",
            "baseline_gap",
            "energy",
        }


class TestQuickDrivers:
    def test_fig2_5(self):
        outcome = experiment_fig2_5()
        assert outcome["u_tails"] == 5 and outcome["u_heads"] == 11

    def test_ablation_coin(self):
        outcome = experiment_ablation_coin(quick=True)
        assert outcome["moe_chain"]["restricted_worst_diameter"] <= 2

    def test_lemma1(self):
        outcome = experiment_lemma1(quick=True)
        assert outcome["fixed_mode_success"] == 1.0
        for family in outcome["contraction"].values():
            assert family["mean_ratio"] > 1.2

    def test_corollary1(self):
        outcome = experiment_corollary1(quick=True)
        rows = outcome["rows"]
        assert rows[-1]["fast_rounds"] > 5 * rows[0]["fast_rounds"]
        assert rows[-1]["logstar_rounds"] < 2 * rows[0]["logstar_rounds"]

    def test_energy(self):
        outcome = experiment_energy(quick=True)
        assert (
            outcome["traditional_worst_energy_mj"]
            > 10 * outcome["sleeping_worst_energy_mj"]
        )


@pytest.mark.slow
class TestHeavyDrivers:
    def test_theorem3(self):
        outcome = experiment_theorem3(quick=True)
        assert outcome["all_certificates_hold"]
        assert outcome["awake_fit"].is_bounded(4.0)

    def test_theorem4(self):
        outcome = experiment_theorem4(quick=True)
        assert outcome["min_product_per_n"] >= 1.0

    def test_fig1(self):
        outcome = experiment_fig1_reduction(quick=True)
        assert outcome["oracle_all_correct"]
        assert outcome["css_matches_sd"]

    def test_baseline_gap(self):
        outcome = experiment_baseline_gap(quick=True)
        assert all(row["gap"] > 10 for row in outcome["rows"])
