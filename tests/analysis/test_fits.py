"""Seed-level bootstrap fits (repro.analysis.fits)."""

from __future__ import annotations

import math

import pytest

from repro.analysis import fit_records, render_fit, seed_level_fit
from repro.analysis.complexity import MODELS


def synthetic_values(constant=25.0, sizes=(16, 64, 256), seeds=(0, 1, 2, 3)):
    """Per-seed measurements of ``constant * log2 n`` with seed jitter."""
    return {
        n: {
            seed: constant * math.log2(n) * (1.0 + 0.02 * (seed - 1.5))
            for seed in seeds
        }
        for n in sizes
    }


class TestSeedLevelFit:
    def test_recovers_the_planted_constant(self):
        fit = seed_level_fit(synthetic_values(25.0), model="log")
        assert fit.constant == pytest.approx(25.0, rel=0.05)
        assert fit.constant_low <= fit.constant <= fit.constant_high

    def test_deterministic_for_fixed_seed(self):
        values = synthetic_values()
        first = seed_level_fit(values, resamples=100, seed=3)
        second = seed_level_fit(values, resamples=100, seed=3)
        assert first == second

    def test_point_bands_bracket_observed_means(self):
        fit = seed_level_fit(synthetic_values())
        for point in fit.points:
            assert point.low <= point.mean <= point.high
            assert point.samples == 4

    def test_loglog_model_registered_and_fittable(self):
        assert "loglog" in MODELS
        values = {
            n: {seed: 4.0 * math.log2(math.log2(n)) for seed in (0, 1)}
            for n in (16, 256, 4096)
        }
        fit = seed_level_fit(values, model="loglog")
        assert fit.constant == pytest.approx(4.0, rel=0.05)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            seed_level_fit(synthetic_values(), model="cubic")

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="at least one size"):
            seed_level_fit({})

    def test_to_dict_shape(self):
        payload = seed_level_fit(synthetic_values()).to_dict()
        assert {"metric", "model", "constant", "constant_low",
                "constant_high", "points"} <= set(payload)
        assert all(
            {"n", "mean", "low", "high", "samples"} == set(point)
            for point in payload["points"]
        )


class TestFitRecords:
    @staticmethod
    def records(algorithm="A", metric_value=lambda n, s: 10.0 * math.log2(n)):
        return [
            {"algorithm": algorithm, "n": n, "seed": seed,
             "max_awake": metric_value(n, seed)}
            for n in (16, 64, 256)
            for seed in (0, 1)
        ]

    def test_groups_records_by_size_and_seed(self):
        fit = fit_records(self.records(), metric="max_awake", model="log")
        assert fit.constant == pytest.approx(10.0, rel=0.01)
        assert [point.n for point in fit.points] == [16, 64, 256]

    def test_algorithm_filter(self):
        mixed = self.records("A") + self.records(
            "B", lambda n, s: 99.0 * math.log2(n)
        )
        fit = fit_records(mixed, algorithm="B", model="log")
        assert fit.constant == pytest.approx(99.0, rel=0.01)

    def test_skips_records_missing_the_metric(self):
        records = self.records()
        records.append({"algorithm": "A", "n": 512, "seed": 0,
                        "max_awake": None})
        fit = fit_records(records)
        assert [point.n for point in fit.points] == [16, 64, 256]

    def test_no_usable_records_rejected(self):
        with pytest.raises(ValueError, match="no usable records"):
            fit_records([], metric="max_awake")

    def test_render_fit_mentions_constant_and_bands(self):
        fit = fit_records(self.records())
        text = render_fit("awake", fit.to_dict())
        assert "awake: max_awake" in text
        assert "log(n)" in text
        assert "n=" in text and "band [" in text
