"""Distributed per-phase history (the distributed side of Lemma 1)."""

from __future__ import annotations

from repro.analysis import contraction_ratios, phase_history
from repro.core import run_deterministic_mst
from repro.graphs import mst_weight_set, random_connected_graph, ring_graph


class TestPhaseHistory:
    def test_fragment_counts_strictly_decrease_to_one(self):
        graph = ring_graph(16, seed=1)
        history = phase_history(graph, seed=0)
        counts = [snapshot.fragments for snapshot in history]
        assert counts[-1] == 1
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_sizes_partition_the_nodes(self):
        graph = random_connected_graph(20, 0.2, seed=2)
        for snapshot in phase_history(graph, seed=1):
            assert sum(snapshot.fragment_sizes.values()) == graph.n

    def test_tree_weights_grow_monotonically_into_mst(self):
        graph = random_connected_graph(18, 0.2, seed=3)
        history = phase_history(graph, seed=0)
        previous = set()
        for snapshot in history:
            assert previous <= snapshot.tree_weights
            previous = snapshot.tree_weights
        assert history[-1].tree_weights == mst_weight_set(graph)

    def test_edge_count_matches_forest_identity(self):
        """A forest with f fragments over n nodes has n - f tree edges."""
        graph = ring_graph(12, seed=4)
        for snapshot in phase_history(graph, seed=2):
            assert len(snapshot.tree_weights) == graph.n - snapshot.fragments

    def test_deterministic_runner_supported(self):
        graph = random_connected_graph(12, 0.25, seed=5)
        history = phase_history(graph, runner=run_deterministic_mst)
        assert history[-1].fragments == 1

    def test_distributed_contraction_matches_lemma1(self):
        """Average contraction of the actual distributed run ≥ 4/3-ish
        (aggregated over several seeds to tame the variance)."""
        graph = random_connected_graph(32, 0.15, seed=6)
        ratios = []
        for seed in range(5):
            history = phase_history(graph, seed=seed)
            ratios.extend(contraction_ratios(history, graph.n))
        mean = sum(ratios) / len(ratios)
        assert mean >= 4 / 3 - 0.1
