"""Lemma 1 / Lemma 2 measurement helpers."""

from __future__ import annotations

from repro.analysis import (
    contraction_statistics,
    fixed_mode_success_rate,
)
from repro.graphs import random_connected_graph, ring_graph


class TestContractionStatistics:
    def test_ratios_at_least_one(self):
        graph = ring_graph(32, seed=1)
        report = contraction_statistics(graph, seeds=range(5))
        assert all(ratio >= 1.0 for ratio in report.ratios)

    def test_expected_contraction_near_four_thirds(self):
        graph = random_connected_graph(64, 0.1, seed=2)
        report = contraction_statistics(graph, seeds=range(15))
        assert report.mean_ratio >= 4 / 3 - 0.08

    def test_phases_recorded_per_seed(self):
        graph = ring_graph(16, seed=3)
        report = contraction_statistics(graph, seeds=range(4))
        assert len(report.phases) == 4
        assert all(phases >= 1 for phases in report.phases)

    def test_empty_seeds(self):
        graph = ring_graph(8, seed=4)
        report = contraction_statistics(graph, seeds=())
        assert report.mean_ratio == 0.0
        assert report.worst_ratio == 0.0

    def test_geometric_mean_below_arithmetic(self):
        graph = random_connected_graph(48, 0.1, seed=5)
        report = contraction_statistics(graph, seeds=range(8))
        assert report.geometric_mean_ratio <= report.mean_ratio + 1e-9


class TestFixedModeSuccess:
    def test_always_exact_at_small_sizes(self):
        graph = ring_graph(12, seed=6)
        report = fixed_mode_success_rate(graph, seeds=range(4))
        assert report.success_rate == 1.0
        assert report.runs == 4

    def test_max_awake_recorded(self):
        graph = ring_graph(8, seed=7)
        report = fixed_mode_success_rate(graph, seeds=range(2))
        assert report.max_awake > 0
