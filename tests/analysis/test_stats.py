"""The shared per-seed statistics helpers (repro.analysis.stats)."""

from __future__ import annotations

import statistics

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    bootstrap_mean_interval,
    mean,
    percentile,
    sample_std,
    summarize,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestMeanAndStd:
    def test_mean_matches_statistics_module(self):
        values = [1.0, 2.5, 4.0, 8.0]
        assert mean(values) == pytest.approx(statistics.fmean(values))

    def test_mean_of_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_sample_std_matches_statistics_module(self):
        values = [3.0, 5.0, 9.0, 11.0]
        assert sample_std(values) == pytest.approx(statistics.stdev(values))

    def test_sample_std_below_two_values_is_zero(self):
        assert sample_std([]) == 0.0
        assert sample_std([7.0]) == 0.0


class TestPercentile:
    def test_interpolates_between_ranks(self):
        assert percentile([10.0, 20.0], 50.0) == pytest.approx(15.0)

    def test_endpoints(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError, match="in \\[0, 100\\]"):
            percentile([1.0], 120.0)

    @given(st.lists(finite_floats, min_size=1, max_size=30))
    def test_median_bounded_by_extremes(self, values):
        median = percentile(values, 50.0)
        assert min(values) <= median <= max(values)


class TestSummarize:
    def test_ci_centered_on_mean(self):
        summary = summarize([10.0, 12.0, 14.0, 16.0])
        assert summary.count == 4
        assert summary.ci_low < summary.mean < summary.ci_high
        assert summary.mean - summary.ci_low == pytest.approx(
            summary.ci_high - summary.mean
        )

    def test_single_value_has_zero_width(self):
        summary = summarize([5.0])
        assert summary.ci_low == summary.ci_high == summary.mean == 5.0

    def test_to_dict_rounds(self):
        payload = summarize([1.0, 2.0]).to_dict(digits=2)
        assert set(payload) == {
            "count", "mean", "std", "ci_low", "ci_high", "confidence"
        }
        assert payload["mean"] == 1.5


class TestBootstrap:
    def test_deterministic_for_fixed_seed(self):
        values = [3.0, 9.0, 4.0, 7.0, 5.0]
        assert bootstrap_mean_interval(values, seed=7) == (
            bootstrap_mean_interval(values, seed=7)
        )

    def test_interval_brackets_the_mean(self):
        values = [3.0, 9.0, 4.0, 7.0, 5.0]
        low, high = bootstrap_mean_interval(values, resamples=500)
        assert low <= mean(values) <= high

    def test_constant_sample_collapses(self):
        assert bootstrap_mean_interval([4.0] * 10) == (4.0, 4.0)
