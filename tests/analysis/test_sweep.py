"""The sweep framework and its exports."""

from __future__ import annotations

import pytest

from repro.analysis import (
    FAMILIES,
    fit_sweep,
    run_sweep,
    to_csv,
    to_markdown,
)
from repro.analysis.sweep import COLUMNS
from repro.cli import main as cli_main


class TestRunSweep:
    def test_grid_shape(self):
        points = run_sweep(
            ["Randomized-MST"], ["ring", "path"], [8, 16], [0, 1]
        )
        assert len(points) == 2 * 2 * 2
        assert {point.family for point in points} == {"ring", "path"}

    def test_all_correct(self):
        points = run_sweep(["Randomized-MST"], ["gnp"], [12], [0, 1, 2])
        assert all(point.correct for point in points)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_sweep(["Quantum-MST"], ["ring"], [8], [0])

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            run_sweep(["Randomized-MST"], ["hypercube"], [8], [0])

    def test_id_range_factor(self):
        points = run_sweep(
            ["Randomized-MST"], ["ring"], [8], [0], id_range_factor=10
        )
        assert points[0].max_id == 80

    def test_family_registry_builds_valid_graphs(self):
        for name, factory in FAMILIES.items():
            graph = factory(12, 0, None)
            assert graph.is_connected(), name


class TestExports:
    @pytest.fixture(scope="class")
    def points(self):
        return run_sweep(["Randomized-MST"], ["ring"], [8], [0, 1])

    def test_csv_shape(self, points):
        lines = to_csv(points).strip().splitlines()
        assert lines[0] == ",".join(COLUMNS)
        assert len(lines) == len(points) + 1
        assert all(len(line.split(",")) == len(COLUMNS) for line in lines)

    def test_markdown_shape(self, points):
        lines = to_markdown(points).strip().splitlines()
        assert lines[0].startswith("| algorithm |")
        assert len(lines) == len(points) + 2

    def test_fit_requires_two_sizes(self, points):
        assert fit_sweep(points) == {}  # single size: nothing to fit

    def test_fit_produces_constants(self):
        points = run_sweep(["Randomized-MST"], ["ring"], [8, 32], [0])
        fits = fit_sweep(points)
        assert "Randomized-MST/ring" in fits
        assert fits["Randomized-MST/ring"].constant > 0


class TestSweepCLI:
    def test_stdout_csv(self, capsys):
        code = cli_main(
            [
                "sweep",
                "--algorithms",
                "Randomized-MST",
                "--families",
                "ring",
                "--sizes",
                "8",
                "16",
                "--seeds",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("algorithm,family")
        assert "# Randomized-MST/ring" in out

    def test_file_output(self, tmp_path, capsys):
        target = tmp_path / "sweep.csv"
        code = cli_main(
            [
                "sweep",
                "--families",
                "path",
                "--sizes",
                "8",
                "--seeds",
                "1",
                "--output",
                str(target),
            ]
        )
        assert code == 0
        assert target.read_text().startswith("algorithm,family")
