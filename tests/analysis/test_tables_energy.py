"""Table 1 regeneration and the sensor-energy model."""

from __future__ import annotations

import pytest

from repro.analysis import EnergyModel, generate_table1, render_table
from repro.core import run_randomized_mst
from repro.graphs import ring_graph
from repro.sim import Metrics


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_table1(
            sizes=(8, 16), seeds=(0,), algorithms=["Randomized-MST"]
        )

    def test_rows_cover_sizes(self, table):
        assert [row.n for row in table.rows_for("Randomized-MST")] == [8, 16]

    def test_all_runs_correct(self, table):
        assert all(row.correct_runs == row.total_runs for row in table.rows)

    def test_awake_fit_available(self, table):
        fit = table.awake_fit("Randomized-MST")
        assert fit.model == "log"
        assert fit.constant > 0

    def test_render_contains_columns(self, table):
        text = render_table(table)
        assert "AT/log2 n" in text
        assert "Randomized-MST" in text

    def test_traditional_comparator_runs(self):
        table = generate_table1(
            sizes=(8,), seeds=(0,), algorithms=["Traditional-GHS"]
        )
        (row,) = table.rows
        assert row.max_awake == row.rounds  # always-awake accounting


class TestEnergyModel:
    def test_sleeping_is_cheap(self):
        model = EnergyModel()
        active = model.node_energy(awake_rounds=100, messages_sent=0, total_rounds=100)
        dozing = model.node_energy(awake_rounds=1, messages_sent=0, total_rounds=100)
        assert active > 50 * dozing

    def test_transmissions_priced(self):
        model = EnergyModel()
        silent = model.node_energy(10, 0, 10)
        chatty = model.node_energy(10, 5, 10)
        assert chatty == silent + 5 * model.tx_mj

    def test_run_energy_per_node(self):
        metrics = Metrics()
        metrics.rounds = 100
        metrics.node(1).awake_rounds = 10
        metrics.node(2).awake_rounds = 1
        energies = EnergyModel().run_energy(metrics)
        assert energies[1] > energies[2]

    def test_executions_per_battery_positive(self):
        graph = ring_graph(16, seed=1)
        result = run_randomized_mst(graph, seed=0)
        runs = EnergyModel().executions_per_battery(result.metrics)
        assert runs > 0

    def test_empty_metrics_edge_cases(self):
        model = EnergyModel()
        assert model.max_node_energy(Metrics()) == 0.0
        assert model.executions_per_battery(Metrics()) == float("inf")
