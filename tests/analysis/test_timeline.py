"""Awake-timeline construction and density probes."""

from __future__ import annotations

from repro.analysis import awake_timeline
from repro.baselines import run_pipelined_ghs
from repro.core import run_randomized_mst
from repro.graphs import ring_graph
from repro.sim import EventTrace


class TestTimelineConstruction:
    def test_buckets_cover_all_rounds(self):
        trace = EventTrace()
        trace.record(1, "wake", 1)
        trace.record(100, "wake", 1)
        timeline = awake_timeline(trace, [1], width=10)
        assert timeline.last_round == 100
        assert timeline.buckets <= 10
        assert timeline.awake_buckets[1][0]
        assert timeline.awake_buckets[1][-1]

    def test_density(self):
        trace = EventTrace()
        for round_number in range(1, 6):
            trace.record(round_number, "wake", 7)
        timeline = awake_timeline(trace, [7], width=10, last_round=10)
        assert timeline.bucket == 1
        assert timeline.density(7) == 0.5

    def test_render_shape(self):
        trace = EventTrace()
        trace.record(1, "wake", 1)
        trace.record(2, "wake", 2)
        rendered = awake_timeline(trace, [1, 2], width=4).render()
        assert "node    1" in rendered and "node    2" in rendered

    def test_render_truncates(self):
        trace = EventTrace()
        nodes = list(range(1, 30))
        for node in nodes:
            trace.record(1, "wake", node)
        rendered = awake_timeline(trace, nodes, width=4).render(max_nodes=3)
        assert "more nodes" in rendered


class TestModelContrast:
    def test_sleeping_run_is_sparse_traditional_is_solid(self):
        """The visual heart of the paper, as a density assertion."""
        graph = ring_graph(32, seed=1)
        # Unbucketed (one column per round): density = awake fraction.
        sleeping = run_randomized_mst(graph, seed=0, trace=True)
        sleeping_timeline = awake_timeline(
            sleeping.simulation.trace, graph.node_ids, width=10**9
        )
        classical = run_pipelined_ghs(graph, trace=True)
        classical_timeline = awake_timeline(
            classical.simulation.trace, graph.node_ids, width=10**9
        )
        assert classical_timeline.overall_density() > 0.95
        assert sleeping_timeline.overall_density() < 0.05
