"""The Figures 2-5 walkthrough module (assertions live inside it too)."""

from __future__ import annotations

from repro.analysis import build_walkthrough_instance, run_merging_walkthrough


class TestWalkthroughInstance:
    def test_instance_shape(self):
        graph, plan, u_tails, u_heads = build_walkthrough_instance()
        assert graph.n == 8
        assert graph.has_edge(u_tails, u_heads)
        states = plan.build_states(graph)
        assert states[u_tails].fragment_id != states[u_heads].fragment_id

    def test_moe_is_lightest_outgoing(self):
        graph, plan, u_tails, u_heads = build_walkthrough_instance()
        states = plan.build_states(graph)
        tails_members = {
            n for n, s in states.items() if s.fragment_id == states[u_tails].fragment_id
        }
        outgoing = [
            edge.weight
            for edge in graph.edges()
            if (edge.u in tails_members) != (edge.v in tails_members)
        ]
        assert graph.weight(u_tails, u_heads) == min(outgoing)


class TestWalkthroughResult:
    def test_returns_consistent_snapshots(self):
        walkthrough = run_merging_walkthrough()
        assert set(walkthrough.before) == set(walkthrough.after)

    def test_fragment_count_drops_to_one(self):
        walkthrough = run_merging_walkthrough()
        assert len({s.fragment_id for s in walkthrough.after.values()}) == 1

    def test_levels_are_distances_from_heads_root(self):
        walkthrough = run_merging_walkthrough()
        graph = walkthrough.graph
        # In the merged LDT, levels must equal tree-hop distance from 10.
        for node, snapshot in walkthrough.after.items():
            hops = 0
            current = node
            while walkthrough.after[current].parent is not None:
                current = walkthrough.after[current].parent
                hops += 1
            assert current == 10
            assert snapshot.level == hops
