"""Traditional-model accounting and the GHS comparator."""

from __future__ import annotations

from repro.baselines import run_traditional_ghs, traditional_metrics
from repro.core import run_randomized_mst
from repro.graphs import mst_weight_set, random_connected_graph, ring_graph
from repro.sim import Metrics


class TestTraditionalMetrics:
    def test_awake_becomes_termination_round(self):
        metrics = Metrics()
        metrics.rounds = 500
        node = metrics.node(1)
        node.awake_rounds = 7
        node.terminated_round = 480
        converted = traditional_metrics(metrics)
        assert converted.per_node[1].awake_rounds == 480
        assert converted.max_awake == 480

    def test_original_metrics_unchanged(self):
        metrics = Metrics()
        node = metrics.node(1)
        node.awake_rounds = 7
        node.terminated_round = 480
        traditional_metrics(metrics)
        assert metrics.per_node[1].awake_rounds == 7

    def test_total_awake_recomputed(self):
        metrics = Metrics()
        for node_id, terminated in ((1, 10), (2, 20)):
            node = metrics.node(node_id)
            node.awake_rounds = 1
            node.terminated_round = terminated
        converted = traditional_metrics(metrics)
        assert converted.total_awake_rounds == 30


class TestTraditionalGHS:
    def test_same_mst_as_sleeping_run(self):
        graph = random_connected_graph(16, 0.2, seed=1)
        traditional = run_traditional_ghs(graph, seed=0)
        assert traditional.mst_weights == mst_weight_set(graph)

    def test_awake_equals_rounds_for_last_node(self):
        graph = ring_graph(16, seed=2)
        result = run_traditional_ghs(graph, seed=0)
        assert result.metrics.max_awake == result.metrics.rounds

    def test_gap_versus_sleeping_model(self):
        """The paper's headline: traditional awake is orders of magnitude
        above sleeping awake on the same execution."""
        graph = ring_graph(64, seed=3)
        sleeping = run_randomized_mst(graph, seed=0)
        traditional = run_traditional_ghs(graph, seed=0)
        assert traditional.metrics.rounds == sleeping.metrics.rounds
        assert traditional.metrics.max_awake > 10 * sleeping.metrics.max_awake

    def test_algorithm_label(self):
        graph = ring_graph(8, seed=4)
        assert run_traditional_ghs(graph, seed=0).algorithm == "Traditional-GHS"
