"""Classical flooding: BFS correctness and Θ(D) awake complexity."""

from __future__ import annotations

import pytest

from repro.baselines import run_flooding_broadcast
from repro.graphs import path_graph, ring_graph, star_graph


class TestFloodingBroadcast:
    def test_bfs_depths_on_path(self):
        graph = path_graph(6, seed=1)
        root = graph.node_ids[0]
        result = run_flooding_broadcast(graph, root_id=root)
        depths = {n: out.depth for n, out in result.node_results.items()}
        assert depths == graph.bfs_distances(root)

    def test_default_root_is_min_id(self):
        graph = ring_graph(6, seed=2)
        result = run_flooding_broadcast(graph)
        assert result.node_results[min(graph.node_ids)].depth == 0

    def test_payload_propagates(self):
        graph = star_graph(5, seed=3)
        result = run_flooding_broadcast(graph, payload=("announce", 9))
        assert all(
            out.payload == ("announce", 9)
            for out in result.node_results.values()
        )

    def test_awake_is_depth_plus_forward(self):
        """Awake complexity Θ(D): node at depth d listens d rounds + 1."""
        graph = path_graph(8, seed=4)
        root = graph.node_ids[0]
        result = run_flooding_broadcast(graph, root_id=root)
        for node, out in result.node_results.items():
            expected = 1 if node == root else out.depth + 1
            assert result.metrics.per_node[node].awake_rounds == expected
        assert result.metrics.max_awake == 8  # depth 7 + forwarding round

    def test_rounds_theta_diameter(self):
        graph = ring_graph(20, seed=5)
        result = run_flooding_broadcast(graph)
        assert result.metrics.rounds <= graph.diameter() + 2

    def test_unknown_root_rejected(self):
        graph = path_graph(3, seed=6)
        with pytest.raises(ValueError, match="root"):
            run_flooding_broadcast(graph, root_id=999)

    def test_parent_ports_form_tree(self):
        graph = ring_graph(9, seed=7)
        result = run_flooding_broadcast(graph)
        roots = [
            n for n, out in result.node_results.items() if out.parent_port is None
        ]
        assert len(roots) == 1
