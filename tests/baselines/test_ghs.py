"""The independent pipelined GHS baseline (classical synchronous Borůvka)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import (
    ghs_phase_budget,
    ghs_phase_rounds,
    run_pipelined_ghs,
)
from repro.core import run_randomized_mst
from repro.graphs import (
    WeightedGraph,
    adversarial_moe_chain,
    complete_graph,
    mst_weight_set,
    path_graph,
    random_connected_graph,
    ring_graph,
    star_graph,
)


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(11, seed=1),
            lambda: ring_graph(14, seed=2),
            lambda: star_graph(9, seed=3),
            lambda: complete_graph(8, seed=4),
            lambda: random_connected_graph(18, 0.2, seed=5),
            lambda: adversarial_moe_chain(12, seed=6),
        ],
    )
    def test_outputs_exact_mst(self, graph_factory):
        graph = graph_factory()
        result = run_pipelined_ghs(graph)
        assert result.mst_weights == mst_weight_set(graph)

    @given(
        n=st.integers(min_value=2, max_value=20),
        seed=st.integers(min_value=0, max_value=10**4),
    )
    def test_random_graphs(self, n, seed):
        graph = random_connected_graph(n, 0.3, seed=seed)
        result = run_pipelined_ghs(graph)
        assert result.mst_weights == mst_weight_set(graph)

    def test_single_node(self):
        graph = WeightedGraph([1], [])
        result = run_pipelined_ghs(graph)
        assert result.mst_weights == set()

    def test_deterministic(self):
        graph = random_connected_graph(14, 0.2, seed=7)
        first, second = run_pipelined_ghs(graph), run_pipelined_ghs(graph)
        assert first.metrics.rounds == second.metrics.rounds


class TestTraditionalAccounting:
    def test_awake_equals_rounds(self):
        """The defining property of the traditional model: no sleeping."""
        graph = ring_graph(24, seed=8)
        result = run_pipelined_ghs(graph)
        assert result.metrics.max_awake == result.metrics.rounds

    def test_every_node_awake_every_round_until_done(self):
        graph = path_graph(8, seed=9)
        result = run_pipelined_ghs(graph)
        for node, node_metrics in result.metrics.per_node.items():
            assert node_metrics.awake_rounds == node_metrics.terminated_round


class TestComplexity:
    def test_rounds_within_phase_budget(self):
        graph = random_connected_graph(24, 0.2, seed=10)
        result = run_pipelined_ghs(graph)
        assert result.metrics.rounds <= (
            (ghs_phase_budget(graph.n) + 1) * ghs_phase_rounds(graph.n)
        )

    def test_phases_at_most_log(self):
        """Full-forest merging at least halves fragments per phase."""
        for seed in range(4):
            graph = random_connected_graph(32, 0.15, seed=seed)
            result = run_pipelined_ghs(graph)
            assert result.phases <= math.ceil(math.log2(32)) + 1

    def test_full_merge_beats_coin_flips_on_phases(self):
        """The adversarial chain collapses in O(1) phases classically,
        while the coin-restricted sleeping algorithm needs Θ(log n) —
        the round/awake trade in action."""
        graph = adversarial_moe_chain(32, seed=11)
        classical = run_pipelined_ghs(graph)
        sleeping = run_randomized_mst(graph, seed=0)
        assert classical.phases <= 2
        assert sleeping.phases > classical.phases

    def test_awake_gap_vs_sleeping_model(self):
        graph = ring_graph(64, seed=12)
        classical = run_pipelined_ghs(graph)
        sleeping = run_randomized_mst(graph, seed=0)
        assert sleeping.mst_weights == classical.mst_weights
        assert classical.metrics.max_awake > 4 * sleeping.metrics.max_awake

    def test_congest_discipline(self):
        graph = random_connected_graph(20, 0.2, seed=13)
        result = run_pipelined_ghs(graph)
        assert result.metrics.congest_violations == 0
